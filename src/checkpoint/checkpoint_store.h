#ifndef INFERTURBO_CHECKPOINT_CHECKPOINT_STORE_H_
#define INFERTURBO_CHECKPOINT_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/io_fault.h"
#include "src/common/result.h"

namespace inferturbo {

/// One durable snapshot of a running job. The store treats both blobs
/// as opaque: the Pregel backend packs its in-flight inboxes, partial
/// flags, and broadcast board into `engine_state` while the MapReduce
/// backend packs its between-round dataflow; `driver_state` carries the
/// inference driver's mutable tensors (worker embeddings, partial
/// logits / broadcast table). `step` is the superstep (Pregel) or
/// completed-round count (MapReduce) the checkpoint resumes *at*.
struct CheckpointData {
  std::int64_t step = 0;
  std::string engine_state;
  std::string driver_state;
};

struct CheckpointStoreOptions {
  /// Directory holding checkpoint files + MANIFEST; must exist.
  std::string directory;
  /// Retention: number of most-recent checkpoint versions kept on disk.
  /// At least 2 is recommended so a corrupted newest version can fall
  /// back to its predecessor.
  std::int64_t keep_last = 2;
  /// Optional fault injection on every physical read/write.
  IoFaultInjector* fault_injector = nullptr;
  /// Bounded retry + backoff for transient faults.
  IoRetryPolicy retry;
};

/// Durable checkpoint store (the half of the paper's §I "fault
/// tolerance inherited from mature infrastructures" that survives the
/// driver process): versioned, CRC32-checksummed checkpoint files
/// written atomically (temp + flush + rename) under a manifest, with
/// keep-last-K retention.
///
/// Integrity model:
///   - every file (checkpoints and the manifest) carries a trailing
///     CRC32 over its entire body, verified on load;
///   - files are only ever replaced whole via atomic rename, so a
///     reader never observes a torn write;
///   - `LoadLatest` walks versions newest-first and silently skips
///     corrupted ones (logging a warning), so recovery falls back to
///     the previous valid checkpoint;
///   - a corrupted or missing manifest degrades to a directory scan,
///     so the manifest is an index, not a single point of failure.
class CheckpointStore {
 public:
  /// Validates the directory and recovers the next version number from
  /// the manifest (or a directory scan when the manifest is unusable).
  static Result<CheckpointStore> Open(CheckpointStoreOptions options);

  /// Durably persists `data` as the next version: checkpoint file
  /// first, manifest second (both atomic), then prunes versions beyond
  /// keep_last. Transient I/O faults are retried with backoff; a
  /// persistent fault returns IoError and leaves the previous
  /// checkpoint intact.
  Status Save(const CheckpointData& data);

  /// Newest checksum-valid checkpoint. Corrupted versions are skipped
  /// with a warning; NotFound when no loadable checkpoint exists.
  Result<CheckpointData> LoadLatest() const;

  /// Versions currently tracked, ascending.
  const std::vector<std::int64_t>& versions() const { return versions_; }

  /// Checkpoints skipped due to checksum/decode failures across all
  /// LoadLatest calls on this store instance.
  std::int64_t corrupted_skipped() const { return corrupted_skipped_; }

  const std::string& directory() const { return options_.directory; }

 private:
  explicit CheckpointStore(CheckpointStoreOptions options)
      : options_(std::move(options)) {}

  std::string CheckpointPath(std::int64_t version) const;
  std::string ManifestPath() const;
  Status WriteManifest() const;
  /// Versions found by scanning the directory for checkpoint files.
  std::vector<std::int64_t> ScanVersions() const;

  CheckpointStoreOptions options_;
  std::vector<std::int64_t> versions_;  // ascending
  std::int64_t next_version_ = 1;
  mutable std::int64_t corrupted_skipped_ = 0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_CHECKPOINT_CHECKPOINT_STORE_H_
