#include "src/checkpoint/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "src/common/atomic_file.h"
#include "src/common/binary_io.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x49544B31;  // "ITK1"
constexpr std::uint32_t kManifestMagic = 0x49544D31;    // "ITM1"
constexpr std::uint32_t kFormatVersion = 1;

/// Body + trailing CRC32 over the body — the framing every store file
/// uses. Returns the verified body slice, or IoError on mismatch.
std::string SealFrame(std::string body) {
  const std::uint32_t crc = Crc32(body);
  BinaryWriter trailer;
  trailer.PutU32(crc);
  body += trailer.buffer();
  return body;
}

Result<std::string_view> OpenFrame(const std::string& file,
                                   const std::string& path) {
  if (file.size() < sizeof(std::uint32_t)) {
    return Status::IoError("file too short for CRC trailer: " + path);
  }
  const std::string_view body(file.data(),
                              file.size() - sizeof(std::uint32_t));
  std::uint32_t stored = 0;
  std::memcpy(&stored, file.data() + body.size(), sizeof(stored));
  const std::uint32_t actual = Crc32(body);
  if (stored != actual) {
    return Status::IoError("checksum mismatch for " + path + " (stored " +
                           std::to_string(stored) + ", computed " +
                           std::to_string(actual) + ")");
  }
  return body;
}

std::string EncodeCheckpoint(const CheckpointData& data) {
  BinaryWriter out;
  out.PutU32(kCheckpointMagic);
  out.PutU32(kFormatVersion);
  out.PutI64(data.step);
  out.PutString(data.engine_state);
  out.PutString(data.driver_state);
  return SealFrame(out.Take());
}

Status DecodeCheckpoint(std::string_view body, const std::string& path,
                        CheckpointData* data) {
  BinaryReader in(body);
  std::uint32_t magic = 0, version = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::IoError("bad checkpoint magic in " + path);
  }
  INFERTURBO_RETURN_NOT_OK(in.GetU32(&version));
  if (version != kFormatVersion) {
    return Status::IoError("unsupported checkpoint format version " +
                           std::to_string(version) + " in " + path);
  }
  INFERTURBO_RETURN_NOT_OK(in.GetI64(&data->step));
  INFERTURBO_RETURN_NOT_OK(in.GetString(&data->engine_state));
  INFERTURBO_RETURN_NOT_OK(in.GetString(&data->driver_state));
  return Status::OK();
}

}  // namespace

std::string CheckpointStore::CheckpointPath(std::int64_t version) const {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt_%08lld.bin",
                static_cast<long long>(version));
  return options_.directory + "/" + name;
}

std::string CheckpointStore::ManifestPath() const {
  return options_.directory + "/MANIFEST";
}

std::vector<std::int64_t> CheckpointStore::ScanVersions() const {
  std::vector<std::int64_t> found;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    long long version = 0;
    if (std::sscanf(name.c_str(), "ckpt_%08lld.bin", &version) == 1) {
      found.push_back(version);
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

Result<CheckpointStore> CheckpointStore::Open(
    CheckpointStoreOptions options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("checkpoint directory must be set");
  }
  if (!std::filesystem::is_directory(options.directory)) {
    return Status::InvalidArgument("checkpoint directory does not exist: " +
                                   options.directory);
  }
  if (options.keep_last < 1) {
    return Status::InvalidArgument("keep_last must be at least 1");
  }
  CheckpointStore store(std::move(options));

  // Recover the version list from the manifest; a missing or corrupted
  // manifest degrades to a directory scan.
  bool manifest_ok = false;
  Result<std::string> file = ReadFileToString(
      store.ManifestPath(), store.options_.fault_injector);
  if (file.ok()) {
    const Result<std::string_view> body =
        OpenFrame(*file, store.ManifestPath());
    if (body.ok()) {
      BinaryReader in(*body);
      std::uint32_t magic = 0;
      std::vector<std::int64_t> versions;
      if (in.GetU32(&magic).ok() && magic == kManifestMagic &&
          in.GetI64s(&versions).ok()) {
        store.versions_ = std::move(versions);
        manifest_ok = true;
      }
    }
    if (!manifest_ok) {
      INFERTURBO_LOG(Warning)
          << "checkpoint manifest unreadable under "
          << store.options_.directory << "; falling back to directory scan";
    }
  }
  if (!manifest_ok) {
    store.versions_ = store.ScanVersions();
  }
  store.next_version_ =
      store.versions_.empty() ? 1 : store.versions_.back() + 1;
  return store;
}

Status CheckpointStore::WriteManifest() const {
  BinaryWriter out;
  out.PutU32(kManifestMagic);
  out.PutI64s(versions_);
  return WriteFileAtomic(ManifestPath(), SealFrame(out.Take()),
                         options_.fault_injector, options_.retry);
}

Status CheckpointStore::Save(const CheckpointData& data) {
  TraceSpan span("checkpoint/save");
  if (MetricsEnabled()) {
    GlobalMetrics().GetCounter("checkpoint.saves")->Increment();
  }
  const std::int64_t version = next_version_;
  const std::string encoded = EncodeCheckpoint(data);
  INFERTURBO_RETURN_NOT_OK(WriteFileAtomic(CheckpointPath(version), encoded,
                                           options_.fault_injector,
                                           options_.retry));
  versions_.push_back(version);
  next_version_ = version + 1;
  // The checkpoint file is durable before the manifest references it,
  // so a crash between the two writes loses only the index entry (the
  // scan fallback still finds the file).
  const Status manifest = WriteManifest();
  if (!manifest.ok()) {
    // Roll the index back so the in-memory view matches the durable
    // manifest; the orphaned file is reclaimed by a later prune/scan.
    versions_.pop_back();
    return manifest;
  }
  // Retention: drop everything beyond the newest keep_last versions.
  while (static_cast<std::int64_t>(versions_.size()) > options_.keep_last) {
    const std::int64_t victim = versions_.front();
    versions_.erase(versions_.begin());
    std::remove(CheckpointPath(victim).c_str());
  }
  // Manifest reflects the pruned list; failure here is non-fatal (the
  // stale manifest still lists only files that exist or are skipped).
  const Status pruned = WriteManifest();
  if (!pruned.ok()) {
    INFERTURBO_LOG(Warning) << "manifest rewrite after pruning failed: "
                            << pruned.ToString();
  }
  return Status::OK();
}

Result<CheckpointData> CheckpointStore::LoadLatest() const {
  TraceSpan span("checkpoint/restore");
  if (MetricsEnabled()) {
    GlobalMetrics().GetCounter("checkpoint.restores")->Increment();
  }
  std::vector<std::int64_t> candidates = versions_;
  if (candidates.empty()) candidates = ScanVersions();
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const std::string path = CheckpointPath(*it);
    CheckpointData data;
    // Read + verify + decode as one retried unit: a transient short
    // read or bit flip fails checksum validation and the retry re-reads
    // healthy bytes; persistent corruption falls through to the
    // previous version.
    const Status status = RetryWithBackoff(options_.retry, [&] {
      INFERTURBO_ASSIGN_OR_RETURN(
          const std::string file,
          ReadFileToString(path, options_.fault_injector));
      INFERTURBO_ASSIGN_OR_RETURN(const std::string_view body,
                                  OpenFrame(file, path));
      return DecodeCheckpoint(body, path, &data);
    });
    if (status.ok()) return data;
    ++corrupted_skipped_;
    INFERTURBO_LOG(Warning) << "skipping unloadable checkpoint " << path
                            << ": " << status.ToString();
  }
  return Status::NotFound("no loadable checkpoint under " +
                          options_.directory);
}

}  // namespace inferturbo
