#include "src/runtime/task_supervisor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/trace.h"

namespace inferturbo {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds SecondsToNanos(double seconds) {
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(seconds * 1e9));
}

/// Rebuilds a Status with the same code but a new message (the public
/// factories are per-code). Codes without a factory collapse to
/// kInternal, which is the right permanent-failure default.
Status StatusWithCode(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kOutOfMemory:
      return Status::OutOfMemory(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(msg));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

/// Per-task supervision state for one stage.
struct TaskSupervisor::TaskSlot {
  int next_attempt = 0;
  int failures = 0;
  bool committed = false;
  int committed_attempt = -1;
  int committed_executor = -1;
  int running = 0;
  bool launched = false;
  bool backup_inflight = false;
  bool backup_ever = false;
  bool retry_pending = false;
  Clock::time_point retry_due{};
  double backoff = 0.0;
  Clock::time_point first_launch{};
  bool exhausted = false;
  Status last_error;
};

/// Lives on RunStage's frame; attempts reach it through a raw pointer,
/// which is safe because RunStage drains every in-flight attempt
/// before returning. All fields are guarded by the supervisor's mu_.
struct TaskSupervisor::StageContext {
  TaskStage stage;
  const TaskFn* fn = nullptr;
  std::vector<TaskSlot> tasks;
  std::vector<std::shared_ptr<TaskAttempt>> running;
  std::size_t committed_count = 0;
  bool failed = false;
  bool had_failures = false;
  Status stage_error;
  std::condition_variable cv;
};

bool TaskAttempt::TryCommit() {
  INFERTURBO_CHECK(supervisor_ != nullptr);
  auto* ctx = static_cast<TaskSupervisor::StageContext*>(stage_ctx_);
  std::lock_guard<std::mutex> lock(supervisor_->mu_);
  commit_attempted_ = true;
  TaskSupervisor::TaskSlot& slot = ctx->tasks[task_];
  if (slot.committed || ctx->failed ||
      abandon_.load(std::memory_order_acquire)) {
    return false;
  }
  slot.committed = true;
  slot.committed_attempt = attempt_;
  slot.committed_executor = executor_;
  slot.retry_pending = false;
  won_commit_ = true;
  ++ctx->committed_count;
  if (speculative_) {
    ++supervisor_->metrics_.speculative_commits;
    RecordFlightEvent(FlightEventKind::kSpeculativeCommit, "task/commit",
                      static_cast<std::int64_t>(task_), attempt_);
  }
  // The race is decided: rivals stop work at their next abandon poll.
  for (const std::shared_ptr<TaskAttempt>& rival : ctx->running) {
    if (rival->task_ == task_ && rival.get() != this) {
      rival->abandon_.store(true, std::memory_order_release);
    }
  }
  ctx->cv.notify_all();
  return true;
}

TaskSupervisor::TaskSupervisor(TaskSupervisionOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &DefaultThreadPool()) {}

SupervisionMetrics TaskSupervisor::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

bool TaskSupervisor::IsQuarantined(int executor) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = executors_.find(executor);
  return it != executors_.end() && it->second.quarantined;
}

int TaskSupervisor::num_quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& [id, health] : executors_) {
    if (health.quarantined) ++count;
  }
  return count;
}

int TaskSupervisor::AssignExecutorLocked(StageContext* ctx,
                                         std::size_t task) {
  const int num_executors =
      static_cast<int>(std::max<std::size_t>(1, ctx->tasks.size()));
  const int home = static_cast<int>(task) % num_executors;
  for (int probe = 0; probe < num_executors; ++probe) {
    const int candidate = (home + probe) % num_executors;
    const auto it = executors_.find(candidate);
    if (it == executors_.end() || !it->second.quarantined) {
      if (candidate != home) ++metrics_.reassigned_tasks;
      return candidate;
    }
  }
  // Every executor is quarantined; in-process quarantine is advisory,
  // so fall back to the home executor rather than refusing to run.
  return home;
}

void TaskSupervisor::LaunchAttempt(StageContext* ctx, std::size_t task,
                                   bool speculative) {
  // Caller holds mu_.
  TaskSlot& slot = ctx->tasks[task];
  auto attempt = std::make_shared<TaskAttempt>();
  attempt->task_ = task;
  attempt->attempt_ = slot.next_attempt++;
  attempt->executor_ = AssignExecutorLocked(ctx, task);
  attempt->speculative_ = speculative;
  attempt->supervisor_ = this;
  attempt->stage_ctx_ = ctx;
  ++slot.running;
  if (!slot.launched) {
    slot.launched = true;
    slot.first_launch = Clock::now();
  }
  if (speculative) {
    slot.backup_inflight = true;
    slot.backup_ever = true;
    ++metrics_.speculative_launched;
    RecordFlightEvent(FlightEventKind::kSpeculativeLaunch, "task/speculate",
                      static_cast<std::int64_t>(task), attempt->attempt_);
  } else if (attempt->attempt_ > 0) {
    ++metrics_.retries;
    RecordFlightEvent(FlightEventKind::kRetry, "task/retry",
                      static_cast<std::int64_t>(task), attempt->attempt_);
  }
  ++metrics_.attempts;
  ctx->running.push_back(attempt);

  const TaskFn* fn = ctx->fn;
  auto body = [this, ctx, attempt, fn] { RunAttemptBody(ctx, attempt, *fn); };
  // Recovery work (retries, backups) jumps the queue so it is not
  // stuck behind a backlog of first attempts.
  if (attempt->attempt_ > 0) {
    pool_->SubmitUrgent(std::move(body));
  } else {
    pool_->Submit(std::move(body));
  }
}

void TaskSupervisor::RunAttemptBody(StageContext* ctx,
                                    std::shared_ptr<TaskAttempt> attempt,
                                    const TaskFn& fn) {
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt->started_ = Clock::now();
    attempt->started_set_ = true;
    const TaskSlot& slot = ctx->tasks[attempt->task_];
    skip = slot.committed || ctx->failed ||
           attempt->abandon_.load(std::memory_order_acquire);
  }

  Status status = Status::OK();
  bool ran = false;
  if (!skip) {
    TaskFault fault;
    if (options_.fault_plan != nullptr) {
      fault = options_.fault_plan->Next({ctx->stage.kind,
                                         ctx->stage.stage_index,
                                         attempt->executor_,
                                         attempt->attempt_});
    }
    switch (fault.kind) {
      case TaskFaultKind::kCrash: {
        std::lock_guard<std::mutex> lock(mu_);
        ++metrics_.injected_crashes;
        RecordFlightEvent(FlightEventKind::kFaultInjected, "fault/crash",
                          attempt->executor_, attempt->attempt_);
        status = Status::Internal(
            "injected crash (stage " +
            std::string(TaskStageKindToString(ctx->stage.kind)) + ":" +
            std::to_string(ctx->stage.stage_index) + ", executor " +
            std::to_string(attempt->executor_) + ", attempt " +
            std::to_string(attempt->attempt_) + ")");
        break;
      }
      case TaskFaultKind::kTransient: {
        std::lock_guard<std::mutex> lock(mu_);
        ++metrics_.injected_transients;
        RecordFlightEvent(FlightEventKind::kFaultInjected, "fault/transient",
                          attempt->executor_, attempt->attempt_);
        status = Status::Unavailable("injected transient fault (executor " +
                                     std::to_string(attempt->executor_) +
                                     ", attempt " +
                                     std::to_string(attempt->attempt_) + ")");
        break;
      }
      case TaskFaultKind::kStraggle: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++metrics_.injected_delays;
          RecordFlightEvent(FlightEventKind::kFaultInjected, "fault/delay",
                            attempt->executor_, attempt->attempt_);
        }
        // Cooperative straggle: sleep in small slices so a committed
        // rival or an expired deadline cancels the delay promptly.
        TraceSpan span("task.straggle", attempt->executor_);
        const Clock::time_point until =
            Clock::now() + SecondsToNanos(fault.delay_seconds);
        while (Clock::now() < until && !attempt->ShouldAbandon()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        break;
      }
      case TaskFaultKind::kNone:
        break;
    }
    if (status.ok() && !attempt->ShouldAbandon()) {
      TraceSpan span(attempt->speculative_ ? "task.attempt.speculative"
                                           : "task.attempt",
                     attempt->executor_);
      status = fn(attempt.get());
      ran = true;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  TaskSlot& slot = ctx->tasks[attempt->task_];
  --slot.running;
  if (attempt->speculative_) slot.backup_inflight = false;
  ctx->running.erase(
      std::find(ctx->running.begin(), ctx->running.end(), attempt));

  if (status.ok() && ran && !attempt->commit_attempted_ &&
      !slot.committed && !ctx->failed &&
      !attempt->abandon_.load(std::memory_order_acquire)) {
    // The body returned OK without an explicit commit: commit on its
    // behalf (bodies with publication side effects call TryCommit
    // themselves, before publishing).
    attempt->commit_attempted_ = true;
    slot.committed = true;
    slot.committed_attempt = attempt->attempt_;
    slot.committed_executor = attempt->executor_;
    slot.retry_pending = false;
    attempt->won_commit_ = true;
    ++ctx->committed_count;
    if (attempt->speculative_) ++metrics_.speculative_commits;
    for (const std::shared_ptr<TaskAttempt>& rival : ctx->running) {
      if (rival->task_ == attempt->task_) {
        rival->abandon_.store(true, std::memory_order_release);
      }
    }
  } else if (!status.ok() && !attempt->failure_counted_ && !slot.committed &&
             !ctx->failed &&
             !attempt->abandon_.load(std::memory_order_acquire)) {
    attempt->failure_counted_ = true;
    RecordFailureLocked(ctx, attempt->task_, attempt->executor_, status);
  }
  ctx->cv.notify_all();
}

void TaskSupervisor::RecordFailureLocked(StageContext* ctx, std::size_t task,
                                         int executor, const Status& error) {
  TaskSlot& slot = ctx->tasks[task];
  ++slot.failures;
  ctx->had_failures = true;
  slot.last_error = error;

  // Crash-style failures (anything not retryable-by-code) count toward
  // the executor's quarantine budget; transient and deadline failures
  // do not — a slow or briefly unlucky executor is not a bad one.
  const bool permanent =
      !(error.IsUnavailable() || error.IsDeadlineExceeded());
  if (permanent) {
    ExecutorHealth& health = executors_[executor];
    ++health.permanent_failures;
    if (!health.quarantined && options_.quarantine_threshold > 0 &&
        health.permanent_failures >= options_.quarantine_threshold) {
      health.quarantined = true;
      ++metrics_.quarantined_workers;
      RecordFlightEvent(FlightEventKind::kQuarantine, "task/quarantine",
                        executor, health.permanent_failures);
      INFERTURBO_LOG(Warning)
          << "quarantining executor " << executor << " after "
          << health.permanent_failures << " permanent failures";
    }
  }

  if (slot.failures > options_.max_task_retries) {
    slot.exhausted = true;
    RecordFlightEvent(FlightEventKind::kTaskFailure, "task/exhausted",
                      static_cast<std::int64_t>(task), slot.failures);
    if (!ctx->failed) {
      ctx->failed = true;
      ctx->stage_error = StatusWithCode(
          error.code(),
          "task " + std::to_string(task) + " exhausted " +
              std::to_string(options_.max_task_retries) +
              " retries; last error: " + error.ToString());
      INFERTURBO_LOG(Warning)
          << "stage " << TaskStageKindToString(ctx->stage.kind) << ":"
          << ctx->stage.stage_index
          << " failed: " << ctx->stage_error.ToString();
    }
    return;
  }
  if (slot.backoff <= 0.0) slot.backoff = options_.initial_backoff_seconds;
  slot.retry_pending = true;
  slot.retry_due = Clock::now() + SecondsToNanos(slot.backoff);
  slot.backoff = std::min(slot.backoff * options_.backoff_multiplier,
                          options_.max_backoff_seconds);
}

Result<StageResult> TaskSupervisor::RunStage(const TaskStage& stage,
                                             std::size_t num_tasks,
                                             const TaskFn& fn) {
  INFERTURBO_CHECK(!ThreadPool::InPoolWorker())
      << "RunStage must not be called from a pool worker";
  StageContext ctx;
  ctx.stage = stage;
  ctx.fn = &fn;
  ctx.tasks.resize(num_tasks);

  std::unique_lock<std::mutex> lock(mu_);
  metrics_.tasks += static_cast<std::int64_t>(num_tasks);
  for (std::size_t task = 0; task < num_tasks; ++task) {
    LaunchAttempt(&ctx, task, /*speculative=*/false);
  }

  const bool deadlines = options_.task_deadline_seconds > 0.0;
  while (ctx.committed_count < num_tasks && !ctx.failed) {
    const Clock::time_point now = Clock::now();
    bool have_wakeup = false;
    Clock::time_point wakeup = Clock::time_point::max();
    const auto consider = [&](Clock::time_point due) {
      if (!have_wakeup || due < wakeup) {
        have_wakeup = true;
        wakeup = due;
      }
    };

    // Deadline scan: expire attempts that overran their budget. The
    // attempt keeps running until its next abandon poll; supervision
    // accounting moves on immediately.
    if (deadlines) {
      for (const std::shared_ptr<TaskAttempt>& attempt : ctx.running) {
        if (!attempt->started_set_ || attempt->failure_counted_ ||
            attempt->abandon_.load(std::memory_order_acquire)) {
          continue;
        }
        if (ctx.tasks[attempt->task_].committed) continue;
        const Clock::time_point due =
            attempt->started_ +
            SecondsToNanos(options_.task_deadline_seconds);
        if (now >= due) {
          attempt->abandon_.store(true, std::memory_order_release);
          attempt->failure_counted_ = true;
          ++metrics_.deadline_exceeded;
          RecordFlightEvent(FlightEventKind::kDeadline, "task/deadline",
                            static_cast<std::int64_t>(attempt->task_),
                            attempt->attempt_);
          RecordFailureLocked(
              &ctx, attempt->task_, attempt->executor_,
              Status::DeadlineExceeded(
                  "attempt " + std::to_string(attempt->attempt_) +
                  " of task " + std::to_string(attempt->task_) + " over " +
                  std::to_string(options_.task_deadline_seconds) +
                  "s budget"));
          if (ctx.failed) break;
        } else {
          consider(due);
        }
      }
      if (ctx.failed) break;
    }

    for (std::size_t task = 0; task < num_tasks; ++task) {
      TaskSlot& slot = ctx.tasks[task];
      if (slot.committed || slot.exhausted) continue;
      if (slot.retry_pending) {
        if (now >= slot.retry_due) {
          slot.retry_pending = false;
          LaunchAttempt(&ctx, task, /*speculative=*/false);
        } else {
          consider(slot.retry_due);
        }
        continue;
      }
      if (options_.speculative_execution && slot.launched &&
          !slot.backup_ever && slot.running >= 1 &&
          slot.next_attempt < options_.max_task_retries + 2) {
        const Clock::time_point due =
            slot.first_launch +
            SecondsToNanos(options_.speculation_delay_seconds);
        if (now >= due) {
          LaunchAttempt(&ctx, task, /*speculative=*/true);
        } else {
          consider(due);
        }
      }
    }

    if (ctx.committed_count >= num_tasks || ctx.failed) break;
    if (have_wakeup) {
      ctx.cv.wait_until(lock, wakeup);
    } else {
      ctx.cv.wait(lock);
    }
  }

  // Drain: abandon every still-running attempt (losers on success,
  // everything on failure) and wait for the closures to unwind — they
  // reference this frame.
  for (const std::shared_ptr<TaskAttempt>& attempt : ctx.running) {
    attempt->abandon_.store(true, std::memory_order_release);
  }
  while (!ctx.running.empty()) ctx.cv.wait(lock);

  if (ctx.failed) return ctx.stage_error;
  StageResult result;
  result.committed_attempt.reserve(num_tasks);
  result.committed_executor.reserve(num_tasks);
  for (const TaskSlot& slot : ctx.tasks) {
    result.committed_attempt.push_back(slot.committed_attempt);
    result.committed_executor.push_back(slot.committed_executor);
  }
  result.had_failures = ctx.had_failures;
  return result;
}

}  // namespace inferturbo
