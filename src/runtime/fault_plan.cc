#include "src/runtime/fault_plan.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"

namespace inferturbo {

std::string_view TaskFaultKindToString(TaskFaultKind kind) {
  switch (kind) {
    case TaskFaultKind::kNone:
      return "none";
    case TaskFaultKind::kCrash:
      return "crash";
    case TaskFaultKind::kTransient:
      return "transient";
    case TaskFaultKind::kStraggle:
      return "straggle";
  }
  return "unknown";
}

std::string_view TaskStageKindToString(TaskStageKind kind) {
  switch (kind) {
    case TaskStageKind::kPregelCompute:
      return "compute";
    case TaskStageKind::kMrMap:
      return "map";
    case TaskStageKind::kMrShuffle:
      return "shuffle";
    case TaskStageKind::kMrReduce:
      return "reduce";
    case TaskStageKind::kAny:
      return "any";
  }
  return "unknown";
}

std::string TaskFaultEventToString(const TaskFaultEvent& event) {
  std::string out(TaskFaultKindToString(event.kind));
  out += "@";
  out += TaskStageKindToString(event.coord.stage_kind);
  out += ":";
  out += std::to_string(event.coord.stage_index);
  out += ":";
  out += std::to_string(event.coord.executor);
  out += "#";
  out += std::to_string(event.coord.attempt);
  if (event.kind == TaskFaultKind::kStraggle) {
    out += "~";
    out += std::to_string(static_cast<std::int64_t>(
        event.delay_seconds * 1000.0 + 0.5));
  }
  return out;
}

void FaultPlan::ArmCrash(TaskStageKind stage_kind, std::int64_t stage_index,
                         int executor, std::int64_t times) {
  Arm({TaskFaultKind::kCrash, stage_kind, stage_index, executor, times, 0.0});
}

void FaultPlan::ArmTransient(TaskStageKind stage_kind,
                             std::int64_t stage_index, int executor,
                             std::int64_t times) {
  Arm({TaskFaultKind::kTransient, stage_kind, stage_index, executor, times,
       0.0});
}

void FaultPlan::ArmDelay(TaskStageKind stage_kind, std::int64_t stage_index,
                         int executor, double delay_seconds,
                         std::int64_t times) {
  Arm({TaskFaultKind::kStraggle, stage_kind, stage_index, executor, times,
       delay_seconds});
}

void FaultPlan::Arm(Rule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
}

TaskFault FaultPlan::Next(const TaskCoord& coord) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& rule : rules_) {
    if (rule.times == 0) continue;
    if (rule.stage_kind != TaskStageKind::kAny &&
        rule.stage_kind != coord.stage_kind) {
      continue;
    }
    if (rule.stage_index >= 0 && rule.stage_index != coord.stage_index) {
      continue;
    }
    if (rule.executor >= 0 && rule.executor != coord.executor) continue;
    if (rule.times > 0) --rule.times;
    switch (rule.kind) {
      case TaskFaultKind::kCrash:
        ++crashes_;
        break;
      case TaskFaultKind::kTransient:
        ++transients_;
        break;
      case TaskFaultKind::kStraggle:
        ++delays_;
        break;
      case TaskFaultKind::kNone:
        break;
    }
    events_.push_back({rule.kind, coord, rule.delay_seconds});
    return {rule.kind, rule.delay_seconds};
  }
  return {TaskFaultKind::kNone, 0.0};
}

std::size_t FaultPlan::num_rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

std::int64_t FaultPlan::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_ + transients_ + delays_;
}

std::int64_t FaultPlan::crashes_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

std::int64_t FaultPlan::transients_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transients_;
}

std::int64_t FaultPlan::delays_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delays_;
}

std::vector<TaskFaultEvent> FaultPlan::realized_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

namespace {

Status BadSpec(std::string_view rule, const char* why) {
  std::string msg = "bad fault-plan rule '";
  msg += rule;
  msg += "': ";
  msg += why;
  return Status::InvalidArgument(std::move(msg));
}

/// Parses a base-10 integer covering the whole of `text`.
bool ParseInt(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

Status ParseRule(std::string_view rule, FaultPlan* plan) {
  const std::size_t at = rule.find('@');
  if (at == std::string_view::npos) return BadSpec(rule, "missing '@'");
  const std::string_view kind_text = rule.substr(0, at);
  std::string_view rest = rule.substr(at + 1);

  FaultPlan::Rule parsed;
  if (kind_text == "crash") {
    parsed.kind = TaskFaultKind::kCrash;
  } else if (kind_text == "transient") {
    parsed.kind = TaskFaultKind::kTransient;
  } else if (kind_text == "straggle") {
    parsed.kind = TaskFaultKind::kStraggle;
    parsed.delay_seconds = 0.1;  // default 100 ms
  } else {
    return BadSpec(rule, "kind must be crash|transient|straggle");
  }

  const std::size_t c1 = rest.find(':');
  if (c1 == std::string_view::npos) return BadSpec(rule, "missing stage/step");
  const std::size_t c2 = rest.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return BadSpec(rule, "missing worker");
  const std::string_view stage_text = rest.substr(0, c1);
  const std::string_view step_text = rest.substr(c1 + 1, c2 - c1 - 1);
  std::string_view worker_text = rest.substr(c2 + 1);

  if (stage_text == "compute") {
    parsed.stage_kind = TaskStageKind::kPregelCompute;
  } else if (stage_text == "map") {
    parsed.stage_kind = TaskStageKind::kMrMap;
  } else if (stage_text == "shuffle") {
    parsed.stage_kind = TaskStageKind::kMrShuffle;
  } else if (stage_text == "reduce") {
    parsed.stage_kind = TaskStageKind::kMrReduce;
  } else if (stage_text == "any") {
    parsed.stage_kind = TaskStageKind::kAny;
  } else {
    return BadSpec(rule, "stage must be compute|map|shuffle|reduce|any");
  }

  if (step_text == "*") {
    parsed.stage_index = -1;
  } else if (!ParseInt(step_text, &parsed.stage_index) ||
             parsed.stage_index < 0) {
    return BadSpec(rule, "step must be a non-negative integer or '*'");
  }

  // Trailing modifiers on the worker field: [x times] [~ delay_ms].
  const std::size_t tilde = worker_text.find('~');
  if (tilde != std::string_view::npos) {
    if (parsed.kind != TaskFaultKind::kStraggle) {
      return BadSpec(rule, "'~delay' only applies to straggle rules");
    }
    std::int64_t delay_ms = 0;
    if (!ParseInt(worker_text.substr(tilde + 1), &delay_ms) || delay_ms < 0) {
      return BadSpec(rule, "delay must be a non-negative integer (ms)");
    }
    parsed.delay_seconds = static_cast<double>(delay_ms) / 1000.0;
    worker_text = worker_text.substr(0, tilde);
  }
  const std::size_t x = worker_text.find('x');
  if (x != std::string_view::npos) {
    if (!ParseInt(worker_text.substr(x + 1), &parsed.times) ||
        parsed.times == 0) {
      return BadSpec(rule, "times must be a nonzero integer (-1 = unbounded)");
    }
    worker_text = worker_text.substr(0, x);
  }

  if (worker_text == "*") {
    parsed.executor = -1;
  } else {
    std::int64_t worker = 0;
    if (!ParseInt(worker_text, &worker) || worker < 0) {
      return BadSpec(rule, "worker must be a non-negative integer or '*'");
    }
    parsed.executor = static_cast<int>(worker);
  }

  plan->Arm(parsed);
  return Status::OK();
}

}  // namespace

Status ParseFaultPlan(std::string_view spec, FaultPlan* plan) {
  INFERTURBO_CHECK(plan != nullptr);
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view rule = spec.substr(start, end - start);
    // Trim surrounding spaces.
    while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
    while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
    if (!rule.empty()) INFERTURBO_RETURN_NOT_OK(ParseRule(rule, plan));
    if (end == spec.size()) break;
    start = end + 1;
  }
  return Status::OK();
}

}  // namespace inferturbo
