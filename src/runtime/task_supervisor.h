#ifndef INFERTURBO_RUNTIME_TASK_SUPERVISOR_H_
#define INFERTURBO_RUNTIME_TASK_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/pregel/worker_metrics.h"
#include "src/runtime/fault_plan.h"

namespace inferturbo {

/// Supervision policy for every per-partition unit of work.
struct TaskSupervisionOptions {
  /// Per-attempt deadline. 0 = no deadline. When an attempt overruns
  /// it, the supervisor abandons it (cooperative cancel), counts a
  /// kDeadlineExceeded failure, and schedules a retry.
  double task_deadline_seconds = 0.0;
  /// Retries after the first attempt. Each retry waits out an
  /// exponential backoff. A task whose failures exceed this budget
  /// fails the stage.
  int max_task_retries = 3;
  /// Launch a speculative backup attempt for a task that has not
  /// committed within `speculation_delay_seconds` of its first launch
  /// — straggler mitigation. First attempt to commit wins; the loser
  /// is abandoned. At most one backup per task is in flight.
  bool speculative_execution = false;
  double speculation_delay_seconds = 0.05;
  /// An executor is quarantined after this many crash-kind (permanent)
  /// failures; its tasks deterministically reassign to the next
  /// healthy executor. Transient/deadline failures do not count.
  int quarantine_threshold = 3;
  /// Retry backoff schedule.
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.05;
  /// Pool the attempts run on (nullptr = DefaultThreadPool()). RunStage
  /// must be called from outside this pool's workers.
  ThreadPool* pool = nullptr;
  /// Optional compute-side chaos injector consulted before every
  /// attempt body.
  FaultPlan* fault_plan = nullptr;
  /// Pregel-only degradation ladder: how many times a superstep may be
  /// re-executed from its immutable inputs after per-task retry
  /// exhaustion, before falling back to checkpoint restore.
  int max_superstep_reexecutions = 2;
};

/// One supervised stage of homogeneous tasks (a Pregel superstep's
/// compute phase, a MapReduce map/shuffle/reduce round).
struct TaskStage {
  TaskStageKind kind = TaskStageKind::kPregelCompute;
  /// Superstep or MapReduce round index, for fault targeting & spans.
  std::int64_t stage_index = 0;
};

class TaskSupervisor;

/// Handle passed to a task body. The contract for bit-identical
/// recovery: compute into attempt-local buffers, then call TryCommit()
/// exactly once; publish side effects (write shared slots, record
/// spill file names) only when it returns true. Duplicate attempts of
/// one task may run concurrently (speculation), but at most one wins.
class TaskAttempt {
 public:
  /// Task index within the stage (== partition / logical worker id).
  std::size_t task() const { return task_; }
  /// 0-based attempt number, unique per task. Use it to scope side
  /// effects that cannot be buffered in memory (e.g. spill file names).
  int attempt() const { return attempt_; }
  /// Logical executor assigned to this attempt. Purely supervision
  /// bookkeeping (fault targeting, quarantine): task data is indexed by
  /// task(), so executor identity never changes computed bytes.
  int executor() const { return executor_; }
  bool speculative() const { return speculative_; }

  /// True once the supervisor has given up on this attempt (deadline,
  /// or a rival committed). Long-running bodies should poll this and
  /// return early — Status value then does not matter.
  bool ShouldAbandon() const {
    return abandon_.load(std::memory_order_acquire);
  }

  /// First-commit-wins. True exactly once per task across all its
  /// attempts; the winner then owns publication of the task's result.
  bool TryCommit();

 private:
  friend class TaskSupervisor;
  std::size_t task_ = 0;
  int attempt_ = 0;
  int executor_ = 0;
  bool speculative_ = false;
  std::atomic<bool> abandon_{false};
  // Set by the deadline scanner so a later error return is not counted
  // as a second failure.
  bool failure_counted_ = false;
  bool commit_attempted_ = false;
  bool won_commit_ = false;
  // Deadlines are measured from when the body actually starts running
  // on a pool worker, not from enqueue, so a backlogged queue cannot
  // expire an attempt that never got a chance to run.
  bool started_set_ = false;
  std::chrono::steady_clock::time_point started_;
  TaskSupervisor* supervisor_ = nullptr;
  void* stage_ctx_ = nullptr;
};

/// The task body. Runs on a pool worker; may run concurrently with a
/// duplicate attempt of the same task. Returns OK on success (the
/// supervisor auto-commits if the body never called TryCommit),
/// kUnavailable / kDeadlineExceeded for retryable failures, anything
/// else for permanent-style failures (counts toward quarantine).
using TaskFn = std::function<Status(TaskAttempt*)>;

/// Per-stage outcome: which attempt/executor won each task.
struct StageResult {
  std::vector<int> committed_attempt;
  std::vector<int> committed_executor;
  /// True when any task needed more than one attempt (the stage result
  /// is still bit-identical; callers may want to log).
  bool had_failures = false;
};

/// Wraps every per-partition unit of work with deadlines, bounded
/// retry with exponential backoff, speculative backup execution, and
/// executor quarantine. One supervisor lives for a whole job, so
/// quarantine decisions and metrics persist across supersteps/rounds.
///
/// Thread model: RunStage blocks the calling (coordinator) thread; the
/// attempts run on the pool. The supervisor never calls
/// ThreadPool::Wait (that waits for the whole pool); it tracks its own
/// in-flight attempts and always drains them before returning, even on
/// stage failure — attempt closures may reference coordinator-frame
/// state.
class TaskSupervisor {
 public:
  explicit TaskSupervisor(TaskSupervisionOptions options);

  /// Runs `num_tasks` tasks under supervision. Returns the per-task
  /// commit record, or the first retry-exhausted task's error. Never
  /// hangs: injected delays are finite and abandoned attempts are
  /// cooperatively cancelled.
  Result<StageResult> RunStage(const TaskStage& stage, std::size_t num_tasks,
                               const TaskFn& fn);

  /// Accumulated across all stages this supervisor ran.
  SupervisionMetrics metrics() const;

  bool IsQuarantined(int executor) const;
  int num_quarantined() const;

  const TaskSupervisionOptions& options() const { return options_; }

 private:
  friend class TaskAttempt;
  struct TaskSlot;
  struct StageContext;

  void LaunchAttempt(StageContext* ctx, std::size_t task, bool speculative);
  void RunAttemptBody(StageContext* ctx, std::shared_ptr<TaskAttempt> attempt,
                      const TaskFn& fn);
  /// Locked. Counts one failure against `task`; schedules a retry or
  /// marks the task (and stage) exhausted.
  void RecordFailureLocked(StageContext* ctx, std::size_t task, int executor,
                           const Status& error);
  /// Locked. Deterministic executor for `task`'s next attempt: its home
  /// executor, or the next non-quarantined one (wrapping probe).
  int AssignExecutorLocked(StageContext* ctx, std::size_t task);

  const TaskSupervisionOptions options_;
  ThreadPool* pool_;

  mutable std::mutex mu_;  // guards metrics_ and executor health
  SupervisionMetrics metrics_;
  struct ExecutorHealth {
    int permanent_failures = 0;
    bool quarantined = false;
  };
  std::map<int, ExecutorHealth> executors_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_RUNTIME_TASK_SUPERVISOR_H_
