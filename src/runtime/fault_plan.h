#ifndef INFERTURBO_RUNTIME_FAULT_PLAN_H_
#define INFERTURBO_RUNTIME_FAULT_PLAN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace inferturbo {

/// Compute-side failure modes, complementing IoFaultKind (PR 1) which
/// covers the persistence layer. A FaultPlan decides, per task attempt,
/// whether the attempt dies, errors transiently, or straggles.
enum class TaskFaultKind {
  kNone = 0,
  /// The attempt "crashes": it reports kInternal without running the
  /// task body. Crash failures are permanent-style — they count toward
  /// executor quarantine.
  kCrash,
  /// The attempt fails with kUnavailable — retryable by code, does not
  /// count toward quarantine.
  kTransient,
  /// The attempt is delayed by `delay_seconds` before running the task
  /// body — a straggler. The delay sleep is cooperative: it polls the
  /// attempt's abandon flag so a committed or deadline-cancelled
  /// attempt stops sleeping promptly.
  kStraggle,
};

std::string_view TaskFaultKindToString(TaskFaultKind kind);

/// Which supervised stage family a task belongs to. kAny is valid only
/// in rules (wildcard match), never in a TaskCoord.
enum class TaskStageKind {
  kPregelCompute = 0,
  kMrMap,
  kMrShuffle,
  kMrReduce,
  kAny,
};

std::string_view TaskStageKindToString(TaskStageKind kind);

/// Identifies one task attempt: which stage family, which stage index
/// (Pregel superstep / MapReduce round), which logical executor runs
/// it, and which attempt number this is (0 = first attempt).
struct TaskCoord {
  TaskStageKind stage_kind = TaskStageKind::kPregelCompute;
  std::int64_t stage_index = 0;
  int executor = 0;
  int attempt = 0;
};

/// The decision for one attempt.
struct TaskFault {
  TaskFaultKind kind = TaskFaultKind::kNone;
  double delay_seconds = 0.0;  // only for kStraggle
};

/// One realized injection, for the plan's replayable log.
struct TaskFaultEvent {
  TaskFaultKind kind;
  TaskCoord coord;
  double delay_seconds;
};

/// "crash@compute:1:0#2" style rendering of one realized event.
std::string TaskFaultEventToString(const TaskFaultEvent& event);

/// A scripted compute-fault schedule. Rules match (stage kind, stage
/// index, executor); `stage_index`/`executor` < 0 and
/// TaskStageKind::kAny are wildcards. Each rule fires a bounded number
/// of times (`times` < 0 = unbounded). Thread-safe: supervised attempts
/// consult the plan concurrently from pool workers.
class FaultPlan {
 public:
  struct Rule {
    TaskFaultKind kind = TaskFaultKind::kNone;
    TaskStageKind stage_kind = TaskStageKind::kAny;
    std::int64_t stage_index = -1;  // < 0 = any
    int executor = -1;              // < 0 = any
    std::int64_t times = 1;         // < 0 = unbounded
    double delay_seconds = 0.0;     // kStraggle only
  };

  /// Kills matching attempts before they run (kInternal, permanent).
  void ArmCrash(TaskStageKind stage_kind, std::int64_t stage_index,
                int executor, std::int64_t times = 1);
  /// Fails matching attempts with kUnavailable (transient, retryable).
  void ArmTransient(TaskStageKind stage_kind, std::int64_t stage_index,
                    int executor, std::int64_t times = 1);
  /// Delays matching attempts by `delay_seconds` (a straggler).
  void ArmDelay(TaskStageKind stage_kind, std::int64_t stage_index,
                int executor, double delay_seconds, std::int64_t times = 1);
  void Arm(Rule rule);

  /// The fault (if any) to apply to this attempt. First matching rule
  /// with shots remaining fires; every firing is logged.
  TaskFault Next(const TaskCoord& coord);

  std::size_t num_rules() const;
  /// Total faults fired, and per-kind breakdowns — what chaos tests
  /// compare against the run report's `faults` section.
  std::int64_t faults_fired() const;
  std::int64_t crashes_fired() const;
  std::int64_t transients_fired() const;
  std::int64_t delays_fired() const;
  /// Every realized injection, in firing order.
  std::vector<TaskFaultEvent> realized_events() const;

 private:
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::int64_t crashes_ = 0;
  std::int64_t transients_ = 0;
  std::int64_t delays_ = 0;
  std::vector<TaskFaultEvent> events_;
};

/// Parses a CLI fault-plan spec into `plan` (appending to its rules).
///
/// Grammar (semicolon-separated rules):
///   rule  := kind '@' stage ':' step ':' worker [ 'x' times ] [ '~' ms ]
///   kind  := "crash" | "transient" | "straggle"
///   stage := "compute" | "map" | "shuffle" | "reduce" | "any"
///   step  := integer | '*'          (Pregel superstep / MR round)
///   worker:= integer | '*'          (logical executor id)
///   times := integer (-1 = every match; default 1)
///   ms    := delay in milliseconds (straggle only; default 100)
///
/// Examples:
///   "crash@compute:1:0"            crash worker 0's first attempt in
///                                  superstep 1
///   "straggle@any:*:2~250"         delay every attempt on worker 2 by
///                                  250 ms
///   "transient@map:0:*x3"          three transient failures anywhere
///                                  in the map stage
Status ParseFaultPlan(std::string_view spec, FaultPlan* plan);

}  // namespace inferturbo

#endif  // INFERTURBO_RUNTIME_FAULT_PLAN_H_
