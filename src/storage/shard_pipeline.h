#ifndef INFERTURBO_STORAGE_SHARD_PIPELINE_H_
#define INFERTURBO_STORAGE_SHARD_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/common/result.h"
#include "src/pregel/worker_metrics.h"
#include "src/storage/graph_view.h"

namespace inferturbo {

struct ShardPipelineOptions {
  /// In-flight partition window: the loader keeps up to this many
  /// unconsumed partitions resident (loading or ready) ahead of the
  /// consumer. 2 = classic double buffering (compute on p while I/O
  /// fills p+1). <= 0 disables the pipeline — Acquire degrades to a
  /// plain demand AcquirePartition.
  int slots = 2;
};

/// Aggregated pipeline accounting for one sweep, folded into the job's
/// StorageMetrics so the overlap win shows up in run reports.
struct PipelineStats {
  /// I/O seconds hidden behind compute: for each consumed load, the
  /// part of its load time the consumer did not wait for.
  double overlap_seconds = 0.0;
  /// Seconds consumers stalled inside Acquire() waiting on a load.
  double wait_seconds = 0.0;
  /// Loads the loader issued ahead of demand vs. loads a consumer had
  /// to ask for explicitly (out-of-window or out-of-order access).
  std::int64_t loads_ahead = 0;
  std::int64_t loads_demand = 0;

  void Merge(const PipelineStats& other) {
    overlap_seconds += other.overlap_seconds;
    wait_seconds += other.wait_seconds;
    loads_ahead += other.loads_ahead;
    loads_demand += other.loads_demand;
  }
  /// Adds this sweep's overlap/wait accounting to a StorageMetrics.
  void FoldInto(StorageMetrics* metrics) const {
    metrics->overlap_seconds += overlap_seconds;
    metrics->pipeline_wait_seconds += wait_seconds;
  }
};

/// Explicit double-buffered streaming over a GraphView: one dedicated
/// loader thread fills up to `slots` partitions ahead of the consumer,
/// and Acquire(p) hands off through an explicit ready-future — the
/// replacement for the demand-Map-races-Prefetch scheme (which queued
/// fire-and-forget loads on the busy compute pool, so "prefetched"
/// streaming benchmarked *slower* than plain streaming).
///
/// Contract: one sweep. Each partition is acquired at most once per
/// pipeline instance (a second Acquire of the same partition degrades
/// to a direct demand load). Consumption may be out of order — a
/// demanded partition jumps the loader's queue — and the loader never
/// schedules past the view's last partition. Construct one pipeline per
/// map stage / materialize sweep; construction cost is one thread.
///
/// Passthrough mode: views with a resident graph, single-partition
/// views, and slots <= 0 skip the thread entirely and Acquire calls
/// straight through, so callers never special-case in-memory runs.
///
/// Thread-safe for concurrent Acquire calls on distinct partitions
/// (the MapReduce map stage runs map instances on a pool). The view
/// must outlive the pipeline.
class ShardPipeline {
 public:
  explicit ShardPipeline(const GraphView& view,
                         ShardPipelineOptions options = {});
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  /// Blocks until partition p is loaded (usually it already is) and
  /// returns its slice, freeing the slot for the next load. Load errors
  /// surface here exactly as a direct AcquirePartition would report
  /// them; after an error the pipeline keeps serving other partitions.
  Result<PartitionSlice> Acquire(std::int64_t partition);

  /// False when running in passthrough mode (no loader thread).
  bool active() const { return loader_.joinable(); }

  /// Snapshot of the sweep's accounting so far.
  PipelineStats stats() const;

 private:
  struct Slot {
    bool ready = false;
    Result<PartitionSlice> result = Status::OK();
    double io_seconds = 0.0;
  };

  /// Lowest schedulable partition under the window, or -1. Demanded
  /// partitions win regardless of window occupancy (a consumer is
  /// blocked on them).
  std::int64_t PickTargetLocked();
  void LoaderLoop();

  const GraphView& view_;
  const ShardPipelineOptions options_;
  const std::int64_t num_partitions_;

  mutable std::mutex mu_;
  std::condition_variable loader_cv_;  ///< wakes the loader
  std::condition_variable ready_cv_;   ///< wakes blocked consumers
  std::map<std::int64_t, Slot> slots_;  ///< scheduled, not yet consumed
  std::unordered_set<std::int64_t> demanded_;
  std::unordered_set<std::int64_t> consumed_;
  std::int64_t next_ahead_ = 0;  ///< scheduling cursor for ahead loads
  std::int64_t in_flight_ = 0;   ///< loads the loader is executing now
  bool stop_ = false;
  PipelineStats stats_;

  std::thread loader_;
};

/// Options for the pipeline-aware MaterializeGraph overload.
struct MaterializeOptions {
  /// Pipeline window used while sweeping partitions; <= 0 streams on
  /// demand (the original behavior).
  int pipeline_slots = 2;
  /// When set, the sweep's pipeline accounting is merged in.
  PipelineStats* stats = nullptr;
};

/// MaterializeGraph with the partition sweep running on a
/// ShardPipeline, so shard I/O for partition p+1 overlaps the rebuild
/// of partition p. Byte-identical output to the plain overload.
Result<Graph> MaterializeGraph(const GraphView& view,
                               const MaterializeOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_SHARD_PIPELINE_H_
