#include "src/storage/shard_writer.h"

#include <cstring>
#include <filesystem>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/binary_io.h"
#include "src/common/crc32.h"
#include "src/graph/partition.h"

namespace inferturbo {
namespace {

/// One page staged for writing: its table entry plus the payload bytes.
struct StagedPage {
  PageKind kind;
  std::string payload;
};

void StageI64Page(PageKind kind, const std::vector<std::int64_t>& values,
                  std::vector<StagedPage>* pages) {
  StagedPage page;
  page.kind = kind;
  page.payload.assign(
      reinterpret_cast<const char*>(values.data()),
      values.size() * sizeof(std::int64_t));
  pages->push_back(std::move(page));
}

void StageFloatPage(PageKind kind, const std::vector<float>& values,
                    std::vector<StagedPage>* pages) {
  StagedPage page;
  page.kind = kind;
  page.payload.assign(reinterpret_cast<const char*>(values.data()),
                      values.size() * sizeof(float));
  pages->push_back(std::move(page));
}

/// Assembles one shard file: header, page table, 64-byte-aligned
/// payloads, each frame CRC-stamped.
std::string AssembleShardFile(const ShardHeader& header,
                              std::vector<StagedPage> pages) {
  std::string file = EncodeShardHeader(header);
  // Lay payloads out past the page table, aligning each to
  // kPageAlignment, and build the entries as we go.
  std::size_t cursor = ShardPayloadStart();
  std::vector<PageEntry> entries;
  entries.reserve(pages.size());
  for (const StagedPage& page : pages) {
    PageEntry entry;
    entry.kind = page.kind;
    entry.bytes = page.payload.size();
    if (page.payload.empty()) {
      entry.offset = 0;
      entry.payload_crc = 0;
    } else {
      cursor = (cursor + kPageAlignment - 1) / kPageAlignment *
               kPageAlignment;
      entry.offset = cursor;
      entry.payload_crc = Crc32(page.payload);
      cursor += page.payload.size();
    }
    entries.push_back(entry);
  }
  for (const PageEntry& entry : entries) {
    file += EncodePageEntry(entry);
  }
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].payload.empty()) continue;
    file.resize(entries[i].offset, '\0');  // alignment padding
    file += pages[i].payload;
  }
  return file;
}

}  // namespace

Result<ShardMeta> WriteGraphShards(const Graph& graph,
                                   const std::string& directory,
                                   const ShardWriterOptions& options) {
  if (directory.empty()) {
    return Status::InvalidArgument("shard directory must be set");
  }
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1, got " +
                                   std::to_string(options.num_partitions));
  }
  if (graph.is_multi_label()) {
    return Status::InvalidArgument(
        "multi-label graphs are not representable in the shard format");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (!std::filesystem::is_directory(directory)) {
    return Status::IoError("cannot create shard directory " + directory);
  }

  const std::int64_t feature_dim = graph.feature_dim();
  const std::int64_t edge_feature_dim =
      graph.has_edge_features() ? graph.edge_features().cols() : 0;
  const bool has_labels = !graph.labels().empty();

  // Same partitioner + member order the runtime's workers use, so a
  // shard-backed MapReduce job streams the exact node order an
  // in-memory job maps.
  const PartitionAssignment assignment = AssignPartitions(
      graph.num_nodes(), HashPartitioner(options.num_partitions));

  ShardMeta meta;
  meta.num_nodes = graph.num_nodes();
  meta.num_edges = graph.num_edges();
  meta.feature_dim = feature_dim;
  meta.edge_feature_dim = edge_feature_dim;
  meta.num_classes = graph.num_classes();
  meta.has_labels = has_labels;

  for (std::int64_t p = 0; p < options.num_partitions; ++p) {
    const std::vector<NodeId>& members = assignment.members[p];
    std::vector<std::int64_t> node_ids(members.begin(), members.end());
    std::vector<std::int64_t> out_offsets;
    out_offsets.reserve(members.size() + 1);
    out_offsets.push_back(0);
    std::vector<std::int64_t> out_dst;
    std::vector<std::int64_t> out_edge_ids;
    std::vector<float> node_features;
    node_features.reserve(members.size() *
                          static_cast<std::size_t>(feature_dim));
    std::vector<float> edge_features;
    std::vector<std::int64_t> labels;

    for (const NodeId v : members) {
      for (const EdgeId e : graph.OutEdges(v)) {
        out_dst.push_back(graph.EdgeDst(e));
        out_edge_ids.push_back(e);
        if (edge_feature_dim > 0) {
          const float* row = graph.edge_features().RowPtr(e);
          edge_features.insert(edge_features.end(), row,
                               row + edge_feature_dim);
        }
      }
      out_offsets.push_back(static_cast<std::int64_t>(out_dst.size()));
      const float* row = graph.node_features().RowPtr(v);
      node_features.insert(node_features.end(), row, row + feature_dim);
      if (has_labels) {
        labels.push_back(graph.labels()[static_cast<std::size_t>(v)]);
      }
    }

    ShardHeader header;
    header.partition = p;
    header.num_nodes = static_cast<std::int64_t>(members.size());
    header.num_edges = static_cast<std::int64_t>(out_dst.size());
    header.feature_dim = feature_dim;
    header.edge_feature_dim = edge_feature_dim;
    header.has_labels = has_labels;

    std::vector<StagedPage> pages;
    pages.reserve(kNumPageKinds);
    StageI64Page(PageKind::kNodeIds, node_ids, &pages);
    StageI64Page(PageKind::kOutOffsets, out_offsets, &pages);
    StageI64Page(PageKind::kOutDst, out_dst, &pages);
    StageI64Page(PageKind::kOutEdgeIds, out_edge_ids, &pages);
    StageFloatPage(PageKind::kNodeFeatures, node_features, &pages);
    StageFloatPage(PageKind::kEdgeFeatures, edge_features, &pages);
    StageI64Page(PageKind::kLabels, labels, &pages);

    const std::string file = AssembleShardFile(header, std::move(pages));
    const std::string path = directory + "/" + ShardFileName(p);
    INFERTURBO_RETURN_NOT_OK(WriteFileAtomic(
        path, file, options.fault_injector, options.retry));

    ShardPartitionInfo info;
    info.num_nodes = header.num_nodes;
    info.num_edges = header.num_edges;
    meta.partitions.push_back(info);
  }

  // Commit point: the pack is only valid once the meta lands.
  const std::string meta_path = directory + "/" + ShardMetaFileName();
  INFERTURBO_RETURN_NOT_OK(WriteFileAtomic(meta_path, EncodeShardMeta(meta),
                                           options.fault_injector,
                                           options.retry));
  return meta;
}

}  // namespace inferturbo
