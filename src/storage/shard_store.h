#ifndef INFERTURBO_STORAGE_SHARD_STORE_H_
#define INFERTURBO_STORAGE_SHARD_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/common/io_fault.h"
#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/pregel/worker_metrics.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_reader.h"

namespace inferturbo {

/// One validated, resident shard: typed views over its pages. The
/// backing memory is an mmap'd read-only file, an aligned buffer filled
/// by the direct-I/O read ladder, or (when a fault injector is active)
/// a heap copy; either way it is immutable and outlives every span
/// handed out, for as long as the MappedShard does.
class MappedShard {
 public:
  ~MappedShard();
  MappedShard(const MappedShard&) = delete;
  MappedShard& operator=(const MappedShard&) = delete;

  const ShardHeader& header() const { return header_; }

  /// Global node id per local row, ascending.
  std::span<const std::int64_t> node_ids() const {
    return I64Page(0);
  }
  /// Local CSR offsets (num_nodes + 1) into the edge pages.
  std::span<const std::int64_t> out_offsets() const { return I64Page(1); }
  /// Global destination node id per out-edge.
  std::span<const std::int64_t> out_dst() const { return I64Page(2); }
  /// Global edge id per out-edge — the original Graph numbering.
  std::span<const std::int64_t> out_edge_ids() const { return I64Page(3); }
  /// (num_nodes × feature_dim) row-major feature rows.
  const float* node_features() const {
    return reinterpret_cast<const float*>(PagePtr(4));
  }
  /// (num_edges × edge_feature_dim), nullptr when the pack has none.
  const float* edge_features() const {
    return header_.edge_feature_dim == 0
               ? nullptr
               : reinterpret_cast<const float*>(PagePtr(5));
  }
  /// Single-label class ids, empty when the pack is unlabeled.
  std::span<const std::int64_t> labels() const {
    return header_.has_labels ? I64Page(6)
                              : std::span<const std::int64_t>();
  }

  /// Bytes this shard holds resident (the whole file image) — the unit
  /// the store's memory budget is accounted in.
  std::size_t mapped_bytes() const { return size_; }

 private:
  friend class ShardStore;
  friend struct ShardStoreInternal;  ///< loader/validator in the .cc
  MappedShard() = default;

  const char* PagePtr(int index) const {
    return base_ + entries_[static_cast<std::size_t>(index)].offset;
  }
  std::span<const std::int64_t> I64Page(int index) const {
    const PageEntry& e = entries_[static_cast<std::size_t>(index)];
    return {reinterpret_cast<const std::int64_t*>(base_ + e.offset),
            static_cast<std::size_t>(e.bytes / sizeof(std::int64_t))};
  }

  ShardHeader header_;
  std::array<PageEntry, kNumPageKinds> entries_{};
  const char* base_ = nullptr;
  std::size_t size_ = 0;
  void* mmap_base_ = nullptr;   ///< non-null when backed by mmap
  std::string heap_;            ///< backing bytes on the injector path
  AlignedShardBuffer buffer_;   ///< backing bytes on the read ladder
};

/// A lease pins one shard resident. The shard stays mapped — and its
/// bytes stay charged against the budget — until the last lease drops,
/// even if the store evicts or is destroyed first.
using ShardLease = std::shared_ptr<const MappedShard>;

struct ShardStoreOptions {
  std::string directory;
  /// Cap on total resident shard bytes; 0 = unlimited. Before mapping a
  /// new shard the store evicts least-recently-used cached shards until
  /// the incoming one fits, so peak_bytes_mapped never exceeds the
  /// budget as long as callers hold at most the leases they are using.
  std::uint64_t memory_budget_bytes = 0;
  /// Verify every page's CRC32 (and CSR offset sanity) on first map.
  bool verify_checksums = true;
  /// Pool for async Prefetch; nullptr makes Prefetch a no-op.
  ThreadPool* prefetch_pool = nullptr;
  /// Optional fault injection: when set, shards are read through
  /// ReadFileToString (heap fallback) so every IoFaultKind applies.
  IoFaultInjector* fault_injector = nullptr;
  IoRetryPolicy retry;
  /// How shard bytes get resident. kAuto probes the ladder (io_uring →
  /// O_DIRECT → fadvise-pread → mmap) against the pack's meta file at
  /// Open(); any other value forces that tier. A forced non-mmap tier
  /// that fails at load time falls back to mmap for that shard (counted
  /// in read_path_fallbacks). Ignored while a fault injector is set —
  /// injected faults need the heap read path.
  ShardReadPath read_path = ShardReadPath::kAuto;
  /// Budget carved out of memory_budget_bytes for the pinned hub
  /// hot-set (PinHotSet). Pinned shards never cycle through the LRU;
  /// the LRU works the remaining memory_budget_bytes - pinned bytes.
  /// Must be <= memory_budget_bytes when both are nonzero. 0 disables
  /// pinning.
  std::uint64_t pinned_budget_bytes = 0;
};

/// Maps shard files on demand under a memory budget (paper §IV-C2: the
/// MapReduce backend streams graph data from external storage instead
/// of holding it resident).
///
/// Map(p) returns a lease on partition p, loading + validating the file
/// on a miss and evicting LRU cached shards first to stay under budget.
/// Prefetch(p) schedules the same load on the configured pool so the
/// next partition is resident by the time the pipeline asks for it.
/// Loads never block on an in-flight prefetch of the same shard — a
/// duplicate load may race and the loser is dropped — so a slow or
/// wedged pool can never deadlock a Map() caller.
///
/// Thread-safe; cheap to copy (shared handle to one cache). Corruption
/// (bad magic, truncation, CRC mismatch, inconsistent counts) surfaces
/// as a clean IoError from Map(), never a crash.
class ShardStore {
 public:
  /// Validates the directory's meta file and returns a store over it.
  static Result<ShardStore> Open(ShardStoreOptions options);

  const ShardMeta& meta() const;
  const ShardStoreOptions& options() const;

  /// Returns a lease on partition p, loading it if not resident.
  Result<ShardLease> Map(std::int64_t partition);

  /// Schedules an async load of partition p (no-op without a pool, or
  /// when p is already resident or being prefetched).
  void Prefetch(std::int64_t partition);

  /// Builds the pinned hub hot-set: ranks partitions by the out-edges
  /// their hub nodes carry (nodes whose out-degree exceeds
  /// `hub_threshold` — the same nodes the activation threshold flags),
  /// then greedily pins the heaviest shards resident until
  /// pinned_budget_bytes is spent. Ranking reads only each shard's
  /// header + CSR offsets page (a transient pread, never charged
  /// against the budget); pinning itself goes through Map(), so pinned
  /// shards are validated like any other. Pinned shards are exempt from
  /// LRU eviction but still counted against memory_budget_bytes, and
  /// they unpin when the store is destroyed. Returns the number of
  /// partitions pinned; a no-op returning 0 when pinned_budget_bytes
  /// is 0. Call once, before streaming starts; idempotent.
  Result<std::int64_t> PinHotSet(std::int64_t hub_threshold);

  /// The read tier Open() resolved (never kAuto). kMmap whenever a
  /// fault injector forces the heap path.
  ShardReadPath read_path() const;

  /// Point-in-time snapshot of the store's counters.
  StorageMetrics metrics() const;

  /// Opaque shared state (cache + counters); public so the loader
  /// helpers in the .cc can name it.
  struct State;

 private:
  explicit ShardStore(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_SHARD_STORE_H_
