#ifndef INFERTURBO_STORAGE_GRAPH_VIEW_H_
#define INFERTURBO_STORAGE_GRAPH_VIEW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/pregel/worker_metrics.h"
#include "src/storage/shard_store.h"

namespace inferturbo {

/// One partition's graph data, as spans over backing memory pinned by
/// `lease`. The layout mirrors the shard format: a local CSR with
/// global node/dst/edge ids plus gathered feature and label rows, in
/// the member-list order HashPartitioner assigns — the order the
/// MapReduce map stage walks.
struct PartitionSlice {
  /// Global node id per local row, ascending.
  std::span<const std::int64_t> nodes;
  /// Local CSR offsets (nodes.size() + 1) into the edge arrays.
  std::span<const std::int64_t> out_offsets;
  /// Global destination node id per out-edge.
  std::span<const std::int64_t> out_dst;
  /// Global edge id per out-edge (the owning Graph's numbering).
  std::span<const std::int64_t> out_edge_ids;
  /// (nodes.size() × feature_dim) row-major.
  const float* node_features = nullptr;
  /// (out_dst.size() × edge_feature_dim) row-major; nullptr when the
  /// graph has no edge features.
  const float* edge_features = nullptr;
  /// Per-node class ids; empty when unlabeled.
  std::span<const std::int64_t> labels;
  /// Keeps the backing memory alive for the slice's lifetime.
  std::shared_ptr<const void> lease;
};

/// Uniform partitioned access to a graph, whether it is resident in
/// memory or streamed from a shard directory. Inference drivers that
/// consume a GraphView one partition at a time (the MapReduce map
/// stage) work out-of-core for free: swap the implementation, nothing
/// else changes, and the numbers stay bit-identical because both
/// implementations present the same node order and the same raw bytes.
class GraphView {
 public:
  virtual ~GraphView() = default;

  virtual std::int64_t num_nodes() const = 0;
  virtual std::int64_t num_edges() const = 0;
  virtual std::int64_t feature_dim() const = 0;
  /// 0 when the graph has no edge features.
  virtual std::int64_t edge_feature_dim() const = 0;
  virtual std::int64_t num_classes() const = 0;
  virtual bool has_labels() const = 0;
  virtual std::int64_t num_partitions() const = 0;

  /// Pins partition p and returns spans over its data.
  virtual Result<PartitionSlice> AcquirePartition(
      std::int64_t partition) const = 0;
  /// Hints that partition p will be acquired soon. Must be a no-op —
  /// not even a queued task — for out-of-range partitions, so drivers
  /// can blindly hint p+1 while walking a sweep.
  virtual void PrefetchPartition(std::int64_t /*partition*/) const {}
  /// Pins the hub-heavy hot-set resident (out-of-core views configured
  /// with a pinned budget; see ShardStore::PinHotSet). Returns the
  /// number of partitions pinned — 0 for in-memory views and stores
  /// without a pinned budget.
  virtual Result<std::int64_t> PinHotSet(std::int64_t /*hub_threshold*/) const {
    return std::int64_t{0};
  }

  /// The whole graph, when it is resident anyway (in-memory views);
  /// nullptr for out-of-core views. Lets callers keep fast paths that
  /// need random access without forcing a materialization.
  virtual const Graph* resident_graph() const { return nullptr; }

  /// Storage counters (all zero for in-memory views).
  virtual StorageMetrics storage_metrics() const { return StorageMetrics(); }
};

/// GraphView over a resident Graph: AcquirePartition gathers copies of
/// the partition's rows (same bytes, same order a shard would hold).
class InMemoryGraphView : public GraphView {
 public:
  /// `graph` must outlive the view. Partitioning uses HashPartitioner,
  /// matching what WriteGraphShards packs.
  InMemoryGraphView(const Graph& graph, std::int64_t num_partitions);

  std::int64_t num_nodes() const override { return graph_->num_nodes(); }
  std::int64_t num_edges() const override { return graph_->num_edges(); }
  std::int64_t feature_dim() const override { return graph_->feature_dim(); }
  std::int64_t edge_feature_dim() const override;
  std::int64_t num_classes() const override {
    return graph_->num_classes();
  }
  bool has_labels() const override { return !graph_->labels().empty(); }
  std::int64_t num_partitions() const override {
    return static_cast<std::int64_t>(members_.size());
  }

  Result<PartitionSlice> AcquirePartition(
      std::int64_t partition) const override;
  const Graph* resident_graph() const override { return graph_; }

 private:
  const Graph* graph_;
  std::vector<std::vector<NodeId>> members_;
};

/// GraphView streaming partitions from a ShardStore. The returned
/// slices point directly into the mapped (or heap-validated) shard
/// image; the slice's lease pins it.
class ShardGraphView : public GraphView {
 public:
  explicit ShardGraphView(ShardStore store) : store_(std::move(store)) {}

  std::int64_t num_nodes() const override { return store_.meta().num_nodes; }
  std::int64_t num_edges() const override { return store_.meta().num_edges; }
  std::int64_t feature_dim() const override {
    return store_.meta().feature_dim;
  }
  std::int64_t edge_feature_dim() const override {
    return store_.meta().edge_feature_dim;
  }
  std::int64_t num_classes() const override {
    return store_.meta().num_classes;
  }
  bool has_labels() const override { return store_.meta().has_labels; }
  std::int64_t num_partitions() const override {
    return store_.meta().num_partitions();
  }

  Result<PartitionSlice> AcquirePartition(
      std::int64_t partition) const override;
  void PrefetchPartition(std::int64_t partition) const override;
  Result<std::int64_t> PinHotSet(std::int64_t hub_threshold) const override;
  StorageMetrics storage_metrics() const override {
    return store_.metrics();
  }

  const ShardStore& store() const { return store_; }

 private:
  mutable ShardStore store_;
};

/// Rebuilds a full in-memory Graph from any view, reproducing the
/// original edge numbering exactly: slices carry global edge ids, so
/// every edge lands at its original position and the rebuilt CSC
/// in-edge order — and with it every order-sensitive float fold — is
/// bit-identical to the graph that was packed. Peak extra memory is
/// one partition's slice at a time on top of the output graph.
Result<Graph> MaterializeGraph(const GraphView& view);

namespace storage_internal {
/// Materialization core shared by the demand path above and the
/// pipelined overload in shard_pipeline.h: `acquire(p)` supplies each
/// partition's slice, everything else (validation, exact edge-id
/// reconstruction) is identical, which is what keeps the two overloads
/// byte-identical.
Result<Graph> MaterializeWith(
    const GraphView& view,
    const std::function<Result<PartitionSlice>(std::int64_t)>& acquire);
}  // namespace storage_internal

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_GRAPH_VIEW_H_
