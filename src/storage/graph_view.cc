#include "src/storage/graph_view.h"

#include <utility>

#include "src/graph/graph_builder.h"
#include "src/graph/partition.h"

namespace inferturbo {
namespace {

/// Backing storage for an InMemoryGraphView slice: the gathered copies
/// the spans point into, owned by the slice's lease.
struct GatheredPartition {
  std::vector<std::int64_t> nodes;
  std::vector<std::int64_t> out_offsets;
  std::vector<std::int64_t> out_dst;
  std::vector<std::int64_t> out_edge_ids;
  std::vector<float> node_features;
  std::vector<float> edge_features;
  std::vector<std::int64_t> labels;
};

}  // namespace

InMemoryGraphView::InMemoryGraphView(const Graph& graph,
                                     std::int64_t num_partitions)
    : graph_(&graph) {
  members_ = AssignPartitions(graph.num_nodes(),
                              HashPartitioner(num_partitions))
                 .members;
}

std::int64_t InMemoryGraphView::edge_feature_dim() const {
  return graph_->has_edge_features() ? graph_->edge_features().cols() : 0;
}

Result<PartitionSlice> InMemoryGraphView::AcquirePartition(
    std::int64_t partition) const {
  if (partition < 0 || partition >= num_partitions()) {
    return Status::InvalidArgument(
        "partition " + std::to_string(partition) + " out of range [0, " +
        std::to_string(num_partitions()) + ")");
  }
  const Graph& g = *graph_;
  const std::vector<NodeId>& members =
      members_[static_cast<std::size_t>(partition)];
  const std::int64_t fd = g.feature_dim();
  const std::int64_t efd = edge_feature_dim();
  const bool labeled = !g.labels().empty();

  auto data = std::make_shared<GatheredPartition>();
  data->nodes.assign(members.begin(), members.end());
  data->out_offsets.reserve(members.size() + 1);
  data->out_offsets.push_back(0);
  data->node_features.reserve(members.size() *
                              static_cast<std::size_t>(fd));
  for (const NodeId v : members) {
    for (const EdgeId e : g.OutEdges(v)) {
      data->out_dst.push_back(g.EdgeDst(e));
      data->out_edge_ids.push_back(e);
      if (efd > 0) {
        const float* row = g.edge_features().RowPtr(e);
        data->edge_features.insert(data->edge_features.end(), row,
                                   row + efd);
      }
    }
    data->out_offsets.push_back(
        static_cast<std::int64_t>(data->out_dst.size()));
    const float* row = g.node_features().RowPtr(v);
    data->node_features.insert(data->node_features.end(), row, row + fd);
    if (labeled) {
      data->labels.push_back(g.labels()[static_cast<std::size_t>(v)]);
    }
  }

  PartitionSlice slice;
  slice.nodes = data->nodes;
  slice.out_offsets = data->out_offsets;
  slice.out_dst = data->out_dst;
  slice.out_edge_ids = data->out_edge_ids;
  slice.node_features = data->node_features.data();
  slice.edge_features = efd > 0 ? data->edge_features.data() : nullptr;
  slice.labels = data->labels;
  slice.lease = std::move(data);
  return slice;
}

Result<PartitionSlice> ShardGraphView::AcquirePartition(
    std::int64_t partition) const {
  INFERTURBO_ASSIGN_OR_RETURN(ShardLease lease, store_.Map(partition));
  PartitionSlice slice;
  slice.nodes = lease->node_ids();
  slice.out_offsets = lease->out_offsets();
  slice.out_dst = lease->out_dst();
  slice.out_edge_ids = lease->out_edge_ids();
  slice.node_features = lease->node_features();
  slice.edge_features = lease->edge_features();
  slice.labels = lease->labels();
  slice.lease = std::move(lease);
  return slice;
}

void ShardGraphView::PrefetchPartition(std::int64_t partition) const {
  // Guard at the view boundary: drivers hint p+1 while sweeping, so the
  // last partition's hint lands out of range and must cost nothing —
  // not even the store's range check path is worth trusting here, this
  // is the documented no-op point.
  if (partition < 0 || partition >= num_partitions()) return;
  store_.Prefetch(partition);
}

Result<std::int64_t> ShardGraphView::PinHotSet(
    std::int64_t hub_threshold) const {
  return store_.PinHotSet(hub_threshold);
}

Result<Graph> MaterializeGraph(const GraphView& view) {
  if (const Graph* resident = view.resident_graph()) {
    return *resident;  // already whole; copy rather than re-gather
  }
  return storage_internal::MaterializeWith(
      view, [&view](std::int64_t p) {
        view.PrefetchPartition(p + 1);
        return view.AcquirePartition(p);
      });
}

namespace storage_internal {

Result<Graph> MaterializeWith(
    const GraphView& view,
    const std::function<Result<PartitionSlice>(std::int64_t)>& acquire) {
  const std::int64_t num_nodes = view.num_nodes();
  const std::int64_t num_edges = view.num_edges();
  const std::int64_t fd = view.feature_dim();
  const std::int64_t efd = view.edge_feature_dim();
  const bool labeled = view.has_labels();

  // Fill edge-id-indexed arrays so AddEdge can run in original edge-id
  // order — the ordering the CSC in-edge index (and every fold over it)
  // is derived from.
  std::vector<NodeId> edge_src(static_cast<std::size_t>(num_edges), -1);
  std::vector<NodeId> edge_dst(static_cast<std::size_t>(num_edges), -1);
  Tensor node_features(num_nodes, fd);
  Tensor edge_features =
      efd > 0 ? Tensor(num_edges, efd) : Tensor();
  std::vector<std::int64_t> labels(
      labeled ? static_cast<std::size_t>(num_nodes) : 0, 0);
  std::vector<bool> node_seen(static_cast<std::size_t>(num_nodes), false);

  for (std::int64_t p = 0; p < view.num_partitions(); ++p) {
    INFERTURBO_ASSIGN_OR_RETURN(PartitionSlice slice, acquire(p));
    if (slice.out_offsets.size() != slice.nodes.size() + 1) {
      return Status::IoError("partition " + std::to_string(p) +
                             " slice has inconsistent CSR offsets");
    }
    for (std::size_t i = 0; i < slice.nodes.size(); ++i) {
      const std::int64_t v = slice.nodes[i];
      if (v < 0 || v >= num_nodes || node_seen[static_cast<std::size_t>(v)]) {
        return Status::IoError("partition " + std::to_string(p) +
                               " names node " + std::to_string(v) +
                               " out of range or twice");
      }
      node_seen[static_cast<std::size_t>(v)] = true;
      node_features.SetRow(v, slice.node_features +
                                  i * static_cast<std::size_t>(fd));
      if (labeled) {
        labels[static_cast<std::size_t>(v)] = slice.labels[i];
      }
      for (std::int64_t k = slice.out_offsets[i];
           k < slice.out_offsets[i + 1]; ++k) {
        const std::int64_t e = slice.out_edge_ids[static_cast<std::size_t>(k)];
        if (e < 0 || e >= num_edges ||
            edge_src[static_cast<std::size_t>(e)] != -1) {
          return Status::IoError("partition " + std::to_string(p) +
                                 " names edge id " + std::to_string(e) +
                                 " out of range or twice");
        }
        edge_src[static_cast<std::size_t>(e)] = v;
        edge_dst[static_cast<std::size_t>(e)] =
            slice.out_dst[static_cast<std::size_t>(k)];
        if (efd > 0) {
          edge_features.SetRow(
              e, slice.edge_features + static_cast<std::size_t>(k) *
                                           static_cast<std::size_t>(efd));
        }
      }
    }
  }
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    if (!node_seen[static_cast<std::size_t>(v)]) {
      return Status::IoError("node " + std::to_string(v) +
                             " is missing from every partition");
    }
  }
  for (std::int64_t e = 0; e < num_edges; ++e) {
    if (edge_src[static_cast<std::size_t>(e)] < 0) {
      return Status::IoError("edge id " + std::to_string(e) +
                             " is missing from every partition");
    }
  }

  GraphBuilder builder(num_nodes);
  builder.ReserveEdges(static_cast<std::size_t>(num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e) {
    builder.AddEdge(edge_src[static_cast<std::size_t>(e)],
                    edge_dst[static_cast<std::size_t>(e)]);
  }
  builder.SetNodeFeatures(std::move(node_features));
  if (efd > 0) builder.SetEdgeFeatures(std::move(edge_features));
  if (labeled) builder.SetLabels(std::move(labels), view.num_classes());
  return std::move(builder).Finish();
}

}  // namespace storage_internal

}  // namespace inferturbo
