#ifndef INFERTURBO_STORAGE_SHARD_WRITER_H_
#define INFERTURBO_STORAGE_SHARD_WRITER_H_

#include <cstdint>
#include <string>

#include "src/common/io_fault.h"
#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/storage/shard_format.h"

namespace inferturbo {

struct ShardWriterOptions {
  /// Number of shards. Nodes are assigned with the same HashPartitioner
  /// the runtime uses for workers, so a shard-backed MapReduce run with
  /// num_workers == num_partitions streams exactly the member lists an
  /// in-memory run would build — the bit-identity contract depends on
  /// this.
  std::int64_t num_partitions = 1;
  /// Optional fault injection + retry for every file written.
  IoFaultInjector* fault_injector = nullptr;
  IoRetryPolicy retry;
};

/// Packs `graph` into an immutable shard directory at `directory`
/// (created if absent). Shard files are written first, each through
/// WriteFileAtomic; the meta file is written LAST and is the commit
/// point — a directory without a readable meta is not a valid pack, so
/// an interrupted pack can never be mistaken for a complete one.
/// Returns the meta that was written.
///
/// Multi-label graphs and train/val/test splits are not representable
/// (the format carries what an inference job needs, like the MR text
/// tables); packing a multi-label graph is an InvalidArgument.
Result<ShardMeta> WriteGraphShards(const Graph& graph,
                                   const std::string& directory,
                                   const ShardWriterOptions& options = {});

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_SHARD_WRITER_H_
