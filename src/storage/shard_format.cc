#include "src/storage/shard_format.h"

#include <cstdio>

#include "src/common/binary_io.h"
#include "src/common/crc32.h"

namespace inferturbo {
namespace {

/// Pads `frame` with zero bytes to exactly `target` and stamps a CRC32
/// over everything before the trailing 4 bytes.
std::string SealFixedFrame(std::string frame, std::size_t target) {
  frame.resize(target - sizeof(std::uint32_t), '\0');
  const std::uint32_t crc = Crc32(frame);
  BinaryWriter tail;
  tail.PutU32(crc);
  frame += tail.Take();
  return frame;
}

/// Validates the trailing CRC32 of a fixed-size frame.
Status CheckFixedFrame(std::string_view frame, std::string_view what) {
  const std::string_view body = frame.substr(0, frame.size() - 4);
  std::uint32_t stored = 0;
  BinaryReader tail(frame.substr(frame.size() - 4));
  INFERTURBO_RETURN_NOT_OK(tail.GetU32(&stored));
  if (Crc32(body) != stored) {
    return Status::IoError(std::string(what) + " checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string_view PageKindToString(PageKind kind) {
  switch (kind) {
    case PageKind::kNodeIds:
      return "node_ids";
    case PageKind::kOutOffsets:
      return "out_offsets";
    case PageKind::kOutDst:
      return "out_dst";
    case PageKind::kOutEdgeIds:
      return "out_edge_ids";
    case PageKind::kNodeFeatures:
      return "node_features";
    case PageKind::kEdgeFeatures:
      return "edge_features";
    case PageKind::kLabels:
      return "labels";
  }
  return "unknown";
}

std::string ShardMetaFileName() { return "meta.its"; }

std::string ShardFileName(std::int64_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05lld.its",
                static_cast<long long>(partition));
  return buf;
}

std::string EncodeShardMeta(const ShardMeta& meta) {
  BinaryWriter writer;
  writer.PutU32(kMetaMagic);
  writer.PutU32(kShardFormatVersion);
  writer.PutI64(meta.num_nodes);
  writer.PutI64(meta.num_edges);
  writer.PutI64(meta.feature_dim);
  writer.PutI64(meta.edge_feature_dim);
  writer.PutI64(meta.num_classes);
  writer.PutU32(meta.has_labels ? 1 : 0);
  writer.PutU64(meta.partitions.size());
  for (const ShardPartitionInfo& part : meta.partitions) {
    writer.PutI64(part.num_nodes);
    writer.PutI64(part.num_edges);
  }
  const std::uint32_t crc = Crc32(writer.buffer());
  writer.PutU32(crc);
  return writer.Take();
}

Status DecodeShardMeta(std::string_view bytes, ShardMeta* meta) {
  if (bytes.size() < 4) {
    return Status::IoError("shard meta truncated (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  INFERTURBO_RETURN_NOT_OK(CheckFixedFrame(bytes, "shard meta"));
  BinaryReader reader(bytes.substr(0, bytes.size() - 4));
  std::uint32_t magic = 0, version = 0, has_labels = 0;
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&magic));
  if (magic != kMetaMagic) {
    return Status::IoError("not a shard meta file (bad magic)");
  }
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&version));
  if (version != kShardFormatVersion) {
    return Status::IoError("unsupported shard format version " +
                           std::to_string(version));
  }
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&meta->num_nodes));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&meta->num_edges));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&meta->feature_dim));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&meta->edge_feature_dim));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&meta->num_classes));
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&has_labels));
  meta->has_labels = has_labels != 0;
  std::uint64_t num_partitions = 0;
  INFERTURBO_RETURN_NOT_OK(reader.GetU64(&num_partitions));
  if (num_partitions > (reader.remaining() / 16)) {
    return Status::IoError("shard meta claims " +
                           std::to_string(num_partitions) +
                           " partitions but the file is too small");
  }
  meta->partitions.clear();
  meta->partitions.reserve(num_partitions);
  std::int64_t node_total = 0, edge_total = 0;
  for (std::uint64_t i = 0; i < num_partitions; ++i) {
    ShardPartitionInfo part;
    INFERTURBO_RETURN_NOT_OK(reader.GetI64(&part.num_nodes));
    INFERTURBO_RETURN_NOT_OK(reader.GetI64(&part.num_edges));
    if (part.num_nodes < 0 || part.num_edges < 0) {
      return Status::IoError("shard meta partition " + std::to_string(i) +
                             " has negative counts");
    }
    node_total += part.num_nodes;
    edge_total += part.num_edges;
    meta->partitions.push_back(part);
  }
  if (node_total != meta->num_nodes || edge_total != meta->num_edges) {
    return Status::IoError(
        "shard meta partition totals disagree with graph totals");
  }
  return Status::OK();
}

std::string EncodeShardHeader(const ShardHeader& header) {
  BinaryWriter writer;
  writer.PutU32(kShardMagic);
  writer.PutU32(kShardFormatVersion);
  writer.PutI64(header.partition);
  writer.PutI64(header.num_nodes);
  writer.PutI64(header.num_edges);
  writer.PutI64(header.feature_dim);
  writer.PutI64(header.edge_feature_dim);
  writer.PutU32(header.has_labels ? 1 : 0);
  return SealFixedFrame(writer.Take(), kShardHeaderBytes);
}

Status DecodeShardHeader(std::string_view bytes, ShardHeader* header) {
  if (bytes.size() < kShardHeaderBytes) {
    return Status::IoError("shard file truncated: " +
                           std::to_string(bytes.size()) +
                           " bytes is smaller than the header");
  }
  const std::string_view frame = bytes.substr(0, kShardHeaderBytes);
  INFERTURBO_RETURN_NOT_OK(CheckFixedFrame(frame, "shard header"));
  BinaryReader reader(frame);
  std::uint32_t magic = 0, version = 0, has_labels = 0;
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&magic));
  if (magic != kShardMagic) {
    return Status::IoError("not a shard file (bad magic)");
  }
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&version));
  if (version != kShardFormatVersion) {
    return Status::IoError("unsupported shard format version " +
                           std::to_string(version));
  }
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&header->partition));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&header->num_nodes));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&header->num_edges));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&header->feature_dim));
  INFERTURBO_RETURN_NOT_OK(reader.GetI64(&header->edge_feature_dim));
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&has_labels));
  header->has_labels = has_labels != 0;
  if (header->partition < 0 || header->num_nodes < 0 ||
      header->num_edges < 0 || header->feature_dim < 0 ||
      header->edge_feature_dim < 0) {
    return Status::IoError("shard header has negative counts");
  }
  return Status::OK();
}

std::string EncodePageEntry(const PageEntry& entry) {
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(entry.kind));
  writer.PutU32(0);  // reserved
  writer.PutU64(entry.offset);
  writer.PutU64(entry.bytes);
  writer.PutU32(entry.payload_crc);
  return SealFixedFrame(writer.Take(), kPageEntryBytes);
}

Status DecodePageEntry(std::string_view file_bytes, int index,
                       PageEntry* entry) {
  const std::size_t begin =
      kShardHeaderBytes + static_cast<std::size_t>(index) * kPageEntryBytes;
  if (file_bytes.size() < begin + kPageEntryBytes) {
    return Status::IoError("shard file truncated inside the page table");
  }
  const std::string_view frame = file_bytes.substr(begin, kPageEntryBytes);
  INFERTURBO_RETURN_NOT_OK(CheckFixedFrame(
      frame, "page table entry " + std::to_string(index)));
  BinaryReader reader(frame);
  std::uint32_t kind = 0, reserved = 0;
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&kind));
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&reserved));
  INFERTURBO_RETURN_NOT_OK(reader.GetU64(&entry->offset));
  INFERTURBO_RETURN_NOT_OK(reader.GetU64(&entry->bytes));
  INFERTURBO_RETURN_NOT_OK(reader.GetU32(&entry->payload_crc));
  if (kind < 1 || kind > static_cast<std::uint32_t>(kNumPageKinds)) {
    return Status::IoError("page table entry " + std::to_string(index) +
                           " has unknown page kind " + std::to_string(kind));
  }
  entry->kind = static_cast<PageKind>(kind);
  return Status::OK();
}

std::size_t ShardPayloadStart() {
  const std::size_t raw =
      kShardHeaderBytes +
      static_cast<std::size_t>(kNumPageKinds) * kPageEntryBytes;
  return (raw + kPageAlignment - 1) / kPageAlignment * kPageAlignment;
}

}  // namespace inferturbo
