#ifndef INFERTURBO_STORAGE_SHARD_FORMAT_H_
#define INFERTURBO_STORAGE_SHARD_FORMAT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace inferturbo {

/// On-disk shard format for out-of-core graphs (ISSUE 4 / paper
/// §IV-C2: the MapReduce backend keeps graph data in external storage,
/// not RAM).
///
/// A *shard directory* holds one immutable file per partition plus a
/// meta file:
///
///   meta.its                 global header (dims, partition table)
///   shard_00000.its ...      one partition's pages
///
/// Each shard file is
///
///   [ShardHeader | 64 B, CRC-framed]
///   [PageEntry x kNumPageKinds | 32 B each, CRC-framed]
///   [page payloads, each 64-byte aligned, CRC per payload]
///
/// Pages are columnar: node ids, a local CSR (offsets + global dst ids
/// + global edge ids), node-feature rows, optional edge-feature rows,
/// optional labels. All integers are little-endian int64, features are
/// raw IEEE float32 — round trips are bit-exact, which is what lets a
/// shard-backed run promise bit-identical logits to the in-memory path.
///
/// Global edge ids are stored per out-edge so the original Graph —
/// including its edge numbering, and therefore its CSC in-edge order —
/// can be reconstructed exactly (MaterializeGraph), keeping fold-order-
/// sensitive float reductions bit-identical across storage backends.
///
/// Every frame (headers, page table entries, payloads) carries a CRC32
/// checked before first use, so a truncated file or a flipped bit
/// surfaces as a clean IoError Status, never a crash; files are written
/// through AtomicFile, so a reader sees old-or-new, never torn bytes.

inline constexpr std::uint32_t kShardMagic = 0x48535449;  // "ITSH"
inline constexpr std::uint32_t kMetaMagic = 0x4D535449;   // "ITSM"
inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Alignment of every page payload within a shard file: wide enough for
/// int64/float access through the mapping and for cache-line streaming.
inline constexpr std::size_t kPageAlignment = 64;

/// Fixed on-disk sizes (field-by-field little-endian serialization).
inline constexpr std::size_t kShardHeaderBytes = 64;
inline constexpr std::size_t kPageEntryBytes = 32;

/// The columnar pages of one shard, in file order. A shard always
/// carries the first five; edge features and labels are optional
/// (bytes = 0 when absent).
enum class PageKind : std::uint32_t {
  kNodeIds = 1,       ///< int64[n]   global node id per local row, ascending
  kOutOffsets = 2,    ///< int64[n+1] local CSR offsets into the edge pages
  kOutDst = 3,        ///< int64[m]   global destination node ids
  kOutEdgeIds = 4,    ///< int64[m]   global edge ids (original numbering)
  kNodeFeatures = 5,  ///< float[n*feature_dim] row-major feature rows
  kEdgeFeatures = 6,  ///< float[m*edge_feature_dim], optional
  kLabels = 7,        ///< int64[n], optional
};
inline constexpr int kNumPageKinds = 7;

std::string_view PageKindToString(PageKind kind);

/// Decoded shard-file header.
struct ShardHeader {
  std::int64_t partition = 0;
  std::int64_t num_nodes = 0;   ///< nodes in this shard
  std::int64_t num_edges = 0;   ///< out-edges in this shard
  std::int64_t feature_dim = 0;
  std::int64_t edge_feature_dim = 0;  ///< 0 = no edge features
  bool has_labels = false;
};

/// Decoded page-table entry. `offset`/`bytes` locate the payload within
/// the shard file; `payload_crc` is CRC32 over those bytes.
struct PageEntry {
  PageKind kind = PageKind::kNodeIds;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t payload_crc = 0;
};

/// Per-partition shape recorded in the meta file.
struct ShardPartitionInfo {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
};

/// Global header for a shard directory.
struct ShardMeta {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  std::int64_t feature_dim = 0;
  std::int64_t edge_feature_dim = 0;  ///< 0 = no edge features
  std::int64_t num_classes = 0;       ///< 0 = unlabeled
  bool has_labels = false;
  std::vector<ShardPartitionInfo> partitions;

  std::int64_t num_partitions() const {
    return static_cast<std::int64_t>(partitions.size());
  }
};

/// File names inside a shard directory.
std::string ShardMetaFileName();
std::string ShardFileName(std::int64_t partition);

/// Meta file body (CRC-framed); decode validates magic, version, and
/// the trailing checksum and returns IoError on any mismatch.
std::string EncodeShardMeta(const ShardMeta& meta);
Status DecodeShardMeta(std::string_view bytes, ShardMeta* meta);

/// Serializes the fixed-size shard header (kShardHeaderBytes bytes,
/// trailing CRC32 over the preceding fields).
std::string EncodeShardHeader(const ShardHeader& header);
/// Parses + validates a shard header from the start of `bytes`.
Status DecodeShardHeader(std::string_view bytes, ShardHeader* header);

/// Serializes one page-table entry (kPageEntryBytes bytes, trailing
/// CRC32 over the preceding fields).
std::string EncodePageEntry(const PageEntry& entry);
/// Parses + validates the `index`-th page-table entry of a shard file.
Status DecodePageEntry(std::string_view file_bytes, int index,
                       PageEntry* entry);

/// Offset of the first page payload (header + full page table, rounded
/// up to kPageAlignment).
std::size_t ShardPayloadStart();

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_SHARD_FORMAT_H_
