#include "src/storage/shard_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/crc32.h"
#include "src/common/timer.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {

MappedShard::~MappedShard() {
  if (mmap_base_ != nullptr) {
    ::munmap(mmap_base_, size_);
  }
}

struct ShardStore::State {
  ShardStoreOptions options;
  ShardMeta meta;
  /// The tier Open() resolved for this store (never kAuto).
  ShardReadPath read_path = ShardReadPath::kMmap;

  mutable std::mutex mu;
  struct CacheEntry {
    ShardLease lease;
    std::uint64_t last_use = 0;
    bool from_prefetch = false;
    /// Pinned entries belong to the hub hot-set: LRU eviction skips
    /// them, so they stay resident across supersteps.
    bool pinned = false;
  };
  std::unordered_map<std::int64_t, CacheEntry> cache;
  std::unordered_set<std::int64_t> prefetching;
  std::uint64_t tick = 0;
  /// Hot-set accounting, guarded by `mu`.
  std::uint64_t pinned_bytes = 0;
  std::int64_t pinned_partitions = 0;
  /// Counters mutated under `mu`. bytes_mapped/peak/unmap_calls live as
  /// atomics below: the lease deleter updates them without taking `mu`,
  /// so dropping a lease inside an eviction (which holds `mu`) cannot
  /// self-deadlock.
  StorageMetrics counters;

  std::atomic<std::uint64_t> bytes_mapped{0};
  std::atomic<std::uint64_t> peak_bytes_mapped{0};
  std::atomic<std::int64_t> unmap_calls{0};
};

/// Loader + validator with friend access to MappedShard internals.
struct ShardStoreInternal {
  static Status ValidateShard(MappedShard* shard, bool verify_checksums);
  static Result<std::unique_ptr<MappedShard>> BuildFromHeap(
      std::string bytes, bool verify_checksums);
  static Result<std::unique_ptr<MappedShard>> BuildFromBuffer(
      AlignedShardBuffer buffer, bool verify_checksums);
  static Result<std::unique_ptr<MappedShard>> MapFromFile(
      const std::string& path, bool verify_checksums);
};

/// Validates the shard image behind `shard->base_`/`size_` and fills in
/// its header and page table. Everything a hostile file could get wrong
/// — magic, version, frame CRCs, page kinds/order, byte counts vs the
/// header's shape, alignment, bounds, payload CRCs, CSR offsets — fails
/// with a descriptive IoError.
Status ShardStoreInternal::ValidateShard(MappedShard* shard,
                                         bool verify_checksums) {
  const std::string_view view(shard->base_, shard->size_);
  INFERTURBO_RETURN_NOT_OK(DecodeShardHeader(view, &shard->header_));
  const ShardHeader& h = shard->header_;
  const std::uint64_t expected_bytes[kNumPageKinds] = {
      static_cast<std::uint64_t>(h.num_nodes) * 8,
      static_cast<std::uint64_t>(h.num_nodes + 1) * 8,
      static_cast<std::uint64_t>(h.num_edges) * 8,
      static_cast<std::uint64_t>(h.num_edges) * 8,
      static_cast<std::uint64_t>(h.num_nodes * h.feature_dim) * 4,
      static_cast<std::uint64_t>(h.num_edges * h.edge_feature_dim) * 4,
      h.has_labels ? static_cast<std::uint64_t>(h.num_nodes) * 8 : 0,
  };
  for (int i = 0; i < kNumPageKinds; ++i) {
    PageEntry& entry = shard->entries_[static_cast<std::size_t>(i)];
    INFERTURBO_RETURN_NOT_OK(DecodePageEntry(view, i, &entry));
    const std::string page(PageKindToString(entry.kind));
    if (entry.kind != static_cast<PageKind>(i + 1)) {
      return Status::IoError("page table out of order: slot " +
                             std::to_string(i) + " holds " + page);
    }
    if (entry.bytes != expected_bytes[i]) {
      return Status::IoError(
          page + " page holds " + std::to_string(entry.bytes) +
          " bytes, header shape requires " +
          std::to_string(expected_bytes[i]));
    }
    if (entry.bytes == 0) continue;
    if (entry.offset % kPageAlignment != 0 ||
        entry.offset < ShardPayloadStart()) {
      return Status::IoError(page + " page is misaligned");
    }
    if (entry.offset > shard->size_ ||
        entry.bytes > shard->size_ - entry.offset) {
      return Status::IoError("shard file truncated: " + page +
                             " page extends past end of file");
    }
    if (verify_checksums &&
        Crc32(shard->base_ + entry.offset, entry.bytes) !=
            entry.payload_crc) {
      return Status::IoError(page + " page checksum mismatch");
    }
  }
  // Cheap structural sanity on the CSR so downstream slicing can index
  // without re-checking.
  const std::span<const std::int64_t> offsets = shard->out_offsets();
  if (offsets.front() != 0 || offsets.back() != h.num_edges) {
    return Status::IoError("CSR offsets do not cover the edge pages");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IoError("CSR offsets are not non-decreasing");
    }
  }
  return Status::OK();
}

/// Heap-backed shard: used whenever a fault injector is configured so
/// every IoFaultKind applies to shard reads.
Result<std::unique_ptr<MappedShard>> ShardStoreInternal::BuildFromHeap(
    std::string bytes, bool verify_checksums) {
  std::unique_ptr<MappedShard> shard(new MappedShard());
  shard->heap_ = std::move(bytes);
  shard->base_ = shard->heap_.data();
  shard->size_ = shard->heap_.size();
  INFERTURBO_RETURN_NOT_OK(ValidateShard(shard.get(), verify_checksums));
  return shard;
}

/// Aligned-buffer-backed shard: the whole file image arrived through
/// the direct-I/O read ladder (pread / O_DIRECT / io_uring).
Result<std::unique_ptr<MappedShard>> ShardStoreInternal::BuildFromBuffer(
    AlignedShardBuffer buffer, bool verify_checksums) {
  std::unique_ptr<MappedShard> shard(new MappedShard());
  shard->buffer_ = std::move(buffer);
  shard->base_ = shard->buffer_.data();
  shard->size_ = shard->buffer_.size();
  INFERTURBO_RETURN_NOT_OK(ValidateShard(shard.get(), verify_checksums));
  return shard;
}

/// mmap-backed shard (PROT_READ, MAP_PRIVATE): the kernel pages data in
/// on demand and can drop clean pages under pressure.
Result<std::unique_ptr<MappedShard>> ShardStoreInternal::MapFromFile(
    const std::string& path, bool verify_checksums) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open shard file " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("cannot stat shard file " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IoError("mmap failed for shard file " + path);
  }
  std::unique_ptr<MappedShard> shard(new MappedShard());
  shard->mmap_base_ = base;
  shard->base_ = static_cast<const char*>(base);
  shard->size_ = size;
  // ~MappedShard munmaps on the validation-failure path.
  INFERTURBO_RETURN_NOT_OK(ValidateShard(shard.get(), verify_checksums));
  return shard;
}

namespace {

using State = ShardStore::State;

bool IsChecksumError(const Status& status) {
  return status.message().find("checksum mismatch") != std::string::npos;
}

/// Cross-checks a loaded shard against the meta's expectations for that
/// partition, so a renamed or stale shard file cannot masquerade as the
/// requested one.
Status CheckAgainstMeta(const MappedShard& shard, const ShardMeta& meta,
                        std::int64_t partition) {
  const ShardHeader& h = shard.header();
  const ShardPartitionInfo& info =
      meta.partitions[static_cast<std::size_t>(partition)];
  if (h.partition != partition || h.num_nodes != info.num_nodes ||
      h.num_edges != info.num_edges || h.feature_dim != meta.feature_dim ||
      h.edge_feature_dim != meta.edge_feature_dim ||
      h.has_labels != meta.has_labels) {
    return Status::IoError("shard header disagrees with meta for partition " +
                           std::to_string(partition));
  }
  return Status::OK();
}

/// Exact on-disk size of partition p, computable from the meta alone —
/// what evict-before-load uses to make room before the bytes arrive.
std::uint64_t ExpectedShardBytes(const ShardMeta& meta,
                                 std::int64_t partition) {
  const ShardPartitionInfo& info =
      meta.partitions[static_cast<std::size_t>(partition)];
  const std::uint64_t n = static_cast<std::uint64_t>(info.num_nodes);
  const std::uint64_t m = static_cast<std::uint64_t>(info.num_edges);
  const std::uint64_t sizes[kNumPageKinds] = {
      n * 8,
      (n + 1) * 8,
      m * 8,
      m * 8,
      n * static_cast<std::uint64_t>(meta.feature_dim) * 4,
      m * static_cast<std::uint64_t>(meta.edge_feature_dim) * 4,
      meta.has_labels ? n * 8 : 0,
  };
  std::uint64_t cursor = ShardPayloadStart();
  for (const std::uint64_t size : sizes) {
    if (size == 0) continue;
    cursor = (cursor + kPageAlignment - 1) / kPageAlignment * kPageAlignment;
    cursor += size;
  }
  return cursor;
}

/// Drops least-recently-used *unpinned* cache entries until `incoming`
/// more bytes fit under the budget (or only the pinned hot-set
/// remains). Entries held by outstanding leases free their bytes only
/// when those leases drop; the loop still terminates because each pass
/// shrinks the evictable set.
void EvictForLocked(State& s, std::uint64_t incoming) {
  if (s.options.memory_budget_bytes == 0) return;
  if (s.cache.empty() ||
      s.bytes_mapped.load(std::memory_order_relaxed) + incoming <=
          s.options.memory_budget_bytes) {
    return;
  }
  TraceSpan span("storage/evict");
  while (s.bytes_mapped.load(std::memory_order_relaxed) + incoming >
         s.options.memory_budget_bytes) {
    auto lru = s.cache.end();
    for (auto it = s.cache.begin(); it != s.cache.end(); ++it) {
      if (it->second.pinned) continue;
      if (lru == s.cache.end() ||
          it->second.last_use < lru->second.last_use) {
        lru = it;
      }
    }
    if (lru == s.cache.end()) return;  // nothing evictable left
    RecordFlightEvent(FlightEventKind::kEviction, "storage/evict",
                      lru->first);
    // Erasing drops the cache's reference; when it is the last one the
    // deleter returns the bytes immediately (atomics only — no `mu`).
    s.cache.erase(lru);
    ++s.counters.evictions;
    if (MetricsEnabled()) {
      GlobalMetrics().GetCounter("storage.evictions")->Increment();
    }
  }
}

/// Out-edges carried by hub nodes (out-degree > `hub_threshold`) of one
/// shard, computed from a transient read of just the header, page
/// table, and CSR offsets page — a few KB against multi-MB shards, and
/// never charged to the memory budget. The page-table frame CRC is
/// checked (DecodePageEntry); the offsets payload CRC is not — full
/// validation happens when the shard is actually pinned via Map().
Result<std::int64_t> HubEdgesForPartition(const std::string& path,
                                          std::int64_t hub_threshold) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open shard file " + path);
  }
  const auto pread_exact = [fd, &path](char* dst, std::size_t len,
                                       std::size_t off) {
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::pread(fd, dst + got, len - got,
                                static_cast<off_t>(off + got));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::IoError("short read of shard prefix in " + path);
      }
      got += static_cast<std::size_t>(n);
    }
    return Status::OK();
  };
  std::string prefix(ShardPayloadStart(), '\0');
  Status status = pread_exact(prefix.data(), prefix.size(), 0);
  PageEntry offsets_entry;
  if (status.ok()) {
    // Slot 1 of the page table is kOutOffsets (the local CSR).
    status = DecodePageEntry(prefix, 1, &offsets_entry);
  }
  std::vector<std::int64_t> offsets;
  if (status.ok()) {
    offsets.resize(offsets_entry.bytes / sizeof(std::int64_t));
    status = pread_exact(reinterpret_cast<char*>(offsets.data()),
                         offsets_entry.bytes, offsets_entry.offset);
  }
  ::close(fd);
  INFERTURBO_RETURN_NOT_OK(status);
  std::int64_t hub_edges = 0;
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    const std::int64_t degree = offsets[i] - offsets[i - 1];
    if (degree > hub_threshold) hub_edges += degree;
  }
  return hub_edges;
}

/// Non-injector load through the resolved read tier, with mmap as the
/// safety net when a buffered/direct/uring read fails mid-job (the
/// probe passed at Open, but a filesystem can still refuse O_DIRECT on
/// a particular file, or a ring allocation can hit a limit). Validation
/// failures are returned as-is — re-reading corrupt bytes through mmap
/// cannot fix them.
Result<std::unique_ptr<MappedShard>> LoadFromDisk(
    const std::shared_ptr<State>& s, const std::string& path) {
  if (s->read_path != ShardReadPath::kMmap) {
    Result<AlignedShardBuffer> bytes = ReadFileAligned(path, s->read_path);
    if (bytes.ok()) {
      return ShardStoreInternal::BuildFromBuffer(
          std::move(*bytes), s->options.verify_checksums);
    }
    std::lock_guard<std::mutex> lock(s->mu);
    ++s->counters.read_path_fallbacks;
  }
  const bool timed = MetricsEnabled();
  WallTimer timer;
  Result<std::unique_ptr<MappedShard>> mapped =
      ShardStoreInternal::MapFromFile(path, s->options.verify_checksums);
  if (timed && mapped.ok()) {
    ObserveShardRead(ShardReadPath::kMmap, timer.ElapsedSeconds(),
                     static_cast<std::int64_t>((*mapped)->mapped_bytes()));
  }
  return mapped;
}

/// Loads + validates one shard. No budget accounting happens here —
/// bytes are charged at publication (PublishLocked), so a duplicate
/// load that loses the insert race is freed without ever counting
/// against the budget or distorting the peak.
Result<std::unique_ptr<MappedShard>> LoadShard(
    const std::shared_ptr<State>& s, std::int64_t partition) {
  TraceSpan span("storage/load", partition);
  const std::string path =
      s->options.directory + "/" + ShardFileName(partition);
  std::unique_ptr<MappedShard> shard;
  const auto note_checksum_failure = [&s](const Status& status) {
    if (IsChecksumError(status)) {
      std::lock_guard<std::mutex> lock(s->mu);
      ++s->counters.checksum_failures;
    }
  };
  if (s->options.fault_injector != nullptr) {
    // Read through the injector so faults apply; corruption is only
    // detectable after validation, so the retry wraps read + validate.
    const Status status = RetryWithBackoff(s->options.retry, [&]() {
      Result<std::string> bytes =
          ReadFileToString(path, s->options.fault_injector);
      INFERTURBO_RETURN_NOT_OK(bytes.status());
      Result<std::unique_ptr<MappedShard>> built =
          ShardStoreInternal::BuildFromHeap(std::move(*bytes),
                                            s->options.verify_checksums);
      if (!built.ok()) {
        note_checksum_failure(built.status());
        return built.status();
      }
      shard = std::move(*built);
      return Status::OK();
    });
    if (!status.ok()) {
      return Status::IoError(path + ": " + status.message());
    }
  } else {
    Result<std::unique_ptr<MappedShard>> built = LoadFromDisk(s, path);
    if (!built.ok()) {
      note_checksum_failure(built.status());
      return Status::IoError(path + ": " + built.status().message());
    }
    shard = std::move(*built);
  }
  {
    const Status status = CheckAgainstMeta(*shard, s->meta, partition);
    if (!status.ok()) {
      return Status::IoError(path + ": " + status.message());
    }
  }
  {
    std::lock_guard<std::mutex> lock(s->mu);
    ++s->counters.map_calls;
  }
  return shard;
}

/// Publishes a loaded shard under `mu`: evicts LRU entries to make room
/// for its ACTUAL size, charges its bytes, and inserts it into the
/// cache. The returned lease's deleter refunds the bytes when the last
/// holder drops it — the store is referenced weakly so a lease
/// outliving the store stays valid.
ShardLease PublishLocked(const std::shared_ptr<State>& s,
                         std::int64_t partition,
                         std::unique_ptr<MappedShard> shard,
                         bool from_prefetch) {
  const std::size_t size = shard->mapped_bytes();
  EvictForLocked(*s, size);
  s->bytes_mapped.fetch_add(size, std::memory_order_relaxed);
  std::uint64_t now = s->bytes_mapped.load(std::memory_order_relaxed);
  std::uint64_t peak = s->peak_bytes_mapped.load(std::memory_order_relaxed);
  while (now > peak && !s->peak_bytes_mapped.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (MetricsEnabled()) {
    GlobalMetrics().GetGauge("storage.bytes_mapped")->Set(
        static_cast<std::int64_t>(now));
  }
  std::weak_ptr<State> weak = s;
  ShardLease lease(shard.release(), [weak](const MappedShard* p) {
    const std::size_t bytes = p->mapped_bytes();
    delete p;
    if (const std::shared_ptr<State> st = weak.lock()) {
      const std::uint64_t now_mapped =
          st->bytes_mapped.fetch_sub(bytes, std::memory_order_relaxed) -
          bytes;
      st->unmap_calls.fetch_add(1, std::memory_order_relaxed);
      if (MetricsEnabled()) {
        GlobalMetrics().GetGauge("storage.bytes_mapped")->Set(
            static_cast<std::int64_t>(now_mapped));
      }
    }
  });
  State::CacheEntry entry;
  entry.lease = lease;
  entry.last_use = ++s->tick;
  entry.from_prefetch = from_prefetch;
  s->cache[partition] = std::move(entry);
  return lease;
}

}  // namespace

Result<ShardStore> ShardStore::Open(ShardStoreOptions options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("shard directory must be set");
  }
  if (options.memory_budget_bytes != 0 &&
      options.pinned_budget_bytes > options.memory_budget_bytes) {
    return Status::InvalidArgument(
        "pinned_budget_bytes (" +
        std::to_string(options.pinned_budget_bytes) +
        ") exceeds memory_budget_bytes (" +
        std::to_string(options.memory_budget_bytes) + ")");
  }
  const std::string meta_path =
      options.directory + "/" + ShardMetaFileName();
  ShardMeta meta;
  // The meta is the pack's commit point; validate-and-retry like every
  // other injector-visible read.
  const Status status = RetryWithBackoff(options.retry, [&]() {
    Result<std::string> bytes =
        ReadFileToString(meta_path, options.fault_injector);
    INFERTURBO_RETURN_NOT_OK(bytes.status());
    return DecodeShardMeta(*bytes, &meta);
  });
  if (!status.ok()) {
    return Status::IoError(meta_path + ": " + status.message());
  }
  auto state = std::make_shared<State>();
  state->options = std::move(options);
  state->meta = std::move(meta);
  // Resolve the read tier once per store. An armed fault injector needs
  // every byte to flow through ReadFileToString, which the heap path
  // (reported as kMmap provenance) provides; otherwise probe the ladder
  // against the meta file, which lives on the same filesystem as the
  // shards.
  if (state->options.fault_injector != nullptr) {
    state->read_path = ShardReadPath::kMmap;
  } else if (state->options.read_path == ShardReadPath::kAuto) {
    state->read_path = DetectShardReadPath(meta_path);
  } else {
    state->read_path = state->options.read_path;
  }
  return ShardStore(std::move(state));
}

const ShardMeta& ShardStore::meta() const { return state_->meta; }

const ShardStoreOptions& ShardStore::options() const {
  return state_->options;
}

Result<ShardLease> ShardStore::Map(std::int64_t partition) {
  State& s = *state_;
  if (partition < 0 || partition >= s.meta.num_partitions()) {
    return Status::InvalidArgument(
        "partition " + std::to_string(partition) + " out of range [0, " +
        std::to_string(s.meta.num_partitions()) + ")");
  }
  TraceSpan span("storage/map", partition);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.cache.find(partition);
    if (it != s.cache.end()) {
      ++s.counters.cache_hits;
      if (it->second.pinned) ++s.counters.pinned_hits;
      if (it->second.from_prefetch) {
        ++s.counters.prefetch_hits;
        if (MetricsEnabled()) {
          GlobalMetrics().GetCounter("storage.prefetch_hits")->Increment();
        }
        it->second.from_prefetch = false;
      }
      it->second.last_use = ++s.tick;
      return it->second.lease;
    }
    ++s.counters.cache_misses;
    // Make room before the bytes arrive so the budget holds at peak.
    EvictForLocked(s, ExpectedShardBytes(s.meta, partition));
  }
  INFERTURBO_ASSIGN_OR_RETURN(std::unique_ptr<MappedShard> shard,
                              LoadShard(state_, partition));
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.cache.find(partition);
  if (it != s.cache.end()) {
    // A prefetch (or a concurrent Map) beat us; keep the incumbent and
    // drop our never-charged duplicate — never block on an in-flight
    // load.
    it->second.last_use = ++s.tick;
    if (it->second.from_prefetch) {
      ++s.counters.prefetch_hits;
      if (MetricsEnabled()) {
        GlobalMetrics().GetCounter("storage.prefetch_hits")->Increment();
      }
      it->second.from_prefetch = false;
    }
    return it->second.lease;
  }
  return PublishLocked(state_, partition, std::move(shard),
                       /*from_prefetch=*/false);
}

void ShardStore::Prefetch(std::int64_t partition) {
  State& s = *state_;
  if (s.options.prefetch_pool == nullptr || partition < 0 ||
      partition >= s.meta.num_partitions()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.cache.count(partition) != 0 ||
        s.prefetching.count(partition) != 0) {
      return;
    }
    s.prefetching.insert(partition);
    ++s.counters.prefetch_issued;
    if (MetricsEnabled()) {
      GlobalMetrics().GetCounter("storage.prefetch_issued")->Increment();
    }
  }
  // The task holds the State shared_ptr, so a store destroyed while a
  // prefetch is in flight stays valid until the task finishes.
  const std::shared_ptr<State> state = state_;
  s.options.prefetch_pool->Submit([state, partition]() {
    TraceSpan span("storage/prefetch", partition);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      EvictForLocked(*state, ExpectedShardBytes(state->meta, partition));
    }
    Result<std::unique_ptr<MappedShard>> shard = LoadShard(state, partition);
    std::lock_guard<std::mutex> lock(state->mu);
    state->prefetching.erase(partition);
    ++state->counters.prefetch_completed;
    // A failed prefetch is dropped silently: the next Map() repeats the
    // load and surfaces the error on the demand path.
    if (!shard.ok()) return;
    if (state->cache.count(partition) != 0) return;  // demand load won
    PublishLocked(state, partition, std::move(*shard),
                  /*from_prefetch=*/true);
  });
}

Result<std::int64_t> ShardStore::PinHotSet(std::int64_t hub_threshold) {
  State& s = *state_;
  if (s.options.pinned_budget_bytes == 0) return std::int64_t{0};
  TraceSpan span("storage/pin_hot_set");
  struct HubRank {
    std::int64_t partition = 0;
    std::uint64_t bytes = 0;
    std::int64_t hub_edges = 0;
    std::int64_t num_edges = 0;
  };
  std::vector<HubRank> ranks;
  ranks.reserve(static_cast<std::size_t>(s.meta.num_partitions()));
  for (std::int64_t p = 0; p < s.meta.num_partitions(); ++p) {
    HubRank rank;
    rank.partition = p;
    rank.bytes = ExpectedShardBytes(s.meta, p);
    rank.num_edges =
        s.meta.partitions[static_cast<std::size_t>(p)].num_edges;
    INFERTURBO_ASSIGN_OR_RETURN(
        rank.hub_edges,
        HubEdgesForPartition(
            s.options.directory + "/" + ShardFileName(p), hub_threshold));
    ranks.push_back(rank);
  }
  // Heaviest hub shards first; edge count then partition id break ties
  // so the pinned set is deterministic.
  std::sort(ranks.begin(), ranks.end(),
            [](const HubRank& a, const HubRank& b) {
              if (a.hub_edges != b.hub_edges) return a.hub_edges > b.hub_edges;
              if (a.num_edges != b.num_edges) return a.num_edges > b.num_edges;
              return a.partition < b.partition;
            });
  std::int64_t pinned = 0;
  std::uint64_t spent = 0;
  for (const HubRank& rank : ranks) {
    if (spent + rank.bytes > s.options.pinned_budget_bytes) continue;
    // Pin through the normal demand path so the shard is validated and
    // budget-accounted like any other resident shard.
    INFERTURBO_ASSIGN_OR_RETURN(ShardLease lease, Map(rank.partition));
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.cache.find(rank.partition);
    if (it == s.cache.end()) continue;  // raced with an eviction; skip
    if (!it->second.pinned) {
      it->second.pinned = true;
      s.pinned_bytes += it->second.lease->mapped_bytes();
      ++s.pinned_partitions;
    }
    spent += rank.bytes;
    ++pinned;
  }
  if (MetricsEnabled()) {
    std::lock_guard<std::mutex> lock(s.mu);
    GlobalMetrics().GetGauge("storage.pinned_bytes")->Set(
        static_cast<std::int64_t>(s.pinned_bytes));
  }
  return pinned;
}

ShardReadPath ShardStore::read_path() const { return state_->read_path; }

StorageMetrics ShardStore::metrics() const {
  State& s = *state_;
  StorageMetrics out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out = s.counters;
    out.pinned_bytes = s.pinned_bytes;
    out.pinned_partitions = s.pinned_partitions;
  }
  out.bytes_mapped = s.bytes_mapped.load(std::memory_order_relaxed);
  out.peak_bytes_mapped =
      s.peak_bytes_mapped.load(std::memory_order_relaxed);
  out.unmap_calls = s.unmap_calls.load(std::memory_order_relaxed);
  out.read_path = static_cast<std::int64_t>(s.read_path);
  return out;
}

}  // namespace inferturbo
