#include "src/storage/shard_pipeline.h"

#include <utility>

#include "src/common/timer.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {

ShardPipeline::ShardPipeline(const GraphView& view,
                             ShardPipelineOptions options)
    : view_(view),
      options_(options),
      num_partitions_(view.num_partitions()) {
  // Passthrough for resident graphs (their AcquirePartition is a
  // memory gather, not I/O worth a thread), single-partition views
  // (nothing to run ahead of), and explicitly disabled pipelines.
  if (options_.slots > 0 && view_.resident_graph() == nullptr &&
      num_partitions_ > 1) {
    loader_ = std::thread([this] { LoaderLoop(); });
  }
}

ShardPipeline::~ShardPipeline() {
  if (!loader_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  loader_cv_.notify_all();
  loader_.join();
}

std::int64_t ShardPipeline::PickTargetLocked() {
  // Demanded partitions first: a consumer is blocked on each of them,
  // so they load even when the ahead window is full.
  std::int64_t best = -1;
  for (const std::int64_t p : demanded_) {
    if (slots_.count(p) != 0 || consumed_.count(p) != 0) continue;
    if (best < 0 || p < best) best = p;
  }
  if (best >= 0) return best;
  // Ahead scheduling: the cursor walks 0..P-1 once, skipping partitions
  // already scheduled or consumed, and never runs past the last
  // partition (out-of-range prefetch was the old scheme's bug).
  while (next_ahead_ < num_partitions_ &&
         (slots_.count(next_ahead_) != 0 ||
          consumed_.count(next_ahead_) != 0)) {
    ++next_ahead_;
  }
  if (next_ahead_ < num_partitions_ &&
      static_cast<std::int64_t>(slots_.size()) <
          static_cast<std::int64_t>(options_.slots)) {
    return next_ahead_;
  }
  return -1;
}

void ShardPipeline::LoaderLoop() {
  for (;;) {
    std::int64_t target = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      loader_cv_.wait(lock, [&] {
        if (stop_) return true;
        target = PickTargetLocked();
        return target >= 0;
      });
      if (stop_) return;
      if (demanded_.erase(target) != 0) {
        ++stats_.loads_demand;
      } else {
        ++stats_.loads_ahead;
      }
      slots_.emplace(target, Slot());
    }
    WallTimer timer;
    Result<PartitionSlice> result = [&] {
      TraceSpan span("pipeline/load", target);
      return view_.AcquirePartition(target);
    }();
    const double io_seconds = timer.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The slot cannot have vanished: consumers erase only ready ones.
      Slot& slot = slots_.find(target)->second;
      slot.result = std::move(result);
      slot.io_seconds = io_seconds;
      slot.ready = true;
    }
    ready_cv_.notify_all();
  }
}

Result<PartitionSlice> ShardPipeline::Acquire(std::int64_t partition) {
  if (!active() || partition < 0 || partition >= num_partitions_) {
    // Passthrough, or let the view report the range error verbatim.
    return view_.AcquirePartition(partition);
  }
  double waited = 0.0;
  double io_seconds = 0.0;
  Result<PartitionSlice> out = Status::OK();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (consumed_.count(partition) != 0) {
      // Second acquisition of a partition is outside the one-sweep
      // contract; serve it as a plain demand load (the store's cache
      // usually still has it).
      lock.unlock();
      return view_.AcquirePartition(partition);
    }
    auto it = slots_.find(partition);
    if (it == slots_.end()) {
      demanded_.insert(partition);
      loader_cv_.notify_one();
    }
    if (it == slots_.end() || !it->second.ready) {
      TraceSpan span("pipeline/wait", partition);
      WallTimer wait_timer;
      bool lost_race = false;
      ready_cv_.wait(lock, [&] {
        // A concurrent Acquire of the same partition (speculative
        // duplicate attempts under task supervision) may consume the
        // slot while we wait; detect that and fall back rather than
        // waiting on a slot that will never reappear.
        if (consumed_.count(partition) != 0) {
          lost_race = true;
          return true;
        }
        it = slots_.find(partition);
        return it != slots_.end() && it->second.ready;
      });
      waited = wait_timer.ElapsedSeconds();
      if (lost_race) {
        stats_.wait_seconds += waited;
        lock.unlock();
        return view_.AcquirePartition(partition);
      }
    }
    out = std::move(it->second.result);
    io_seconds = it->second.io_seconds;
    slots_.erase(it);
    consumed_.insert(partition);
    ready_cv_.notify_all();  // wake duplicate waiters on this partition
    stats_.wait_seconds += waited;
    const double hidden = io_seconds - waited;
    if (hidden > 0.0) stats_.overlap_seconds += hidden;
    // The freed slot lets the loader start the next ahead load while
    // the caller computes on this one — the whole point.
    loader_cv_.notify_one();
  }
  if (MetricsEnabled()) {
    GlobalMetrics()
        .GetCounter("storage.pipeline_wait_micros")
        ->Add(static_cast<std::int64_t>(waited * 1e6));
    const double hidden = io_seconds - waited;
    if (hidden > 0.0) {
      GlobalMetrics()
          .GetCounter("storage.overlap_micros")
          ->Add(static_cast<std::int64_t>(hidden * 1e6));
    }
  }
  return out;
}

PipelineStats ShardPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<Graph> MaterializeGraph(const GraphView& view,
                               const MaterializeOptions& options) {
  if (const Graph* resident = view.resident_graph()) {
    return *resident;  // already whole; copy rather than re-gather
  }
  ShardPipeline pipeline(view,
                         ShardPipelineOptions{options.pipeline_slots});
  Result<Graph> out = storage_internal::MaterializeWith(
      view,
      [&pipeline](std::int64_t p) { return pipeline.Acquire(p); });
  if (options.stats != nullptr) options.stats->Merge(pipeline.stats());
  return out;
}

}  // namespace inferturbo
