#ifndef INFERTURBO_STORAGE_SHARD_READER_H_
#define INFERTURBO_STORAGE_SHARD_READER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace inferturbo {

/// How the shard store turns a shard file into resident bytes. The
/// ladder is runtime-detected per store (like the ISA dispatch in the
/// kernel layer): io_uring where the kernel and sandbox allow it,
/// O_DIRECT positional reads where the filesystem supports them,
/// posix_fadvise(SEQUENTIAL)-tuned pread everywhere else, and the
/// original mmap path as the always-works fallback. The non-mmap tiers
/// read into 4 KiB-aligned buffers from the huge-page allocator, so a
/// streaming sweep no longer churns the page cache it is about to
/// evict (O_DIRECT/io_uring bypass it outright) and large shards get
/// 2 MiB-backed TLB entries.
///
/// Numeric values are stable: they are recorded as read-path
/// provenance in StorageMetrics and BENCH_storage.json.
enum class ShardReadPath : int {
  kAuto = 0,    ///< detect the best supported tier at Open()
  kMmap = 1,    ///< PROT_READ/MAP_PRIVATE mapping (original path)
  kPread = 2,   ///< buffered pread + POSIX_FADV_SEQUENTIAL
  kDirect = 3,  ///< O_DIRECT pread (page-cache bypass)
  kUring = 4,   ///< io_uring chunked reads over an O_DIRECT fd
};

/// Stable lowercase name ("mmap", "pread", "direct", "uring", "auto").
std::string_view ShardReadPathName(ShardReadPath path);

/// Parses a --read_path flag value; InvalidArgument on unknown names.
Result<ShardReadPath> ParseShardReadPath(std::string_view name);

/// Probes the ladder top-down against `probe_file` (any existing file
/// on the same filesystem as the shards, e.g. the pack's meta file)
/// and returns the best tier that works end to end — a tier must
/// deliver real bytes in the probe, not just open, so a seccomp filter
/// that admits io_uring_setup but blocks io_uring_enter still
/// downgrades cleanly. Never returns kAuto; returns kMmap only when
/// even plain pread fails (which in practice means the probe file is
/// unreadable and the store will surface that as an IoError anyway).
ShardReadPath DetectShardReadPath(const std::string& probe_file);

/// A whole file image in an aligned allocation. Buffers are 4 KiB
/// aligned (2 MiB aligned and MADV_HUGEPAGE above the huge-page
/// threshold, via the tensor allocator) so every tier of the ladder —
/// including O_DIRECT, which rejects unaligned destinations — can fill
/// them directly.
class AlignedShardBuffer {
 public:
  AlignedShardBuffer() = default;

  /// Allocates capacity for `file_size` bytes rounded up to 4 KiB.
  /// data()/size() still describe exactly the file bytes.
  static Result<AlignedShardBuffer> Allocate(std::size_t file_size);

  const char* data() const { return storage_.get(); }
  char* data() { return storage_.get(); }
  std::size_t size() const { return size_; }
  /// Allocation size (a 4 KiB multiple >= size()).
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_ == nullptr; }

 private:
  struct Free {
    void operator()(char* p) const;
  };
  std::unique_ptr<char[], Free> storage_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Reads the whole of `path` through the given tier (kMmap/kAuto are
/// invalid here — mmap is not a buffer-filling tier). Short files,
/// vanishing files, and I/O errors surface as IoError. The caller owns
/// the returned buffer; nothing of the file stays in kernel page cache
/// on the kDirect/kUring tiers.
Result<AlignedShardBuffer> ReadFileAligned(const std::string& path,
                                           ShardReadPath path_kind);

/// Records one completed shard read into the per-path latency
/// instruments: histogram "storage.read.<path>.seconds" plus counters
/// ".bytes" and ".reads". ReadFileAligned calls this for the
/// buffer-filling tiers; the shard store calls it for the mmap
/// fallback, so a `read_path_fallbacks` regression shows up as a
/// latency distribution shift per tier in the run report's storage
/// section. Subject to MetricsEnabled(); no-op otherwise.
void ObserveShardRead(ShardReadPath path, double seconds,
                      std::int64_t bytes);

}  // namespace inferturbo

#endif  // INFERTURBO_STORAGE_SHARD_READER_H_
