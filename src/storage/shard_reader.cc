#include "src/storage/shard_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#define INFERTURBO_HAS_IO_URING 1
#else
#define INFERTURBO_HAS_IO_URING 0
#endif

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/timer.h"
#include "src/telemetry/metrics.h"
#include "src/tensor/tensor.h"

namespace inferturbo {
namespace {

/// O_DIRECT wants 512-byte alignment on most filesystems; we align
/// buffers, offsets, and lengths to a full page so every plausible
/// logical block size is covered.
constexpr std::size_t kDirectAlignment = 4096;
/// Chunk size for io_uring submissions: big enough to amortize ring
/// overhead, small enough that several chunks pipeline on the device.
constexpr std::size_t kUringChunkBytes = std::size_t{1} << 20;

std::size_t RoundUpAligned(std::size_t bytes) {
  return (bytes + kDirectAlignment - 1) & ~(kDirectAlignment - 1);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " failed for " + path + ": " +
                         std::strerror(errno));
}

/// Opens read-only with O_DIRECT when the filesystem accepts it,
/// falling back to a buffered fd tuned for one sequential pass.
int OpenForRead(const std::string& path, bool want_direct,
                bool* got_direct) {
  if (want_direct) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECT);
    if (fd >= 0) {
      *got_direct = true;
      return fd;
    }
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    *got_direct = false;
#if defined(POSIX_FADV_SEQUENTIAL)
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  }
  return fd;
}

Result<std::size_t> FileSizeOf(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    return Errno("fstat", path);
  }
  return static_cast<std::size_t>(st.st_size);
}

/// Sequential positional reads into `dst`. Works on both buffered and
/// O_DIRECT fds: the destination is page-aligned, offsets advance in
/// read-size units (page multiples except the final buffered tail),
/// and a request may run past EOF (the kernel trims it).
Status PreadWholeFile(int fd, bool direct_fd, char* dst,
                      std::size_t file_size, std::size_t capacity,
                      const std::string& path) {
  // A direct fd must issue aligned lengths, so it walks the rounded-up
  // capacity and lets EOF shorten the final read.
  const std::size_t wanted = direct_fd ? capacity : file_size;
  std::size_t off = 0;
  std::size_t got = 0;
  while (got < file_size) {
    const std::size_t len = wanted - off;
    const ssize_t n = ::pread(fd, dst + off, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path);
    }
    if (n == 0) break;  // EOF
    off += static_cast<std::size_t>(n);
    got = off;
  }
  if (got < file_size) {
    return Status::IoError(path + " shrank mid-read (" +
                           std::to_string(got) + " of " +
                           std::to_string(file_size) + " bytes)");
  }
  return Status::OK();
}

#if INFERTURBO_HAS_IO_URING

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// A minimal single-threaded io_uring wrapper over the raw syscalls
/// (no liburing dependency). One queue serves one file read; setup
/// cost is microseconds against multi-megabyte shards.
struct UringQueue {
  int ring_fd = -1;
  unsigned sq_entry_count = 0;
  void* sq_ring = nullptr;
  std::size_t sq_ring_bytes = 0;
  void* cq_ring = nullptr;  ///< aliases sq_ring with FEAT_SINGLE_MMAP
  std::size_t cq_ring_bytes = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_bytes = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  bool Init(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd = SysIoUringSetup(entries, &params);
    if (ring_fd < 0) return false;
    sq_entry_count = params.sq_entries;

    sq_ring_bytes =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes = cq_ring_bytes =
          sq_ring_bytes > cq_ring_bytes ? sq_ring_bytes : cq_ring_bytes;
    }
    sq_ring = ::mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      sq_ring = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ring = sq_ring;
    } else {
      cq_ring = ::mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd,
                       IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        cq_ring = nullptr;
        return false;
      }
    }
    sqes_bytes = params.sq_entries * sizeof(io_uring_sqe);
    sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES));
    if (sqes == MAP_FAILED) {
      sqes = nullptr;
      return false;
    }

    char* sq = static_cast<char*>(sq_ring);
    sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(cq_ring);
    cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  void PushRead(int fd, char* addr, unsigned len, std::size_t offset) {
    const unsigned tail = __atomic_load_n(sq_tail, __ATOMIC_RELAXED);
    const unsigned index = tail & sq_mask;
    io_uring_sqe* sqe = &sqes[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(addr);
    sqe->len = len;
    sqe->off = offset;
    sqe->user_data = offset;
    sq_array[index] = index;
    __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
  }

  /// Pops one completion if available; returns false when the CQ is
  /// empty.
  bool PopCompletion(io_uring_cqe* out) {
    const unsigned head = __atomic_load_n(cq_head, __ATOMIC_ACQUIRE);
    if (head == __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE)) return false;
    *out = cqes[head & cq_mask];
    __atomic_store_n(cq_head, head + 1, __ATOMIC_RELEASE);
    return true;
  }

  ~UringQueue() {
    if (sqes != nullptr) ::munmap(sqes, sqes_bytes);
    if (cq_ring != nullptr && cq_ring != sq_ring) {
      ::munmap(cq_ring, cq_ring_bytes);
    }
    if (sq_ring != nullptr) ::munmap(sq_ring, sq_ring_bytes);
    if (ring_fd >= 0) ::close(ring_fd);
  }
};

/// Fills `dst` from `fd` with pipelined chunk reads: up to queue-depth
/// chunks in flight, short reads resubmitted from where they stopped
/// (mid-file short reads on O_DIRECT stay block-aligned, so resumed
/// offsets stay valid). Any completion error aborts with IoError.
Status UringReadWholeFile(int fd, char* dst, std::size_t file_size,
                          std::size_t capacity, const std::string& path) {
  UringQueue queue;
  if (!queue.Init(/*entries=*/8)) {
    return Status::IoError("io_uring setup failed for " + path + ": " +
                           std::strerror(errno));
  }
  // Per in-flight chunk bookkeeping keyed by submission offset: bytes
  // of real file content still expected within that chunk.
  std::size_t submit_cursor = 0;  // next unsubmitted byte (aligned)
  std::size_t bytes_done = 0;     // file bytes confirmed read
  unsigned in_flight = 0;
  unsigned to_submit = 0;
  while (bytes_done < file_size) {
    while (in_flight < queue.sq_entry_count && submit_cursor < capacity) {
      const std::size_t len =
          kUringChunkBytes < capacity - submit_cursor
              ? kUringChunkBytes
              : capacity - submit_cursor;
      queue.PushRead(fd, dst + submit_cursor, static_cast<unsigned>(len),
                     submit_cursor);
      submit_cursor += len;
      ++in_flight;
      ++to_submit;
    }
    const int rc = SysIoUringEnter(queue.ring_fd, to_submit,
                                   /*min_complete=*/1,
                                   IORING_ENTER_GETEVENTS);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("io_uring_enter failed for " + path + ": " +
                             std::strerror(errno));
    }
    to_submit = 0;
    io_uring_cqe cqe;
    while (queue.PopCompletion(&cqe)) {
      --in_flight;
      if (cqe.res < 0) {
        return Status::IoError("io_uring read failed for " + path + ": " +
                               std::strerror(-cqe.res));
      }
      const std::size_t offset = cqe.user_data;
      const std::size_t got = static_cast<std::size_t>(cqe.res);
      // File content this chunk was responsible for (the tail chunk's
      // aligned slack past EOF legitimately reads short).
      const std::size_t chunk_len =
          kUringChunkBytes < capacity - offset ? kUringChunkBytes
                                               : capacity - offset;
      const std::size_t expected =
          offset + chunk_len <= file_size ? chunk_len
          : offset < file_size            ? file_size - offset
                                          : 0;
      if (got >= expected) {
        bytes_done += expected;
        continue;
      }
      if (got == 0) {
        return Status::IoError(path + " shrank mid-read (io_uring)");
      }
      // Short read: finish the chunk from where it stopped.
      bytes_done += got;
      queue.PushRead(fd, dst + offset + got,
                     static_cast<unsigned>(chunk_len - got), offset + got);
      ++in_flight;
      ++to_submit;
    }
  }
  return Status::OK();
}

#endif  // INFERTURBO_HAS_IO_URING

Result<AlignedShardBuffer> ReadViaPread(const std::string& path,
                                        bool want_direct) {
  bool direct_fd = false;
  const int fd = OpenForRead(path, want_direct, &direct_fd);
  if (fd < 0) return Errno("open", path);
  Result<std::size_t> size = FileSizeOf(fd, path);
  if (!size.ok()) {
    ::close(fd);
    return size.status();
  }
  Result<AlignedShardBuffer> buffer = AlignedShardBuffer::Allocate(*size);
  if (!buffer.ok()) {
    ::close(fd);
    return buffer.status();
  }
  const Status status = PreadWholeFile(fd, direct_fd, buffer->data(), *size,
                                       buffer->capacity(), path);
  ::close(fd);
  if (!status.ok()) return status;
  return buffer;
}

Result<AlignedShardBuffer> ReadViaUring(const std::string& path) {
#if INFERTURBO_HAS_IO_URING
  bool direct_fd = false;
  const int fd = OpenForRead(path, /*want_direct=*/true, &direct_fd);
  if (fd < 0) return Errno("open", path);
  Result<std::size_t> size = FileSizeOf(fd, path);
  if (!size.ok()) {
    ::close(fd);
    return size.status();
  }
  Result<AlignedShardBuffer> buffer = AlignedShardBuffer::Allocate(*size);
  if (!buffer.ok()) {
    ::close(fd);
    return buffer.status();
  }
  const Status status = UringReadWholeFile(fd, buffer->data(), *size,
                                           buffer->capacity(), path);
  ::close(fd);
  if (!status.ok()) return status;
  return buffer;
#else
  return Status::IoError("io_uring unavailable at build time for " + path);
#endif
}

}  // namespace

std::string_view ShardReadPathName(ShardReadPath path) {
  switch (path) {
    case ShardReadPath::kAuto:
      return "auto";
    case ShardReadPath::kMmap:
      return "mmap";
    case ShardReadPath::kPread:
      return "pread";
    case ShardReadPath::kDirect:
      return "direct";
    case ShardReadPath::kUring:
      return "uring";
  }
  return "unknown";
}

Result<ShardReadPath> ParseShardReadPath(std::string_view name) {
  for (const ShardReadPath path :
       {ShardReadPath::kAuto, ShardReadPath::kMmap, ShardReadPath::kPread,
        ShardReadPath::kDirect, ShardReadPath::kUring}) {
    if (name == ShardReadPathName(path)) return path;
  }
  return Status::InvalidArgument(
      "unknown read path '" + std::string(name) +
      "' (expected auto|mmap|pread|direct|uring)");
}

ShardReadPath DetectShardReadPath(const std::string& probe_file) {
  // Each tier must move real bytes end to end: a kernel that has the
  // syscalls but a sandbox that blocks them, or a filesystem that
  // rejects O_DIRECT (tmpfs), drops to the next tier.
  if (ReadViaUring(probe_file).ok()) return ShardReadPath::kUring;
  {
    bool direct_fd = false;
    const int fd = OpenForRead(probe_file, /*want_direct=*/true, &direct_fd);
    if (fd >= 0) {
      ::close(fd);
      if (direct_fd && ReadViaPread(probe_file, /*want_direct=*/true).ok()) {
        return ShardReadPath::kDirect;
      }
    }
  }
  if (ReadViaPread(probe_file, /*want_direct=*/false).ok()) {
    return ShardReadPath::kPread;
  }
  return ShardReadPath::kMmap;
}

void AlignedShardBuffer::Free::operator()(char* p) const {
  detail::FreeFloatBuffer(p);
}

Result<AlignedShardBuffer> AlignedShardBuffer::Allocate(
    std::size_t file_size) {
  AlignedShardBuffer out;
  out.size_ = file_size;
  out.capacity_ = RoundUpAligned(file_size > 0 ? file_size : 1);
  constexpr std::size_t kHugePage = std::size_t{2} << 20;
  char* ptr = nullptr;
  if (out.capacity_ >= kHugePage) {
    // The tensor allocator returns 2 MiB-aligned, MADV_HUGEPAGE-advised
    // storage for large buffers — shards are exactly the multi-MB
    // streaming case it exists for.
    ptr = static_cast<char*>(detail::AllocFloatBuffer(out.capacity_));
  } else {
    ptr = static_cast<char*>(
        std::aligned_alloc(kDirectAlignment, out.capacity_));
  }
  if (ptr == nullptr) {
    return Status::IoError("cannot allocate " +
                           std::to_string(out.capacity_) +
                           " aligned bytes for a shard image");
  }
  out.storage_.reset(ptr);
  return out;
}

void ObserveShardRead(ShardReadPath path, double seconds,
                      std::int64_t bytes) {
  if (!MetricsEnabled()) return;
  struct Instruments {
    Histogram* seconds;
    Counter* bytes;
    Counter* reads;
  };
  static const std::array<Instruments, 5>& instruments = *new auto([] {
    std::array<Instruments, 5> out{};
    for (int i = 0; i < static_cast<int>(out.size()); ++i) {
      const std::string base =
          "storage.read." +
          std::string(ShardReadPathName(static_cast<ShardReadPath>(i)));
      out[static_cast<std::size_t>(i)] = {
          GlobalMetrics().GetHistogram(base + ".seconds"),
          GlobalMetrics().GetCounter(base + ".bytes"),
          GlobalMetrics().GetCounter(base + ".reads"),
      };
    }
    return out;
  }());
  const std::size_t index = static_cast<std::size_t>(path) < instruments.size()
                                ? static_cast<std::size_t>(path)
                                : 0;
  instruments[index].seconds->Observe(seconds);
  instruments[index].bytes->Add(bytes);
  instruments[index].reads->Increment();
}

Result<AlignedShardBuffer> ReadFileAligned(const std::string& path,
                                           ShardReadPath path_kind) {
  // Time only when metrics are on, so the zero-perturbation contract
  // holds: the disabled cost is one relaxed load + branch per read.
  const bool timed = MetricsEnabled();
  WallTimer timer;
  Result<AlignedShardBuffer> result = [&]() -> Result<AlignedShardBuffer> {
    switch (path_kind) {
      case ShardReadPath::kPread:
        return ReadViaPread(path, /*want_direct=*/false);
      case ShardReadPath::kDirect:
        return ReadViaPread(path, /*want_direct=*/true);
      case ShardReadPath::kUring:
        return ReadViaUring(path);
      case ShardReadPath::kAuto:
      case ShardReadPath::kMmap:
        break;
    }
    return Status::InvalidArgument(
        "ReadFileAligned requires a buffer-filling read path, got '" +
        std::string(ShardReadPathName(path_kind)) + "'");
  }();
  if (timed && result.ok()) {
    ObserveShardRead(path_kind, timer.ElapsedSeconds(),
                     static_cast<std::int64_t>(result->size()));
  }
  return result;
}

}  // namespace inferturbo
