#ifndef INFERTURBO_TELEMETRY_TIMELINE_H_
#define INFERTURBO_TELEMETRY_TIMELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"

namespace inferturbo {

struct TimelineOptions {
  /// JSONL output file; one run_timeline.v1 object is appended per
  /// sample. Required.
  std::string path;
  /// Sampling period. The sampler also emits one final sample on
  /// Stop(), so even a run shorter than one interval produces a line.
  double interval_seconds = 1.0;
  /// Optional per-sample extension: returned object members are merged
  /// into each line (the serving engine contributes generation epoch,
  /// queue depth, and batcher occupancy this way). Called on the
  /// sampler thread; must be thread-safe.
  std::function<JsonValue()> extra;
};

/// Background sampler for long-lived processes (serve mode). Every
/// interval it takes a MetricRegistry sample, diffs it against the
/// previous one, and appends a `run_timeline.v1` JSON line: counter
/// totals + interval deltas, gauge value/peak, and histogram
/// percentiles both cumulative and interval-local (via
/// HistogramSnapshot::DeltaSince). Lines are flushed per sample so a
/// tail -f (or a crashed process's last written line) is always
/// parseable.
class TimelineSampler {
 public:
  explicit TimelineSampler(TimelineOptions options);
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Emits one final sample and joins the thread. Idempotent; the
  /// destructor calls it.
  void Stop();

  std::int64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void EmitSample();

  TimelineOptions options_;
  MetricRegistry::Sample previous_;
  std::int64_t start_ns_ = 0;
  std::int64_t previous_ns_ = 0;
  std::atomic<std::int64_t> samples_{0};
  std::int64_t next_seq_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_TIMELINE_H_
