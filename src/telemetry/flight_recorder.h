#ifndef INFERTURBO_TELEMETRY_FLIGHT_RECORDER_H_
#define INFERTURBO_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/telemetry/json.h"

namespace inferturbo {

/// What happened. Kinds are coarse on purpose: the flight record is a
/// postmortem trail ("what were the last ~4k interesting events before
/// the failure"), not a metrics feed.
enum class FlightEventKind : std::uint8_t {
  kMark = 0,             ///< Free-form annotation (a, b caller-defined).
  kSpanBegin,            ///< TraceSpan opened. a = track.
  kSpanEnd,              ///< TraceSpan closed. a = track, b = dur_ns.
  kRetry,                ///< Task attempt will be retried. a = task, b = attempt.
  kDeadline,             ///< Attempt deadline exceeded. a = task, b = attempt.
  kSpeculativeLaunch,    ///< Backup attempt launched. a = task, b = attempt.
  kSpeculativeCommit,    ///< Backup won the commit race. a = task.
  kQuarantine,           ///< Worker quarantined. a = worker.
  kFaultInjected,        ///< Chaos fault fired. a = step, b = worker.
  kTaskFailure,          ///< Task exhausted its retry budget. a = task.
  kEviction,             ///< Shard store evicted a partition. a = partition,
                         ///< b = bytes released.
  kGenerationSwap,       ///< Serving engine published a generation. a = epoch.
  kCheckpointSave,       ///< a = superstep.
  kCheckpointRestore,    ///< a = superstep restored to.
  kSuperstepReexec,      ///< Degradation ladder re-ran a superstep. a = step.
  kEngineError,          ///< An engine Run() is returning an error status.
};

std::string_view FlightEventKindName(FlightEventKind kind);

/// One recorded event. `name` is a string literal (the recorder stores
/// the pointer); `a`/`b` are kind-specific operands, see the enum.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kMark;
  const char* name = nullptr;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t time_ns = 0;  ///< Same steady epoch as TraceSpan events.
  std::uint32_t thread = 0;  ///< Dense per-process thread index.
  std::uint64_t seq = 0;     ///< Global record order.
};

/// Recording switch. Off by default (the zero-perturbation contract:
/// a disabled RecordFlightEvent is one relaxed load + branch); once
/// enabled the ring is always-on — events are never drained, old slots
/// are overwritten, and a dump snapshots without stopping writers.
namespace telemetry_internal {
extern std::atomic<bool> g_flight_enabled;
}  // namespace telemetry_internal

inline bool FlightRecorderEnabled() {
  return telemetry_internal::g_flight_enabled.load(std::memory_order_relaxed);
}
void SetFlightRecorderEnabled(bool enabled);

/// Appends one event to the lock-free ring. Wait-free for writers: one
/// fetch_add to claim a slot plus plain stores guarded by a per-slot
/// sequence word (seqlock); a writer never blocks on readers or other
/// writers. `name` MUST be a string literal.
void RecordFlightEvent(FlightEventKind kind, const char* name,
                       std::int64_t a = 0, std::int64_t b = 0);

/// Copies the ring's current contents, oldest first. Slots mid-write
/// at snapshot time are skipped (torn reads are detected via the slot
/// sequence), so this is safe to call while writers are active — the
/// dump path does exactly that.
std::vector<FlightEvent> FlightRecordSnapshot();

/// Total events ever recorded (>= snapshot size once the ring wraps).
std::uint64_t FlightRecordTotalEvents();

/// {"schema": "inferturbo.flight_record.v1", "reason": ...,
///  "events_recorded": N, "events_dropped": M, "events": [...]}.
JsonValue BuildFlightRecord(std::string_view reason);

/// BuildFlightRecord + durable write through WriteFileAtomic.
Status WriteFlightRecord(const std::string& path, std::string_view reason);

/// Where error paths dump to. Empty (the default) disables dumping;
/// setting a path also enables recording.
void SetFlightRecordPath(std::string path);
std::string FlightRecordPath();

/// Dump-on-error hook the engines and the CLI call when a run is about
/// to surface a failure. Writes to the configured path; no-op (returns
/// false) when no path is set. Safe to call more than once — the last
/// dump wins, which is the one closest to the surfaced error.
bool DumpFlightRecordOnError(std::string_view reason);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that write the ring to the
/// configured path with a signal-safe serializer (no allocation, write()
/// only) before re-raising. Call after SetFlightRecordPath.
void InstallFlightRecordSignalHandler();

/// Clears the ring and counters (test isolation between cases).
void ResetFlightRecorder();

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_FLIGHT_RECORDER_H_
