#include "src/telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace inferturbo {
namespace {

constexpr int kMaxDepth = 100;

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the least-surprising degradation.
    out->append("null");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    INFERTURBO_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        INFERTURBO_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue(true);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue(false);
          return Status::OK();
        }
        return Err("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue(nullptr);
          return Status::OK();
        }
        return Err("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(object));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      INFERTURBO_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      JsonValue value;
      INFERTURBO_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    *out = JsonValue(std::move(object));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(array));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      INFERTURBO_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    *out = JsonValue(std::move(array));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are out of
          // scope for telemetry payloads (span names are ASCII).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("invalid escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Err("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = JsonValue(static_cast<std::int64_t>(v));
        return Status::OK();
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("invalid number");
    *out = JsonValue(d);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void AppendJsonEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  if (is_null()) {
    out->append("null");
  } else if (is_bool()) {
    out->append(as_bool() ? "true" : "false");
  } else if (is_int()) {
    out->append(std::to_string(std::get<std::int64_t>(rep_)));
  } else if (is_double()) {
    AppendNumber(std::get<double>(rep_), out);
  } else if (is_string()) {
    AppendJsonEscaped(as_string(), out);
  } else if (is_array()) {
    const Array& array = as_array();
    if (array.empty()) {
      out->append("[]");
      return;
    }
    out->push_back('[');
    bool first = true;
    for (const JsonValue& v : array) {
      if (!first) out->push_back(',');
      first = false;
      if (indent >= 0) AppendIndent(out, indent, depth + 1);
      v.DumpTo(out, indent, depth + 1);
    }
    if (indent >= 0) AppendIndent(out, indent, depth);
    out->push_back(']');
  } else {
    const Object& object = as_object();
    if (object.empty()) {
      out->append("{}");
      return;
    }
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out->push_back(',');
      first = false;
      if (indent >= 0) AppendIndent(out, indent, depth + 1);
      AppendJsonEscaped(key, out);
      out->push_back(':');
      if (indent >= 0) out->push_back(' ');
      value.DumpTo(out, indent, depth + 1);
    }
    if (indent >= 0) AppendIndent(out, indent, depth);
    out->push_back('}');
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace inferturbo
