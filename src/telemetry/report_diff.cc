#include "src/telemetry/report_diff.h"

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <utility>

#include "src/common/atomic_file.h"

namespace inferturbo {
namespace {

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsAny(std::string_view key,
                 std::initializer_list<std::string_view> needles) {
  for (const std::string_view needle : needles) {
    if (Contains(key, needle)) return true;
  }
  return false;
}

std::string FormatNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

}  // namespace

MetricDirection ClassifyMetricKey(std::string_view key) {
  // Exact-identity values: any drift is a correctness bug, not a perf
  // regression, so no tolerance applies.
  if (ContainsAny(key, {"checksum", "crc", "recomputed"})) {
    return MetricDirection::kExact;
  }
  // Throughput-like: shrinking is the regression. Checked before the
  // time-like class because "queries_per_second" contains "seconds".
  if (ContainsAny(key, {"gflops", "speedup", "mb_per_s", "per_second",
                        "qps", "throughput", "hit_rate"})) {
    return MetricDirection::kLowerIsWorse;
  }
  // Time-like and badness counters: growth is the regression.
  if (ContainsAny(key, {"seconds", "ns_per", "latency", "p50", "p95", "p99",
                        "fallback", "failures"})) {
    return MetricDirection::kHigherIsWorse;
  }
  return MetricDirection::kInformational;
}

namespace {

struct DiffContext {
  const ReportDiffOptions* options;
  ReportDiffResult* result;

  bool KeyGated(std::string_view key, MetricDirection direction) const {
    if (direction == MetricDirection::kExact) return true;
    if (direction == MetricDirection::kInformational) return false;
    if (options->key_filters.empty()) return true;
    for (const std::string& filter : options->key_filters) {
      if (Contains(key, filter)) return true;
    }
    return false;
  }

  void AddFinding(std::string path, std::string kind, double baseline,
                  double current, std::string detail, bool fails) {
    result->findings.push_back(ReportDiffFinding{
        std::move(path), std::move(kind), baseline, current,
        std::move(detail)});
    if (fails) result->ok = false;
  }

  void Missing(const std::string& path) {
    ++result->missing;
    if (options->fail_on_missing) {
      AddFinding(path, "missing", 0.0, 0.0,
                 "present in baseline, absent in current", true);
    }
  }
};

void CompareValue(DiffContext* ctx, const std::string& path,
                  std::string_view key, const JsonValue& baseline,
                  const JsonValue& current);

void CompareNumbers(DiffContext* ctx, const std::string& path,
                    std::string_view key, const JsonValue& baseline_value,
                    const JsonValue& current_value) {
  const MetricDirection direction = ClassifyMetricKey(key);
  if (!ctx->KeyGated(key, direction)) return;
  const double baseline = baseline_value.as_double();
  const double current = current_value.as_double();
  ++ctx->result->compared;

  if (direction == MetricDirection::kExact) {
    const bool equal = baseline_value.is_int() && current_value.is_int()
                           ? baseline_value.as_int() == current_value.as_int()
                           : baseline == current;
    if (!equal) {
      ctx->AddFinding(path, "exact_mismatch", baseline, current,
                      "exact-identity value changed", true);
    }
    return;
  }

  if (std::fabs(current - baseline) <= ctx->options->abs_tolerance) return;
  // A zero/negative baseline has no meaningful ratio; exact-class keys
  // were handled above, so skip rather than divide by zero.
  if (baseline <= 0.0) return;
  const double allowed = 1.0 + ctx->options->tolerance;
  bool regressed = false;
  std::string detail;
  if (direction == MetricDirection::kHigherIsWorse) {
    regressed = current > baseline * allowed;
    detail = "grew " + FormatNumber(current / baseline) + "x (tolerance " +
             FormatNumber(allowed) + "x)";
  } else {
    regressed = current < baseline / allowed;
    detail = "shrank to " + FormatNumber(current / baseline) +
             "x of baseline (tolerance 1/" + FormatNumber(allowed) + ")";
  }
  if (regressed) {
    ctx->AddFinding(path, "regression", baseline, current, detail, true);
  }
}

void CompareObjects(DiffContext* ctx, const std::string& path,
                    const JsonValue::Object& baseline,
                    const JsonValue::Object& current) {
  for (const auto& [key, baseline_value] : baseline) {
    const std::string child_path =
        path.empty() ? key : path + "." + key;
    const auto it = current.find(key);
    if (it == current.end()) {
      ctx->Missing(child_path);
      continue;
    }
    CompareValue(ctx, child_path, key, baseline_value, it->second);
  }
}

void CompareValue(DiffContext* ctx, const std::string& path,
                  std::string_view key, const JsonValue& baseline,
                  const JsonValue& current) {
  if (baseline.is_number() && current.is_number()) {
    CompareNumbers(ctx, path, key, baseline, current);
    return;
  }
  if (baseline.is_string() && current.is_string()) {
    if (ClassifyMetricKey(key) == MetricDirection::kExact &&
        baseline.as_string() != current.as_string()) {
      ctx->AddFinding(path, "exact_mismatch", 0.0, 0.0,
                      "\"" + baseline.as_string() + "\" -> \"" +
                          current.as_string() + "\"",
                      true);
    }
    return;
  }
  if (baseline.is_object() && current.is_object()) {
    CompareObjects(ctx, path, baseline.as_object(), current.as_object());
    return;
  }
  if (baseline.is_array() && current.is_array()) {
    const JsonValue::Array& a = baseline.as_array();
    const JsonValue::Array& b = current.as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::string child_path = path + "[" + std::to_string(i) + "]";
      if (i >= b.size()) {
        ctx->Missing(child_path);
        continue;
      }
      CompareValue(ctx, child_path, key, a[i], b[i]);
    }
    return;
  }
  if (baseline.is_bool() || baseline.is_null() || current.is_bool() ||
      current.is_null()) {
    return;  // flags like "avx2" legitimately differ across hosts
  }
  ctx->AddFinding(path, "structure", 0.0, 0.0,
                  "value types differ between baseline and current", true);
}

/// Bench-record identity: the string fields that name the row (op,
/// shape, mode, ...) plus small integer discriminators. Exact-class
/// strings (CRCs) are *values*, not identity — a changed CRC must be
/// flagged on a matched row, not silently produce an unmatched one.
std::string RowIdentity(const JsonValue::Object& row) {
  std::string identity;
  for (const auto& [key, value] : row) {
    const bool discriminator_int =
        value.is_int() && ContainsAny(key, {"threads", "delta", "workers",
                                            "step", "layer"});
    const bool identity_string =
        value.is_string() &&
        ClassifyMetricKey(key) != MetricDirection::kExact;
    if (!discriminator_int && !identity_string) continue;
    identity += key;
    identity += '=';
    identity += value.is_string() ? value.as_string()
                                  : std::to_string(value.as_int());
    identity += ',';
  }
  if (!identity.empty()) identity.pop_back();
  return identity;
}

void CompareResultsArrays(DiffContext* ctx, const JsonValue::Array& baseline,
                          const JsonValue::Array& current) {
  std::map<std::string, const JsonValue*> current_rows;
  for (const JsonValue& row : current) {
    if (row.is_object()) current_rows[RowIdentity(row.as_object())] = &row;
  }
  for (const JsonValue& row : baseline) {
    if (!row.is_object()) continue;
    const std::string identity = RowIdentity(row.as_object());
    const std::string path = "results[" + identity + "]";
    const auto it = current_rows.find(identity);
    if (it == current_rows.end()) {
      ctx->Missing(path);
      continue;
    }
    CompareObjects(ctx, path, row.as_object(), it->second->as_object());
  }
}

}  // namespace

ReportDiffResult DiffReports(const JsonValue& baseline,
                             const JsonValue& current,
                             const ReportDiffOptions& options) {
  ReportDiffResult result;
  DiffContext ctx{&options, &result};
  const JsonValue* baseline_rows = baseline.Find("results");
  const JsonValue* current_rows = current.Find("results");
  if (baseline_rows != nullptr && baseline_rows->is_array() &&
      current_rows != nullptr && current_rows->is_array()) {
    // Bench document: align rows by identity, then walk the scalar
    // envelope (mode, checksums, ratio summaries) around them.
    CompareResultsArrays(&ctx, baseline_rows->as_array(),
                         current_rows->as_array());
    JsonValue::Object baseline_rest = baseline.as_object();
    JsonValue::Object current_rest = current.as_object();
    baseline_rest.erase("results");
    current_rest.erase("results");
    CompareObjects(&ctx, "", baseline_rest, current_rest);
  } else {
    CompareValue(&ctx, "", "", baseline, current);
  }
  if (result.compared < options.min_compared) {
    ctx.AddFinding("", "structure", 0.0, 0.0,
                   "only " + std::to_string(result.compared) +
                       " gated values compared (need >= " +
                       std::to_string(options.min_compared) +
                       ") — mismatched documents?",
                   true);
  }
  return result;
}

Result<ReportDiffResult> DiffReportFiles(const std::string& baseline_path,
                                         const std::string& current_path,
                                         const ReportDiffOptions& options) {
  INFERTURBO_ASSIGN_OR_RETURN(const std::string baseline_text,
                              ReadFileToString(baseline_path));
  INFERTURBO_ASSIGN_OR_RETURN(const std::string current_text,
                              ReadFileToString(current_path));
  Result<JsonValue> baseline = ParseJson(baseline_text);
  if (!baseline.ok()) {
    return Status::InvalidArgument(baseline_path + ": " +
                                   baseline.status().message());
  }
  Result<JsonValue> current = ParseJson(current_text);
  if (!current.ok()) {
    return Status::InvalidArgument(current_path + ": " +
                                   current.status().message());
  }
  return DiffReports(*baseline, *current, options);
}

std::string FormatReportDiff(const ReportDiffResult& result) {
  std::string out;
  for (const ReportDiffFinding& finding : result.findings) {
    out += finding.kind == "regression" || finding.kind == "exact_mismatch"
               ? "FAIL  "
               : "NOTE  ";
    out += finding.kind;
    out += "  ";
    out += finding.path.empty() ? "<document>" : finding.path;
    if (finding.kind == "regression") {
      out += "  baseline=" + FormatNumber(finding.baseline) +
             " current=" + FormatNumber(finding.current);
    }
    if (!finding.detail.empty()) out += "  (" + finding.detail + ")";
    out += '\n';
  }
  out += "compared=" + std::to_string(result.compared) +
         " missing=" + std::to_string(result.missing) +
         " findings=" + std::to_string(result.findings.size()) +
         (result.ok ? " => OK" : " => REGRESSED") + "\n";
  return out;
}

Result<std::int64_t> LintJsonFile(const std::string& path,
                                  std::string_view expect_schema) {
  INFERTURBO_ASSIGN_OR_RETURN(const std::string text,
                              ReadFileToString(path));
  std::vector<JsonValue> documents;
  Result<JsonValue> whole = ParseJson(text);
  if (whole.ok()) {
    documents.push_back(std::move(*whole));
  } else {
    // JSONL: every non-empty line is an independent document.
    std::size_t start = 0;
    std::int64_t line_number = 0;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      ++line_number;
      const std::string_view line(text.data() + start, end - start);
      start = end + 1;
      if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
        continue;
      }
      Result<JsonValue> parsed = ParseJson(line);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": " +
            parsed.status().message());
      }
      documents.push_back(std::move(*parsed));
    }
  }
  if (documents.empty()) {
    return Status::InvalidArgument(path + ": no JSON documents");
  }
  if (!expect_schema.empty()) {
    std::int64_t index = 0;
    for (const JsonValue& document : documents) {
      const JsonValue* schema = document.Find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != expect_schema) {
        return Status::InvalidArgument(
            path + ": document " + std::to_string(index) +
            " schema != " + std::string(expect_schema));
      }
      ++index;
    }
  }
  return static_cast<std::int64_t>(documents.size());
}

}  // namespace inferturbo
