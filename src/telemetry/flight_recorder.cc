#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/common/atomic_file.h"
#include "src/telemetry/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define INFERTURBO_HAVE_POSIX_SIGNALS 1
#include <fcntl.h>
#include <unistd.h>
#else
#define INFERTURBO_HAVE_POSIX_SIGNALS 0
#endif

namespace inferturbo {

namespace telemetry_internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace telemetry_internal

void SetFlightRecorderEnabled(bool enabled) {
  telemetry_internal::g_flight_enabled.store(enabled,
                                             std::memory_order_relaxed);
}

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kMark: return "mark";
    case FlightEventKind::kSpanBegin: return "span_begin";
    case FlightEventKind::kSpanEnd: return "span_end";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kDeadline: return "deadline";
    case FlightEventKind::kSpeculativeLaunch: return "speculative_launch";
    case FlightEventKind::kSpeculativeCommit: return "speculative_commit";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kFaultInjected: return "fault_injected";
    case FlightEventKind::kTaskFailure: return "task_failure";
    case FlightEventKind::kEviction: return "eviction";
    case FlightEventKind::kGenerationSwap: return "generation_swap";
    case FlightEventKind::kCheckpointSave: return "checkpoint_save";
    case FlightEventKind::kCheckpointRestore: return "checkpoint_restore";
    case FlightEventKind::kSuperstepReexec: return "superstep_reexec";
    case FlightEventKind::kEngineError: return "engine_error";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kRingCapacity = 4096;  // power of two
constexpr std::size_t kRingMask = kRingCapacity - 1;
static_assert((kRingCapacity & kRingMask) == 0, "capacity must be 2^n");

/// One ring slot. The stamp is a per-slot seqlock word: 0 = never
/// written, odd = 2*seq+1 (write in progress), even = 2*seq+2 (payload
/// for record `seq` is complete). Payload fields are relaxed atomics —
/// after the ring wraps, two writers a full lap apart can touch the
/// same slot concurrently, and the stamp protocol only has to make such
/// mixed payloads *detectable* (stamp mismatch), not impossible.
struct Slot {
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
  std::atomic<std::int64_t> time_ns{0};
  std::atomic<std::uint32_t> thread{0};
};

Slot* Ring() {
  static Slot* ring = new Slot[kRingCapacity];
  return ring;
}

std::atomic<std::uint64_t> g_flight_seq{0};
std::atomic<std::uint32_t> g_next_thread_index{0};

std::uint32_t LocalThreadIndex() {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::mutex& PathMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::string& PathStorage() {
  static std::string* path = new std::string();
  return *path;
}

// Signal handlers cannot safely touch std::string; keep a plain copy.
char g_signal_path[512] = {0};

}  // namespace

void RecordFlightEvent(FlightEventKind kind, const char* name, std::int64_t a,
                       std::int64_t b) {
  if (!FlightRecorderEnabled()) return;
  const std::uint64_t seq =
      g_flight_seq.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = Ring()[seq & kRingMask];
  slot.stamp.store(seq * 2 + 1, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.time_ns.store(TraceNowNs(), std::memory_order_relaxed);
  slot.thread.store(LocalThreadIndex(), std::memory_order_relaxed);
  slot.stamp.store(seq * 2 + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecordSnapshot() {
  std::vector<FlightEvent> events;
  events.reserve(kRingCapacity);
  Slot* ring = Ring();
  for (std::size_t i = 0; i < kRingCapacity; ++i) {
    const Slot& slot = ring[i];
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    FlightEvent event;
    event.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    event.name = slot.name.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    event.time_ns = slot.time_ns.load(std::memory_order_relaxed);
    event.thread = slot.thread.load(std::memory_order_relaxed);
    const std::uint64_t after = slot.stamp.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while reading — torn
    event.seq = before / 2 - 1;
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

std::uint64_t FlightRecordTotalEvents() {
  return g_flight_seq.load(std::memory_order_relaxed);
}

JsonValue BuildFlightRecord(std::string_view reason) {
  const std::vector<FlightEvent> events = FlightRecordSnapshot();
  const std::uint64_t total = FlightRecordTotalEvents();
  JsonValue::Array out;
  out.reserve(events.size());
  for (const FlightEvent& e : events) {
    out.push_back(JsonValue(JsonValue::Object{
        {"seq", JsonValue(static_cast<std::int64_t>(e.seq))},
        {"kind", JsonValue(std::string(FlightEventKindName(e.kind)))},
        {"name", JsonValue(std::string(e.name != nullptr ? e.name : ""))},
        {"a", JsonValue(e.a)},
        {"b", JsonValue(e.b)},
        {"time_ns", JsonValue(e.time_ns)},
        {"thread", JsonValue(static_cast<std::int64_t>(e.thread))},
    }));
  }
  const std::int64_t kept = static_cast<std::int64_t>(events.size());
  const std::int64_t dropped =
      static_cast<std::int64_t>(total) > kept
          ? static_cast<std::int64_t>(total) - kept
          : 0;
  return JsonValue(JsonValue::Object{
      {"schema", JsonValue("inferturbo.flight_record.v1")},
      {"reason", JsonValue(std::string(reason))},
      {"events_recorded", JsonValue(static_cast<std::int64_t>(total))},
      {"events_dropped", JsonValue(dropped)},
      {"events", JsonValue(std::move(out))},
  });
}

Status WriteFlightRecord(const std::string& path, std::string_view reason) {
  return WriteFileAtomic(path, BuildFlightRecord(reason).Dump(2) + "\n");
}

void SetFlightRecordPath(std::string path) {
  {
    std::lock_guard<std::mutex> lock(PathMutex());
    PathStorage() = path;
    std::snprintf(g_signal_path, sizeof(g_signal_path), "%s", path.c_str());
  }
  if (!path.empty()) SetFlightRecorderEnabled(true);
}

std::string FlightRecordPath() {
  std::lock_guard<std::mutex> lock(PathMutex());
  return PathStorage();
}

bool DumpFlightRecordOnError(std::string_view reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(PathMutex());
    path = PathStorage();
  }
  if (path.empty()) return false;
  // The ring stores literal names only; the full reason string goes
  // into the dump's "reason" field instead.
  RecordFlightEvent(FlightEventKind::kEngineError, "engine/error");
  return WriteFlightRecord(path, reason).ok();
}

void ResetFlightRecorder() {
  Slot* ring = Ring();
  for (std::size_t i = 0; i < kRingCapacity; ++i) {
    ring[i].stamp.store(0, std::memory_order_relaxed);
  }
  g_flight_seq.store(0, std::memory_order_relaxed);
}

#if INFERTURBO_HAVE_POSIX_SIGNALS

namespace {

// --- async-signal-safe serializer -----------------------------------
// The normal dump path allocates (JsonValue, std::string); a fatal
// signal handler cannot. This path formats the same flight_record.v1
// document into a fixed static buffer with hand-rolled number/string
// formatting and writes it with raw write(2).

char g_signal_buffer[1 << 20];

std::size_t AppendRaw(std::size_t pos, const char* text) {
  while (*text != '\0' && pos + 1 < sizeof(g_signal_buffer)) {
    g_signal_buffer[pos++] = *text++;
  }
  return pos;
}

std::size_t AppendInt(std::size_t pos, std::int64_t value) {
  char digits[24];
  int n = 0;
  std::uint64_t magnitude;
  if (value < 0) {
    if (pos + 1 < sizeof(g_signal_buffer)) g_signal_buffer[pos++] = '-';
    magnitude = static_cast<std::uint64_t>(-(value + 1)) + 1;
  } else {
    magnitude = static_cast<std::uint64_t>(value);
  }
  do {
    digits[n++] = static_cast<char>('0' + magnitude % 10);
    magnitude /= 10;
  } while (magnitude != 0 && n < 24);
  while (n > 0 && pos + 1 < sizeof(g_signal_buffer)) {
    g_signal_buffer[pos++] = digits[--n];
  }
  return pos;
}

std::size_t AppendQuoted(std::size_t pos, const char* text) {
  pos = AppendRaw(pos, "\"");
  for (; text != nullptr && *text != '\0'; ++text) {
    const char c = *text;
    if (c == '"' || c == '\\') {
      if (pos + 2 < sizeof(g_signal_buffer)) {
        g_signal_buffer[pos++] = '\\';
        g_signal_buffer[pos++] = c;
      }
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      if (pos + 1 < sizeof(g_signal_buffer)) g_signal_buffer[pos++] = c;
    }
  }
  return AppendRaw(pos, "\"");
}

void SignalHandler(int signo) {
  if (g_signal_path[0] != '\0') {
    std::size_t pos = 0;
    pos = AppendRaw(pos,
                    "{\"schema\":\"inferturbo.flight_record.v1\","
                    "\"reason\":\"signal:");
    pos = AppendInt(pos, signo);
    pos = AppendRaw(pos, "\",\"events_recorded\":");
    pos = AppendInt(pos, static_cast<std::int64_t>(
                             g_flight_seq.load(std::memory_order_relaxed)));
    pos = AppendRaw(pos, ",\"events_dropped\":0,\"events\":[");
    Slot* ring = Ring();
    bool first = true;
    for (std::size_t i = 0; i < kRingCapacity; ++i) {
      const Slot& slot = ring[i];
      const std::uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
      if (stamp == 0 || (stamp & 1) != 0) continue;
      if (!first) pos = AppendRaw(pos, ",");
      first = false;
      pos = AppendRaw(pos, "{\"seq\":");
      pos = AppendInt(pos, static_cast<std::int64_t>(stamp / 2 - 1));
      pos = AppendRaw(pos, ",\"kind\":");
      pos = AppendQuoted(
          pos, FlightEventKindName(static_cast<FlightEventKind>(
                                       slot.kind.load(
                                           std::memory_order_relaxed)))
                   .data());
      pos = AppendRaw(pos, ",\"name\":");
      pos = AppendQuoted(pos, slot.name.load(std::memory_order_relaxed));
      pos = AppendRaw(pos, ",\"a\":");
      pos = AppendInt(pos, slot.a.load(std::memory_order_relaxed));
      pos = AppendRaw(pos, ",\"b\":");
      pos = AppendInt(pos, slot.b.load(std::memory_order_relaxed));
      pos = AppendRaw(pos, ",\"time_ns\":");
      pos = AppendInt(pos, slot.time_ns.load(std::memory_order_relaxed));
      pos = AppendRaw(pos, ",\"thread\":");
      pos = AppendInt(pos, static_cast<std::int64_t>(
                               slot.thread.load(std::memory_order_relaxed)));
      pos = AppendRaw(pos, "}");
    }
    pos = AppendRaw(pos, "]}\n");
    const int fd = open(g_signal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      std::size_t written = 0;
      while (written < pos) {
        const ssize_t n = write(fd, g_signal_buffer + written, pos - written);
        if (n <= 0) break;
        written += static_cast<std::size_t>(n);
      }
      close(fd);
    }
  }
  // SA_RESETHAND restored the default action; re-raise so the process
  // still dies with the original signal (and core dumps still happen).
  raise(signo);
}

}  // namespace

void InstallFlightRecordSignalHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &SignalHandler;
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
  sigaction(SIGBUS, &action, nullptr);
}

#else  // !INFERTURBO_HAVE_POSIX_SIGNALS

void InstallFlightRecordSignalHandler() {}

#endif  // INFERTURBO_HAVE_POSIX_SIGNALS

}  // namespace inferturbo
