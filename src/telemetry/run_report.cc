#include "src/telemetry/run_report.h"

#include <string>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/storage/shard_reader.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/perf_counters.h"

namespace inferturbo {
namespace {

JsonValue WorkerTotalsJson(const WorkerStepMetrics& t) {
  return JsonValue(JsonValue::Object{
      {"busy_seconds", JsonValue(t.busy_seconds)},
      {"wait_seconds", JsonValue(t.wait_seconds)},
      {"route_seconds", JsonValue(t.route_seconds)},
      {"bytes_in", JsonValue(t.bytes_in)},
      {"bytes_out", JsonValue(t.bytes_out)},
      {"records_in", JsonValue(t.records_in)},
      {"records_out", JsonValue(t.records_out)},
      {"peak_resident_bytes", JsonValue(t.peak_resident_bytes)},
  });
}

/// Per-read-path latency distributions, from the instruments
/// ObserveShardRead feeds. Only tiers that actually served reads this
/// run appear, so an in-memory run's storage section stays compact and
/// a `read_path_fallbacks` regression is visible as a second tier
/// (mmap) showing up next to the configured one.
JsonValue ReadLatencyJson() {
  JsonValue::Object out;
  for (const ShardReadPath path :
       {ShardReadPath::kMmap, ShardReadPath::kPread, ShardReadPath::kDirect,
        ShardReadPath::kUring}) {
    const std::string name(ShardReadPathName(path));
    const std::string base = "storage.read." + name;
    Counter* reads = GlobalMetrics().GetCounter(base + ".reads");
    if (reads->value() == 0) continue;
    Histogram* seconds = GlobalMetrics().GetHistogram(base + ".seconds");
    Counter* bytes = GlobalMetrics().GetCounter(base + ".bytes");
    out[name] = JsonValue(JsonValue::Object{
        {"reads", JsonValue(reads->value())},
        {"bytes", JsonValue(bytes->value())},
        {"p50_seconds", JsonValue(seconds->Percentile(0.50))},
        {"p95_seconds", JsonValue(seconds->Percentile(0.95))},
        {"p99_seconds", JsonValue(seconds->Percentile(0.99))},
        {"max_seconds", JsonValue(seconds->max())},
    });
  }
  return JsonValue(std::move(out));
}

JsonValue StorageJson(const StorageMetrics& s) {
  const double hit_rate =
      s.prefetch_issued > 0
          ? static_cast<double>(s.prefetch_hits) /
                static_cast<double>(s.prefetch_issued)
          : 0.0;
  return JsonValue(JsonValue::Object{
      {"bytes_mapped", JsonValue(s.bytes_mapped)},
      {"peak_bytes_mapped", JsonValue(s.peak_bytes_mapped)},
      {"map_calls", JsonValue(s.map_calls)},
      {"unmap_calls", JsonValue(s.unmap_calls)},
      {"cache_hits", JsonValue(s.cache_hits)},
      {"cache_misses", JsonValue(s.cache_misses)},
      {"prefetch_issued", JsonValue(s.prefetch_issued)},
      {"prefetch_completed", JsonValue(s.prefetch_completed)},
      {"prefetch_hits", JsonValue(s.prefetch_hits)},
      {"prefetch_hit_rate", JsonValue(hit_rate)},
      {"evictions", JsonValue(s.evictions)},
      {"checksum_failures", JsonValue(s.checksum_failures)},
      {"pinned_bytes", JsonValue(s.pinned_bytes)},
      {"pinned_partitions", JsonValue(s.pinned_partitions)},
      {"pinned_hits", JsonValue(s.pinned_hits)},
      {"overlap_seconds", JsonValue(s.overlap_seconds)},
      {"pipeline_wait_seconds", JsonValue(s.pipeline_wait_seconds)},
      {"read_path",
       JsonValue(std::string(ShardReadPathName(
           static_cast<ShardReadPath>(s.read_path))))},
      {"read_path_fallbacks", JsonValue(s.read_path_fallbacks)},
      {"read_latency", ReadLatencyJson()},
  });
}

JsonValue FaultsJson(const SupervisionMetrics& s) {
  return JsonValue(JsonValue::Object{
      {"tasks", JsonValue(s.tasks)},
      {"attempts", JsonValue(s.attempts)},
      {"retries", JsonValue(s.retries)},
      {"injected_crashes", JsonValue(s.injected_crashes)},
      {"injected_transients", JsonValue(s.injected_transients)},
      {"injected_delays", JsonValue(s.injected_delays)},
      {"deadline_exceeded", JsonValue(s.deadline_exceeded)},
      {"speculative_launched", JsonValue(s.speculative_launched)},
      {"speculative_commits", JsonValue(s.speculative_commits)},
      {"quarantined_workers", JsonValue(s.quarantined_workers)},
      {"reassigned_tasks", JsonValue(s.reassigned_tasks)},
      {"superstep_reexecutions", JsonValue(s.superstep_reexecutions)},
      {"checkpoint_restores", JsonValue(s.checkpoint_restores)},
  });
}

JsonValue ServingJson(const ServingReport& s) {
  return JsonValue(JsonValue::Object{
      {"queries", JsonValue(s.queries)},
      {"batches", JsonValue(s.batches)},
      {"cache_hits", JsonValue(s.cache_hits)},
      {"cache_misses", JsonValue(s.cache_misses)},
      {"cache_hit_rate", JsonValue(s.cache_hit_rate)},
      {"deltas", JsonValue(s.deltas)},
      {"epoch", JsonValue(s.epoch)},
      {"recomputed_nodes", JsonValue(s.recomputed_nodes)},
      {"invalidated_cache_rows", JsonValue(s.invalidated_cache_rows)},
      {"query_p50_seconds", JsonValue(s.query_p50_seconds)},
      {"query_p95_seconds", JsonValue(s.query_p95_seconds)},
      {"query_p99_seconds", JsonValue(s.query_p99_seconds)},
      {"mean_batch_occupancy", JsonValue(s.mean_batch_occupancy)},
      {"wall_seconds", JsonValue(s.wall_seconds)},
      {"queries_per_second", JsonValue(s.queries_per_second)},
  });
}

}  // namespace

JsonValue BuildRunReport(const JobMetrics& metrics,
                         const RunReportOptions& options) {
  JsonValue::Object job{
      {"num_workers", JsonValue(static_cast<std::int64_t>(
                          metrics.workers.size()))},
      {"num_steps", JsonValue(metrics.num_steps())},
      {"simulated_wall_seconds", JsonValue(metrics.SimulatedWallSeconds())},
      {"total_cpu_seconds", JsonValue(metrics.TotalCpuSeconds())},
      {"total_bytes_in", JsonValue(metrics.TotalBytesIn())},
      {"total_bytes_out", JsonValue(metrics.TotalBytesOut())},
      {"peak_resident_bytes", JsonValue(metrics.PeakResidentBytes())},
      {"latency_variance", JsonValue(LatencyVariance(metrics))},
      {"spill_read_retries", JsonValue(metrics.spill_read_retries)},
      {"spill_write_retries", JsonValue(metrics.spill_write_retries)},
  };
  if (options.per_worker) {
    JsonValue::Array per_worker;
    for (const WorkerStepMetrics& t : metrics.PerWorkerTotals()) {
      per_worker.push_back(WorkerTotalsJson(t));
    }
    job["per_worker"] = JsonValue(std::move(per_worker));
  }

  JsonValue::Object config;
  for (const auto& [key, value] : options.config) {
    config[key] = JsonValue(value);
  }

  JsonValue::Object report{
      {"schema", JsonValue("inferturbo.run_report.v1")},
      {"backend", JsonValue(options.backend)},
      {"config", JsonValue(std::move(config))},
      {"job", JsonValue(std::move(job))},
      {"storage", StorageJson(metrics.storage)},
      {"faults", FaultsJson(metrics.supervision)},
      {"metrics", GlobalMetrics().Snapshot()},
      {"profiling", ProfilingReportJson()},
  };
  if (options.serving != nullptr) {
    report["serving"] = ServingJson(*options.serving);
  }
  return JsonValue(std::move(report));
}

std::string BuildRunReportJson(const JobMetrics& metrics,
                               const RunReportOptions& options) {
  return BuildRunReport(metrics, options).Dump(2) + "\n";
}

Status WriteRunReport(const std::string& path, const JobMetrics& metrics,
                      const RunReportOptions& options) {
  return WriteFileAtomic(path, BuildRunReportJson(metrics, options));
}

}  // namespace inferturbo
