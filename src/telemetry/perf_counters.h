#ifndef INFERTURBO_TELEMETRY_PERF_COUNTERS_H_
#define INFERTURBO_TELEMETRY_PERF_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/telemetry/json.h"

namespace inferturbo {

/// Process-wide profiling switch, independent of the metrics/tracing
/// switches. Off by default; when off a PerfCounterScope is a relaxed
/// atomic load + branch — no syscalls, no fds, no timing.
namespace telemetry_internal {
extern std::atomic<bool> g_profiling_enabled;
}  // namespace telemetry_internal

inline bool ProfilingEnabled() {
  return telemetry_internal::g_profiling_enabled.load(
      std::memory_order_relaxed);
}
void SetProfilingEnabled(bool enabled);

/// One reading (or delta) of the per-thread hardware counter set.
/// Fields the kernel could not provision stay zero; `valid` is true
/// when at least the cycle counter was live for the reading.
struct PerfCounterValues {
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t llc_misses = 0;
  std::int64_t stalled_cycles = 0;
  bool valid = false;

  PerfCounterValues& operator+=(const PerfCounterValues& other);
  PerfCounterValues operator-(const PerfCounterValues& other) const;
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// True when perf_event_open is usable in this process (Linux, header
/// present, and the kernel/perms allow opening a userspace cycle
/// counter). Probed once per process; cheap to call repeatedly.
bool PerfCountersSupported();

/// Why PerfCountersSupported() is false: "" when supported, otherwise a
/// short stable reason ("not_linux", "perf_event_open_failed: ...").
/// Benches record this as the explicit fallback marker.
const std::string& PerfCountersUnavailableReason();

/// Current cumulative counters for the calling thread. Opens the
/// thread's counter fds lazily on first call (when profiling is enabled
/// and supported); returns valid=false otherwise. Counters run freely
/// once opened, so deltas between two readings bracket a region.
PerfCounterValues ReadThreadPerfCounters();

/// RAII delta reader. Reads the thread counters at construction and
/// destruction and accumulates the delta either into `out` or — for
/// the registry-accumulating form — into counters named
/// "profile.<name>.cycles" / ".instructions" / ".llc_misses" /
/// ".stalled_cycles" / ".scopes" (profiling is its own opt-in; the
/// metrics master switch is not consulted). `name` must be a string
/// literal. No-op when profiling is disabled or unsupported.
class PerfCounterScope {
 public:
  explicit PerfCounterScope(const char* name);
  PerfCounterScope(const char* name, PerfCounterValues* out);
  ~PerfCounterScope();

  PerfCounterScope(const PerfCounterScope&) = delete;
  PerfCounterScope& operator=(const PerfCounterScope&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr == disarmed
  PerfCounterValues* out_ = nullptr;
  PerfCounterValues start_;
};

/// {"available": bool, "enabled": bool, "fallback_reason": string} —
/// the run report's "profiling" section.
JsonValue ProfilingReportJson();

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_PERF_COUNTERS_H_
