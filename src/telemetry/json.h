#ifndef INFERTURBO_TELEMETRY_JSON_H_
#define INFERTURBO_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/result.h"

namespace inferturbo {

/// A minimal JSON document model. The telemetry layer emits JSON
/// (trace files, metric snapshots, run reports) and the tests parse
/// those files back to assert well-formedness, so both directions live
/// here with zero external dependencies.
///
/// Numbers are stored as either int64 or double; integers round-trip
/// exactly (byte counters routinely exceed float precision). Object
/// keys are kept in sorted order (std::map), which makes every dump
/// deterministic — a property the tests and the CI smoke step rely on.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : rep_(nullptr) {}
  JsonValue(std::nullptr_t) : rep_(nullptr) {}          // NOLINT
  JsonValue(bool b) : rep_(b) {}                        // NOLINT
  JsonValue(std::int64_t i) : rep_(i) {}                // NOLINT
  JsonValue(int i) : rep_(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(std::uint64_t i)                            // NOLINT
      : rep_(static_cast<std::int64_t>(i)) {}
  JsonValue(double d) : rep_(d) {}                      // NOLINT
  JsonValue(std::string s) : rep_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : rep_(std::string(s)) {}    // NOLINT
  JsonValue(Array a) : rep_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : rep_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_array() const { return std::holds_alternative<Array>(rep_); }
  bool is_object() const { return std::holds_alternative<Object>(rep_); }

  bool as_bool() const { return std::get<bool>(rep_); }
  std::int64_t as_int() const {
    return is_double() ? static_cast<std::int64_t>(std::get<double>(rep_))
                       : std::get<std::int64_t>(rep_);
  }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(rep_))
                    : std::get<double>(rep_);
  }
  const std::string& as_string() const { return std::get<std::string>(rep_); }
  const Array& as_array() const { return std::get<Array>(rep_); }
  const Object& as_object() const { return std::get<Object>(rep_); }
  Array& as_array() { return std::get<Array>(rep_); }
  Object& as_object() { return std::get<Object>(rep_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

  /// Serializes the value. indent < 0 emits compact single-line JSON;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      rep_;
};

/// Appends `text` to `out` as a quoted JSON string with all mandatory
/// escapes. Exposed so the streaming trace writer can share the exact
/// escaping rules with JsonValue::Dump.
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Strict recursive-descent JSON parser. Rejects trailing garbage and
/// documents nested deeper than an internal safety limit. Used by the
/// telemetry tests to re-parse emitted trace files and run reports.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_JSON_H_
