#include "src/telemetry/timeline.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "src/telemetry/trace.h"

namespace inferturbo {

TimelineSampler::TimelineSampler(TimelineOptions options)
    : options_(std::move(options)) {
  start_ns_ = TraceNowNs();
  previous_ns_ = start_ns_;
  previous_ = GlobalMetrics().TakeSample();
  // Truncate any stale file so one serve run owns the whole timeline.
  std::ofstream(options_.path, std::ios::trunc);
  thread_ = std::thread([this] { Loop(); });
}

TimelineSampler::~TimelineSampler() { Stop(); }

void TimelineSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

void TimelineSampler::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::duration<double>(options_.interval_seconds),
                   [this] { return stop_requested_; });
      if (stop_requested_) break;
    }
    EmitSample();
  }
  // Final flush: a run shorter than one interval still gets a line.
  EmitSample();
}

void TimelineSampler::EmitSample() {
  const std::int64_t now_ns = TraceNowNs();
  const MetricRegistry::Sample sample = GlobalMetrics().TakeSample();

  JsonValue::Object counters;
  for (const auto& [name, total] : sample.counters) {
    const auto it = previous_.counters.find(name);
    const std::int64_t before =
        it != previous_.counters.end() ? it->second : 0;
    counters[name] = JsonValue(JsonValue::Object{
        {"total", JsonValue(total)},
        {"delta", JsonValue(total - before)},
    });
  }

  JsonValue::Object gauges;
  for (const auto& [name, value_peak] : sample.gauges) {
    gauges[name] = JsonValue(JsonValue::Object{
        {"value", JsonValue(value_peak.first)},
        {"peak", JsonValue(value_peak.second)},
    });
  }

  JsonValue::Object histograms;
  for (const auto& [name, snapshot] : sample.histograms) {
    JsonValue::Object h{
        {"count", JsonValue(snapshot.count)},
        {"p50", JsonValue(snapshot.Percentile(0.50))},
        {"p95", JsonValue(snapshot.Percentile(0.95))},
        {"p99", JsonValue(snapshot.Percentile(0.99))},
    };
    const auto it = previous_.histograms.find(name);
    if (it != previous_.histograms.end()) {
      const HistogramSnapshot delta = snapshot.DeltaSince(it->second);
      h["interval_count"] = JsonValue(delta.count);
      h["interval_p50"] = JsonValue(delta.Percentile(0.50));
      h["interval_p95"] = JsonValue(delta.Percentile(0.95));
      h["interval_p99"] = JsonValue(delta.Percentile(0.99));
    } else {
      h["interval_count"] = JsonValue(snapshot.count);
    }
    histograms[name] = JsonValue(std::move(h));
  }

  JsonValue::Object line{
      {"schema", JsonValue("inferturbo.run_timeline.v1")},
      {"seq", JsonValue(next_seq_)},
      {"uptime_seconds",
       JsonValue(static_cast<double>(now_ns - start_ns_) / 1e9)},
      {"interval_seconds",
       JsonValue(static_cast<double>(now_ns - previous_ns_) / 1e9)},
      {"counters", JsonValue(std::move(counters))},
      {"gauges", JsonValue(std::move(gauges))},
      {"histograms", JsonValue(std::move(histograms))},
  };
  if (options_.extra) {
    const JsonValue extra = options_.extra();
    if (extra.is_object()) {
      for (const auto& [key, value] : extra.as_object()) {
        line[key] = value;
      }
    }
  }

  std::ofstream out(options_.path, std::ios::app);
  out << JsonValue(std::move(line)).Dump(-1) << "\n";
  out.flush();

  previous_ = sample;
  previous_ns_ = now_ns;
  ++next_seq_;
  ++samples_;
}

}  // namespace inferturbo
