#include "src/telemetry/metrics.h"

#include <bit>
#include <limits>

namespace inferturbo {

namespace telemetry_internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace telemetry_internal

void SetMetricsEnabled(bool enabled) {
  telemetry_internal::g_metrics_enabled.store(enabled,
                                              std::memory_order_relaxed);
}

namespace {

// Lock-free double accumulation over an atomic bit pattern. Relaxed is
// fine: sums are only read at snapshot time.
void AtomicAddDouble(std::atomic<std::uint64_t>* bits, double delta) {
  std::uint64_t observed = bits->load(std::memory_order_relaxed);
  while (true) {
    const double current = std::bit_cast<double>(observed);
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(current + delta);
    if (bits->compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMaxDouble(std::atomic<std::uint64_t>* bits, double value) {
  std::uint64_t observed = bits->load(std::memory_order_relaxed);
  while (std::bit_cast<double>(observed) < value) {
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(value);
    if (bits->compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.options = options;
  delta.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t before =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    delta.buckets[i] = buckets[i] - before;
  }
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  delta.max = max;  // a max cannot be un-observed; keep the later bound
  return delta;
}

double HistogramSnapshot::BucketUpperBound(int i) const {
  if (i >= options.num_buckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  double bound = options.first_bucket;
  for (int b = 0; b < i; ++b) bound *= options.growth;
  return bound;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket <= 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double upper = BucketUpperBound(i);
      if (i == static_cast<int>(buckets.size()) - 1) upper = max;
      if (upper < lower) upper = lower;
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Histogram(const HistogramOptions& options)
    : options_(options),
      buckets_(static_cast<std::size_t>(options.num_buckets)) {}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.options = options_;
  snapshot.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snapshot.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count();
  snapshot.sum = sum();
  snapshot.max = max();
  return snapshot;
}

double Histogram::BucketUpperBound(int i) const {
  if (i >= options_.num_buckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  double bound = options_.first_bucket;
  for (int b = 0; b < i; ++b) bound *= options_.growth;
  return bound;
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  if (value < 0.0) value = 0.0;
  // Walk the exponential grid; num_buckets is small (default 40) and
  // most observations land in the first few buckets, so this beats a
  // log() call on the hot path.
  int bucket = 0;
  double bound = options_.first_bucket;
  while (bucket < options_.num_buckets - 1 && value > bound) {
    bound *= options_.growth;
    ++bucket;
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
  AtomicMaxDouble(&max_bits_, value);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::Percentile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (int i = 0; i < options_.num_buckets; ++i) {
    const std::int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double upper = BucketUpperBound(i);
      // The overflow bucket has no finite upper edge; report the
      // largest value actually seen instead of infinity.
      if (i == options_.num_buckets - 1) upper = max();
      if (upper < lower) upper = lower;
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return max();
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(options)))
             .first;
  }
  return it->second.get();
}

void MetricRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
    gauge->peak_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    for (auto& bucket : histogram->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    histogram->count_.store(0, std::memory_order_relaxed);
    histogram->sum_bits_.store(0, std::memory_order_relaxed);
    histogram->max_bits_.store(0, std::memory_order_relaxed);
  }
}

JsonValue MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = JsonValue(counter->value());
  }
  JsonValue::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = JsonValue(JsonValue::Object{
        {"value", JsonValue(gauge->value())},
        {"peak", JsonValue(gauge->peak())},
    });
  }
  JsonValue::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = JsonValue(JsonValue::Object{
        {"count", JsonValue(histogram->count())},
        {"sum", JsonValue(histogram->sum())},
        {"max", JsonValue(histogram->max())},
        {"p50", JsonValue(histogram->Percentile(0.50))},
        {"p95", JsonValue(histogram->Percentile(0.95))},
        {"p99", JsonValue(histogram->Percentile(0.99))},
    });
  }
  return JsonValue(JsonValue::Object{
      {"counters", JsonValue(std::move(counters))},
      {"gauges", JsonValue(std::move(gauges))},
      {"histograms", JsonValue(std::move(histograms))},
  });
}

MetricRegistry::Sample MetricRegistry::TakeSample() const {
  std::lock_guard<std::mutex> lock(mu_);
  Sample sample;
  for (const auto& [name, counter] : counters_) {
    sample.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    sample.gauges[name] = {gauge->value(), gauge->peak()};
  }
  for (const auto& [name, histogram] : histograms_) {
    sample.histograms[name] = histogram->Snapshot();
  }
  return sample;
}

MetricRegistry& GlobalMetrics() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace inferturbo
