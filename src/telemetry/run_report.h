#ifndef INFERTURBO_TELEMETRY_RUN_REPORT_H_
#define INFERTURBO_TELEMETRY_RUN_REPORT_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/pregel/worker_metrics.h"
#include "src/telemetry/json.h"

namespace inferturbo {

/// Serving-mode accounting for the report's "serving" section.
/// Mirrors ServingStats (src/serving) plus stream-level throughput;
/// kept as its own struct so telemetry does not depend on the serving
/// layer's headers.
struct ServingReport {
  std::int64_t queries = 0;
  std::int64_t batches = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t deltas = 0;
  std::int64_t epoch = 0;
  std::int64_t recomputed_nodes = 0;
  std::int64_t invalidated_cache_rows = 0;
  double query_p50_seconds = 0.0;
  double query_p95_seconds = 0.0;
  double query_p99_seconds = 0.0;
  double mean_batch_occupancy = 0.0;
  double cache_hit_rate = 0.0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
};

/// Everything about a run that is not already inside JobMetrics.
struct RunReportOptions {
  /// Which backend produced the JobMetrics ("pregel" | "mapreduce" |
  /// "traditional" ...). Counter provenance differs per backend, so the
  /// report records it.
  std::string backend;
  /// Flag key -> value map (or any other config worth archiving with
  /// the numbers).
  std::map<std::string, std::string> config;
  /// Include per-worker totals (one object per worker). On by default;
  /// jobs with thousands of logical workers may want it off.
  bool per_worker = true;
  /// When set, the report gains a "serving" section (front-end latency
  /// percentiles, batch occupancy, cache hit rate, delta accounting).
  /// Not owned; must outlive the Build call.
  const ServingReport* serving = nullptr;
};

/// Builds the machine-readable run report: one JSON document unifying
/// job accounting (JobMetrics), shard-store accounting
/// (StorageMetrics), the global metric registry snapshot (histogram
/// p50/p95/p99 included), and the run's config. Top-level keys:
/// "schema", "backend", "config", "job", "storage", "metrics", and
/// (serve mode only) "serving".
JsonValue BuildRunReport(const JobMetrics& metrics,
                         const RunReportOptions& options);

/// Serialized report (pretty-printed, deterministic key order).
std::string BuildRunReportJson(const JobMetrics& metrics,
                               const RunReportOptions& options);

/// BuildRunReportJson + durable write through WriteFileAtomic.
Status WriteRunReport(const std::string& path, const JobMetrics& metrics,
                      const RunReportOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_RUN_REPORT_H_
