#ifndef INFERTURBO_TELEMETRY_RUN_REPORT_H_
#define INFERTURBO_TELEMETRY_RUN_REPORT_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/pregel/worker_metrics.h"
#include "src/telemetry/json.h"

namespace inferturbo {

/// Everything about a run that is not already inside JobMetrics.
struct RunReportOptions {
  /// Which backend produced the JobMetrics ("pregel" | "mapreduce" |
  /// "traditional" ...). Counter provenance differs per backend, so the
  /// report records it.
  std::string backend;
  /// Flag key -> value map (or any other config worth archiving with
  /// the numbers).
  std::map<std::string, std::string> config;
  /// Include per-worker totals (one object per worker). On by default;
  /// jobs with thousands of logical workers may want it off.
  bool per_worker = true;
};

/// Builds the machine-readable run report: one JSON document unifying
/// job accounting (JobMetrics), shard-store accounting
/// (StorageMetrics), the global metric registry snapshot (histogram
/// p50/p95/p99 included), and the run's config. Top-level keys:
/// "schema", "backend", "config", "job", "storage", "metrics".
JsonValue BuildRunReport(const JobMetrics& metrics,
                         const RunReportOptions& options);

/// Serialized report (pretty-printed, deterministic key order).
std::string BuildRunReportJson(const JobMetrics& metrics,
                               const RunReportOptions& options);

/// BuildRunReportJson + durable write through WriteFileAtomic.
Status WriteRunReport(const std::string& path, const JobMetrics& metrics,
                      const RunReportOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_RUN_REPORT_H_
