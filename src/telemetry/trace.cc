#include "src/telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

#include "src/common/atomic_file.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/json.h"

namespace inferturbo {

namespace telemetry_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace telemetry_internal

void SetTracingEnabled(bool enabled) {
  telemetry_internal::g_trace_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

std::int64_t TraceNowNs() {
  // One process-wide steady epoch so timestamps from different threads
  // share an origin. Captured on first use, before any span can end.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

namespace {

std::int64_t NowNs() { return TraceNowNs(); }

std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::int64_t> g_next_default_track{TraceSpan::kDefaultTrackBase};

/// A span that has begun but not yet ended, registered so a drain can
/// report it instead of losing it. Keyed by the TraceSpan's address —
/// spans are stack objects, so the address is unique among the
/// thread's simultaneously-open spans.
struct OpenSpan {
  const void* id;
  const char* name;
  std::int64_t track;
  std::int64_t start_ns;
};

/// Per-thread event buffer. Registered in a global list via shared_ptr
/// so DrainTrace() can reach buffers of threads that already exited;
/// the per-buffer mutex is uncontended except during a drain.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::vector<OpenSpan> open;
  std::int64_t default_track;
};

std::mutex& BuffersMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<std::shared_ptr<ThreadBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->default_track =
        g_next_default_track.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(BuffersMutex());
    Buffers().push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

TraceSpan::TraceSpan(const char* name, std::int64_t track) {
  traced_ = TracingEnabled();
  flight_ = FlightRecorderEnabled();
  if (!traced_ && !flight_) return;
  name_ = name;
  track_ = track;
  start_ns_ = NowNs();
  if (flight_) {
    RecordFlightEvent(FlightEventKind::kSpanBegin, name, track);
  }
  if (!traced_) return;
  // Register as open so a drain that fires inside this span (flight
  // recorder mid-superstep) can report it as incomplete.
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.open.push_back(OpenSpan{this, name, track, start_ns_});
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const std::int64_t end_ns = NowNs();
  if (flight_) {
    RecordFlightEvent(FlightEventKind::kSpanEnd, name_, track_,
                      end_ns - start_ns_);
  }
  if (!traced_) return;
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = name_;
  event.track = track_ >= 0 ? track_ : buffer.default_track;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer.mu);
  for (auto it = buffer.open.rbegin(); it != buffer.open.rend(); ++it) {
    if (it->id == this) {
      buffer.open.erase(std::next(it).base());
      break;
    }
  }
  buffer.events.push_back(event);
}

std::vector<TraceEvent> DrainTrace() {
  std::vector<TraceEvent> all;
  const std::int64_t drain_ns = NowNs();
  {
    std::lock_guard<std::mutex> lock(BuffersMutex());
    for (const std::shared_ptr<ThreadBuffer>& buffer : Buffers()) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
      buffer->events.clear();
      // Snapshot still-open spans as incomplete events, without
      // consuming them: the owning TraceSpan may yet end normally, in
      // which case a later drain sees the completed event.
      for (const OpenSpan& open : buffer->open) {
        TraceEvent event;
        event.name = open.name;
        event.track =
            open.track >= 0 ? open.track : buffer->default_track;
        event.start_ns = open.start_ns;
        event.dur_ns = drain_ns - open.start_ns;
        event.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
        event.complete = false;
        all.push_back(event);
      }
    }
  }
  // Sort lanes, then time within a lane; an enclosing span shares its
  // start with the first child, so the longer (outer) span wins ties,
  // keeping nesting order stable. seq breaks exact remaining ties so
  // identical-timestamp runs serialize identically.
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.seq < b.seq;
            });
  return all;
}

void ClearTrace() { DrainTrace(); }

std::string DrainTraceJson() {
  const std::vector<TraceEvent> events = DrainTrace();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out.append("{\"traceEvents\":[\n");
  // Name the lanes: explicit tracks are workers/partitions, default
  // tracks are coordinator threads.
  std::set<std::int64_t> tracks;
  for (const TraceEvent& e : events) tracks.insert(e.track);
  bool first = true;
  char buf[192];
  for (const std::int64_t track : tracks) {
    if (!first) out.append(",\n");
    first = false;
    const char* kind =
        track >= TraceSpan::kDefaultTrackBase ? "thread" : "worker";
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%lld,\"args\":{\"name\":\"%s-%lld\"}}",
                  static_cast<long long>(track), kind,
                  static_cast<long long>(track));
    out.append(buf);
  }
  for (const TraceEvent& e : events) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":");
    // Names are literals, but escape anyway so no name can ever
    // corrupt the document.
    AppendJsonEscaped(e.name, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":1,\"tid\":%lld,"
                  "\"ts\":%.3f,\"dur\":%.3f%s}",
                  static_cast<long long>(e.track),
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0,
                  e.complete ? "" : ",\"args\":{\"incomplete\":true}");
    out.append(buf);
  }
  out.append("\n]}\n");
  return out;
}

Status WriteTraceFile(const std::string& path) {
  return WriteFileAtomic(path, DrainTraceJson());
}

}  // namespace inferturbo
