#include "src/telemetry/perf_counters.h"

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <string_view>

#include "src/telemetry/metrics.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define INFERTURBO_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define INFERTURBO_HAVE_PERF_EVENT 0
#endif

namespace inferturbo {

namespace telemetry_internal {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace telemetry_internal

void SetProfilingEnabled(bool enabled) {
  telemetry_internal::g_profiling_enabled.store(enabled,
                                                std::memory_order_relaxed);
}

PerfCounterValues& PerfCounterValues::operator+=(
    const PerfCounterValues& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  llc_misses += other.llc_misses;
  stalled_cycles += other.stalled_cycles;
  valid = valid || other.valid;
  return *this;
}

PerfCounterValues PerfCounterValues::operator-(
    const PerfCounterValues& other) const {
  PerfCounterValues delta;
  delta.cycles = cycles - other.cycles;
  delta.instructions = instructions - other.instructions;
  delta.llc_misses = llc_misses - other.llc_misses;
  delta.stalled_cycles = stalled_cycles - other.stalled_cycles;
  delta.valid = valid && other.valid;
  return delta;
}

namespace {

std::string& UnavailableReason() {
  static std::string* reason = new std::string();
  return *reason;
}

#if INFERTURBO_HAVE_PERF_EVENT

int PerfEventOpen(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  // Userspace-only counting works unprivileged under the common
  // perf_event_paranoid=2 default; counting kernel time would need
  // CAP_PERFMON, which CI containers do not have.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU it migrates to.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL));
}

bool ProbeSupport() {
  const int fd = PerfEventOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fd < 0) {
    UnavailableReason() =
        std::string("perf_event_open_failed: ") + std::strerror(errno);
    return false;
  }
  close(fd);
  return true;
}

/// The counter set one thread reads. Each event gets its own fd (no
/// PERF_FORMAT_GROUP: separate fds keep partially-available sets — a
/// machine without a stalled-cycles event — usable instead of
/// all-or-nothing). Closed by the thread_local destructor at thread
/// exit.
struct ThreadCounters {
  int cycles_fd = -1;
  int instructions_fd = -1;
  int llc_fd = -1;
  int stalled_fd = -1;
  bool opened = false;

  void Open() {
    opened = true;
    cycles_fd = PerfEventOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    instructions_fd =
        PerfEventOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    llc_fd = PerfEventOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    stalled_fd = PerfEventOpen(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  }

  ~ThreadCounters() {
    if (cycles_fd >= 0) close(cycles_fd);
    if (instructions_fd >= 0) close(instructions_fd);
    if (llc_fd >= 0) close(llc_fd);
    if (stalled_fd >= 0) close(stalled_fd);
  }

  static std::int64_t ReadOne(int fd) {
    if (fd < 0) return 0;
    std::uint64_t value = 0;
    if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
    return static_cast<std::int64_t>(value);
  }

  PerfCounterValues Read() {
    if (!opened) Open();
    PerfCounterValues v;
    v.cycles = ReadOne(cycles_fd);
    v.instructions = ReadOne(instructions_fd);
    v.llc_misses = ReadOne(llc_fd);
    v.stalled_cycles = ReadOne(stalled_fd);
    v.valid = cycles_fd >= 0;
    return v;
  }
};

ThreadCounters& LocalCounters() {
  thread_local ThreadCounters counters;
  return counters;
}

#else  // !INFERTURBO_HAVE_PERF_EVENT

bool ProbeSupport() {
  UnavailableReason() = "not_linux";
  return false;
}

#endif  // INFERTURBO_HAVE_PERF_EVENT

// Registry accumulation for a dynamic scope name. Profiled scopes are
// coarse (kernel dispatch, superstep stages), so a mutex-guarded map of
// cached counter pointers is fine off the disabled fast path.
struct ScopeCounters {
  Counter* cycles;
  Counter* instructions;
  Counter* llc_misses;
  Counter* stalled_cycles;
  Counter* scopes;
};

ScopeCounters& CountersFor(const char* name) {
  static std::mutex* mu = new std::mutex();
  static auto* map = new std::map<std::string, ScopeCounters, std::less<>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = map->find(std::string_view(name));
  if (it == map->end()) {
    const std::string base = std::string("profile.") + name;
    ScopeCounters entry{
        GlobalMetrics().GetCounter(base + ".cycles"),
        GlobalMetrics().GetCounter(base + ".instructions"),
        GlobalMetrics().GetCounter(base + ".llc_misses"),
        GlobalMetrics().GetCounter(base + ".stalled_cycles"),
        GlobalMetrics().GetCounter(base + ".scopes"),
    };
    it = map->emplace(std::string(name), entry).first;
  }
  return it->second;
}

}  // namespace

bool PerfCountersSupported() {
  static const bool supported = ProbeSupport();
  return supported;
}

const std::string& PerfCountersUnavailableReason() {
  PerfCountersSupported();  // force the probe so the reason is set
  return UnavailableReason();
}

PerfCounterValues ReadThreadPerfCounters() {
#if INFERTURBO_HAVE_PERF_EVENT
  if (ProfilingEnabled() && PerfCountersSupported()) {
    return LocalCounters().Read();
  }
#endif
  return PerfCounterValues{};
}

PerfCounterScope::PerfCounterScope(const char* name) {
  if (!ProfilingEnabled()) return;
  name_ = name;
  start_ = ReadThreadPerfCounters();
}

PerfCounterScope::PerfCounterScope(const char* name, PerfCounterValues* out) {
  if (!ProfilingEnabled()) return;
  name_ = name;
  out_ = out;
  start_ = ReadThreadPerfCounters();
}

PerfCounterScope::~PerfCounterScope() {
  if (name_ == nullptr) return;
  const PerfCounterValues delta = ReadThreadPerfCounters() - start_;
  if (out_ != nullptr) {
    *out_ += delta;
    return;
  }
  if (!delta.valid) return;
  const ScopeCounters& counters = CountersFor(name_);
  counters.cycles->Add(delta.cycles);
  counters.instructions->Add(delta.instructions);
  counters.llc_misses->Add(delta.llc_misses);
  counters.stalled_cycles->Add(delta.stalled_cycles);
  counters.scopes->Increment();
}

JsonValue ProfilingReportJson() {
  return JsonValue(JsonValue::Object{
      {"available", JsonValue(PerfCountersSupported())},
      {"enabled", JsonValue(ProfilingEnabled())},
      {"fallback_reason", JsonValue(PerfCountersUnavailableReason())},
  });
}

}  // namespace inferturbo
