#ifndef INFERTURBO_TELEMETRY_METRICS_H_
#define INFERTURBO_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/telemetry/json.h"

namespace inferturbo {

/// Process-wide telemetry master switch for metric instruments. When
/// off (the default) every Add/Set/Observe is a relaxed atomic load +
/// branch and nothing else — the overhead contract the bench ratio
/// gates depend on. Instruments are registered either way, so a
/// snapshot after a disabled run simply reports zeros.
namespace telemetry_internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace telemetry_internal

inline bool MetricsEnabled() {
  return telemetry_internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// A monotonically increasing counter. Thread-safe; all updates are
/// relaxed atomics (counters are read only at snapshot time, never for
/// cross-thread synchronization).
class Counter {
 public:
  void Add(std::int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::atomic<std::int64_t> value_{0};
};

/// A last-write-wins instantaneous value (queue depth, bytes mapped).
class Gauge {
 public:
  void Set(std::int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (value > peak &&
           !peak_.compare_exchange_weak(peak, value,
                                        std::memory_order_relaxed)) {
    }
  }
  void Add(std::int64_t delta) {
    if (!MetricsEnabled()) return;
    Set(value_.load(std::memory_order_relaxed) + delta);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket. The default grid (1 µs × 2^i,
  /// 40 buckets) spans sub-microsecond spans up to ~152 hours, wide
  /// enough for any duration this repo records in seconds.
  double first_bucket = 1e-6;
  double growth = 2.0;
  int num_buckets = 40;
};

/// A cheap point-in-time copy of a histogram's state. Supports
/// subtraction, so a periodic sampler can report percentiles over just
/// the last interval (snapshot_now - snapshot_then) instead of
/// since-process-start cumulatives — the timeline's p50/p95/p99 lines
/// are interval-local for exactly this reason.
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// This snapshot minus an `earlier` one of the same histogram:
  /// bucket-wise and count/sum difference. max cannot be un-observed,
  /// so the delta keeps the later max (an upper bound for the
  /// interval).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;

  /// Same interpolation as Histogram::Percentile, over this snapshot.
  double Percentile(double q) const;
  double BucketUpperBound(int i) const;
};

/// Fixed exponential-bucket histogram. Observe() touches only relaxed
/// atomics (one bucket count, a CAS-folded sum, a CAS max), so
/// concurrent observers never serialize on a lock.
class Histogram {
 public:
  void Observe(double value);

  /// Point-in-time copy (relaxed loads; no lock, no quiescence —
  /// concurrent observers may straddle the copy by one count).
  HistogramSnapshot Snapshot() const;

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double max() const;

  /// Quantile estimate in [0, 1] via cumulative bucket walk with linear
  /// interpolation inside the winning bucket. Returns 0 when empty.
  double Percentile(double q) const;

  /// Inclusive upper bound of bucket `i` (the last bucket is +inf).
  double BucketUpperBound(int i) const;
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  std::int64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(const HistogramOptions& options);

  HistogramOptions options_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored as bits, CAS-added
  std::atomic<std::uint64_t> max_bits_{0};
};

/// Name -> instrument map. Lock-light: the mutex guards registration
/// only; Get* returns a stable pointer callers cache (commonly in a
/// function-local static), after which updates are pure atomics.
/// Instruments live for the registry's lifetime and are never deleted.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          const HistogramOptions& options = {});

  /// Zeroes every instrument's value but keeps the instruments (and all
  /// cached pointers) valid. Lets one process run several jobs with
  /// per-job metric sections.
  void ResetValues();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, sum, max, p50, p95, p99}}} — keys sorted, deterministic.
  JsonValue Snapshot() const;
  std::string SnapshotJson() const { return Snapshot().Dump(2); }

  /// Structured point-in-time copy of every instrument, for samplers
  /// that need deltas between two points (the serve-mode timeline).
  struct Sample {
    std::map<std::string, std::int64_t> counters;
    /// name -> {value, peak}.
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Sample TakeSample() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every subsystem instruments into.
MetricRegistry& GlobalMetrics();

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_METRICS_H_
