#ifndef INFERTURBO_TELEMETRY_REPORT_DIFF_H_
#define INFERTURBO_TELEMETRY_REPORT_DIFF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/telemetry/json.h"

namespace inferturbo {

/// How a metric key is gated when a baseline and a current document
/// disagree. Classification is by key name (last path segment), so the
/// same rules apply to run_report.v1 documents and BENCH_*.json bench
/// records without per-file schemas.
enum class MetricDirection {
  kHigherIsWorse,   ///< times, latencies, fallback/failure counters
  kLowerIsWorse,    ///< throughputs, speedups, hit rates
  kExact,           ///< checksums/CRCs/recompute counts: any change fails
  kInformational,   ///< everything else: reported, never gated
};

MetricDirection ClassifyMetricKey(std::string_view key);

struct ReportDiffOptions {
  /// Relative tolerance for directional keys: higher-is-worse fails
  /// when current > baseline * (1 + tolerance); lower-is-worse fails
  /// when current < baseline / (1 + tolerance).
  double tolerance = 0.25;
  /// Absolute floor below which differences are ignored (sub-nanosecond
  /// jitter on near-zero timings must not trip a relative gate).
  double abs_tolerance = 1e-9;
  /// When nonempty, only keys containing one of these substrings are
  /// gated (exact-class keys are always gated). Lets CI gate
  /// bench_superstep on host-invariant speedup ratios while ignoring
  /// absolute seconds across heterogeneous runners.
  std::vector<std::string> key_filters;
  /// Treat baseline rows/keys missing from the current document as
  /// failures (default: count them, don't fail).
  bool fail_on_missing = false;
  /// Fail unless at least this many values were actually compared — a
  /// mis-matched pair of files that aligns zero rows must not pass.
  std::int64_t min_compared = 1;
};

struct ReportDiffFinding {
  std::string path;     ///< "results[op=gather,threads=2].speedup_vs_reference"
  std::string kind;     ///< "regression" | "exact_mismatch" | "missing" | "structure"
  double baseline = 0.0;
  double current = 0.0;
  std::string detail;   ///< human-readable one-liner
};

struct ReportDiffResult {
  std::vector<ReportDiffFinding> findings;
  std::int64_t compared = 0;  ///< gated values actually checked
  std::int64_t missing = 0;   ///< baseline values absent from current
  bool ok = true;
};

/// Compares two telemetry documents. Documents with a top-level
/// "results" array of records (the bench output format) are aligned
/// row-by-row on their identity fields (string fields that are not
/// exact-class, plus integer discriminators like "threads"/"delta");
/// any other object is walked recursively and compared key-by-key.
ReportDiffResult DiffReports(const JsonValue& baseline,
                             const JsonValue& current,
                             const ReportDiffOptions& options);

/// Parses both files and diffs them.
Result<ReportDiffResult> DiffReportFiles(const std::string& baseline_path,
                                         const std::string& current_path,
                                         const ReportDiffOptions& options);

/// Multi-line human summary (one line per finding + totals).
std::string FormatReportDiff(const ReportDiffResult& result);

/// Validates that `path` holds well-formed JSON: either one document,
/// or (when whole-file parsing fails) JSONL — every non-empty line an
/// independent document. When `expect_schema` is non-empty, every
/// document's "schema" member must equal it. Returns the number of
/// documents validated (>= 1).
Result<std::int64_t> LintJsonFile(const std::string& path,
                                  std::string_view expect_schema);

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_REPORT_DIFF_H_
