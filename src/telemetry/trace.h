#ifndef INFERTURBO_TELEMETRY_TRACE_H_
#define INFERTURBO_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace inferturbo {

/// Process-wide tracing switch. Off by default; when off a TraceSpan
/// constructor is a relaxed atomic load + branch and the destructor a
/// predictable not-taken branch — nothing is allocated or timed.
namespace telemetry_internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace telemetry_internal

inline bool TracingEnabled() {
  return telemetry_internal::g_trace_enabled.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool enabled);

/// Nanoseconds since the process-wide trace epoch (captured on first
/// use). Shared by TraceSpan and the flight recorder so both timelines
/// line up in a postmortem.
std::int64_t TraceNowNs();

/// One span, exposed for tests that assert on structure without
/// round-tripping through JSON. Usually complete; a drain that runs
/// while spans are still open (the flight recorder firing
/// mid-superstep) reports those as incomplete snapshots instead of
/// dropping them.
struct TraceEvent {
  const char* name;       ///< Static string; spans must pass literals.
  std::int64_t track;     ///< Logical lane (worker/partition id) or the
                          ///< thread's default track when unspecified.
  std::int64_t start_ns;  ///< Nanoseconds since the trace epoch.
  std::int64_t dur_ns;    ///< For incomplete spans: start-to-drain time.
  std::uint64_t seq;      ///< Global completion order, for stable sorts.
  bool complete = true;   ///< False when the span was open at drain time.
};

/// RAII scoped span. Records a complete ("ph":"X") event covering the
/// object's lifetime into a thread-local buffer; buffers are drained
/// process-wide by DrainTrace(). `name` MUST be a string literal (or
/// otherwise outlive the drain) — the recorder stores the pointer, not
/// a copy, so the hot path never allocates.
///
/// Tracks group spans into horizontal lanes in the viewer. Pass the
/// worker / partition / instance id so one lane tells one worker's
/// story across supersteps regardless of which pool thread ran it;
/// omit it for coordinator-side spans, which land on a stable
/// per-thread default track (>= kDefaultTrackBase).
class TraceSpan {
 public:
  static constexpr std::int64_t kDefaultTrackBase = 1000;

  explicit TraceSpan(const char* name) : TraceSpan(name, -1) {}
  TraceSpan(const char* name, std::int64_t track);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr == fully disarmed
  std::int64_t track_ = 0;
  std::int64_t start_ns_ = 0;
  bool traced_ = false;  // recording into the trace buffer
  bool flight_ = false;  // emitting span_begin/span_end flight events
};

/// Removes and returns all completed spans from every thread's buffer
/// (including threads that have since exited), sorted by (track, start,
/// longer-span-first, completion seq) so per-track ordering is stable
/// and deterministic for a deterministic run. Spans still open at drain
/// time are additionally reported as incomplete events (dur = time
/// until the drain) WITHOUT being consumed — if the span later ends
/// normally, a subsequent drain sees the completed event.
std::vector<TraceEvent> DrainTrace();

/// Drains and serializes as Chrome trace-event JSON — an object with a
/// "traceEvents" array of complete events (µs timestamps) plus
/// thread_name metadata per track, loadable in Perfetto or
/// chrome://tracing.
std::string DrainTraceJson();

/// DrainTraceJson() + durable write through WriteFileAtomic.
Status WriteTraceFile(const std::string& path);

/// Discards all buffered spans (test isolation between cases).
void ClearTrace();

}  // namespace inferturbo

#endif  // INFERTURBO_TELEMETRY_TRACE_H_
