#include "src/gas/gas_conv.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"

namespace inferturbo {

Tensor GasConv::ApplyEdge(const Tensor& messages,
                          const Tensor* edge_features) const {
  (void)edge_features;
  return messages;
}

GatherResult GatherIntoResult(AggKind kind, const Tensor& messages,
                              std::span<const std::int64_t> dst_index,
                              std::int64_t num_nodes, bool is_partial) {
  GatherResult result;
  result.kind = kind;
  if (kind == AggKind::kUnion) {
    INFERTURBO_CHECK(!is_partial) << "union aggregates have no partial form";
    result.messages = messages;
    result.dst_index.assign(dst_index.begin(), dst_index.end());
    result.counts = SegmentCounts(dst_index, num_nodes);
    return result;
  }

  const std::int64_t width =
      is_partial ? messages.cols() - 1 : messages.cols();
  INFERTURBO_CHECK(width >= 0) << "partial batch without a count column";
  result.pooled = Tensor(num_nodes, width);
  result.counts.assign(static_cast<std::size_t>(num_nodes), 0);

  if (kind == AggKind::kMax || kind == AggKind::kMin) {
    const float init = kind == AggKind::kMax
                           ? -std::numeric_limits<float>::infinity()
                           : std::numeric_limits<float>::infinity();
    result.pooled = Tensor::Full(num_nodes, width, init);
  }

  for (std::int64_t i = 0; i < messages.rows(); ++i) {
    const std::int64_t seg = dst_index[static_cast<std::size_t>(i)];
    INFERTURBO_CHECK(0 <= seg && seg < num_nodes)
        << "gather dst index " << seg << " out of [0," << num_nodes << ")";
    const float* row = messages.RowPtr(i);
    const std::int64_t count =
        is_partial ? static_cast<std::int64_t>(row[width]) : 1;
    float* acc = result.pooled.RowPtr(seg);
    switch (kind) {
      case AggKind::kSum:
      case AggKind::kMean:
        // Partial mean rows arrive as *running sums* plus a count
        // column (PooledAccumulator keeps sums until Finalize), so the
        // merge is a plain add either way.
        for (std::int64_t j = 0; j < width; ++j) acc[j] += row[j];
        break;
      case AggKind::kMax:
        for (std::int64_t j = 0; j < width; ++j) {
          acc[j] = std::max(acc[j], row[j]);
        }
        break;
      case AggKind::kMin:
        for (std::int64_t j = 0; j < width; ++j) {
          acc[j] = std::min(acc[j], row[j]);
        }
        break;
      case AggKind::kUnion:
        INFERTURBO_CHECK(false) << "unreachable";
    }
    result.counts[static_cast<std::size_t>(seg)] += count;
  }

  // Finalize: divide mean by total count; clear untouched extremum rows
  // to the neutral zero the layers expect for isolated nodes.
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    float* acc = result.pooled.RowPtr(v);
    const std::int64_t count = result.counts[static_cast<std::size_t>(v)];
    if (count == 0) {
      std::fill(acc, acc + width, 0.0f);
    } else if (kind == AggKind::kMean) {
      const float inv = 1.0f / static_cast<float>(count);
      for (std::int64_t j = 0; j < width; ++j) acc[j] *= inv;
    }
  }
  return result;
}

}  // namespace inferturbo
