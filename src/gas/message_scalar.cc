// The retained per-row scalar combine: PooledAccumulator::Add and
// ::AddPartial, one hash-resolved destination row and one scalar fold
// loop per message. AddBatch is bit-identical to calling these per row
// — the randomized equivalence suite holds it to that — and
// bench_superstep reports the batch path's speedup against this one,
// so like the other scalar oracles (kernels/reference.cc,
// superstep_gather_scalar.cc) this TU is compiled with
// autovectorization disabled: the baseline means the same thing at
// every optimization level.
#include <algorithm>

#include "src/common/logging.h"
#include "src/gas/message.h"

namespace inferturbo {

void PooledAccumulator::Add(NodeId dst, const float* row) {
  AddPartial(dst, row, 1);
}

void PooledAccumulator::AddPartial(NodeId dst, const float* row,
                                   std::int64_t count) {
  float* acc = RowFor(dst, count);
  switch (kind_) {
    case AggKind::kSum:
    case AggKind::kMean:  // carried as running sum until Finalize
      for (std::int64_t j = 0; j < width_; ++j) acc[j] += row[j];
      break;
    case AggKind::kMax:
      for (std::int64_t j = 0; j < width_; ++j) {
        acc[j] = std::max(acc[j], row[j]);
      }
      break;
    case AggKind::kMin:
      for (std::int64_t j = 0; j < width_; ++j) {
        acc[j] = std::min(acc[j], row[j]);
      }
      break;
    case AggKind::kUnion:
      INFERTURBO_CHECK(false) << "unreachable";
  }
}

}  // namespace inferturbo
