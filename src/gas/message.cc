#include "src/gas/message.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/common/logging.h"
#include "src/tensor/kernels/row_fold.h"

namespace inferturbo {

void MessageBatch::Append(const MessageBatch& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  INFERTURBO_CHECK(payload.cols() == other.payload.cols())
      << "MessageBatch width mismatch on Append";
  dst.insert(dst.end(), other.dst.begin(), other.dst.end());
  src.insert(src.end(), other.src.begin(), other.src.end());
  Tensor merged(payload.rows() + other.payload.rows(), payload.cols());
  std::memcpy(merged.data(), payload.data(), payload.ByteSize());
  std::memcpy(merged.RowPtr(payload.rows()), other.payload.data(),
              other.payload.ByteSize());
  payload = std::move(merged);
}

void MessageBatch::Push(NodeId dst_id, NodeId src_id, const float* row,
                        std::int64_t width) {
  if (payload.empty() && dst.empty()) {
    payload = Tensor(0, width);
  }
  INFERTURBO_CHECK(payload.cols() == width || payload.rows() == 0)
      << "MessageBatch width mismatch on Push";
  if (payload.cols() != width) payload = Tensor(0, width);
  payload.AppendRow(row);
  dst.push_back(dst_id);
  src.push_back(src_id);
}

void MessageBatch::Reserve(std::size_t n, std::int64_t width) {
  dst.reserve(n);
  src.reserve(n);
  if (payload.empty()) payload = Tensor(0, width);
  payload.ReserveRows(static_cast<std::int64_t>(n));
}

MessageBatch MessageBatch::Merge(std::span<const MessageBatch> batches) {
  MessageBatch out;
  std::size_t total = 0;
  std::int64_t width = 0;
  for (const MessageBatch& b : batches) {
    total += b.dst.size();
    if (!b.empty()) width = b.payload.cols();
  }
  if (total == 0) return out;
  out.dst.reserve(total);
  out.src.reserve(total);
  out.payload = Tensor(static_cast<std::int64_t>(total), width);
  std::int64_t row = 0;
  for (const MessageBatch& b : batches) {
    if (b.empty()) continue;
    INFERTURBO_CHECK(b.payload.cols() == width)
        << "MessageBatch width mismatch on Merge";
    out.dst.insert(out.dst.end(), b.dst.begin(), b.dst.end());
    out.src.insert(out.src.end(), b.src.begin(), b.src.end());
    std::memcpy(out.payload.RowPtr(row), b.payload.data(),
                b.payload.ByteSize());
    row += b.payload.rows();
  }
  return out;
}

std::vector<MessageBatch> SplitByWorker(MessageBatch batch,
                                        const HashPartitioner& partitioner,
                                        std::int64_t num_workers) {
  std::vector<MessageBatch> slices(static_cast<std::size_t>(num_workers));
  if (batch.empty()) return slices;
  const std::int64_t n = batch.size();
  // One counting pass that also memoizes each row's owner, so the
  // partition hash runs once per row instead of once per pass.
  std::vector<std::int32_t> owner(static_cast<std::size_t>(n));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_workers), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t w =
        partitioner.PartitionOf(batch.dst[static_cast<std::size_t>(i)]);
    owner[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(w);
    ++counts[static_cast<std::size_t>(w)];
  }
  // Single-owner fast path — the common case when callers already emit
  // per-destination-worker batches: zero copies, the batch moves whole.
  const std::size_t first_owner = static_cast<std::size_t>(owner[0]);
  if (counts[first_owner] == n) {
    slices[first_owner] = std::move(batch);
    return slices;
  }
  const std::int64_t width = batch.payload.cols();
  for (std::int64_t w = 0; w < num_workers; ++w) {
    const std::int64_t count = counts[static_cast<std::size_t>(w)];
    if (count == 0) continue;
    MessageBatch& slice = slices[static_cast<std::size_t>(w)];
    slice.dst.reserve(static_cast<std::size_t>(count));
    slice.src.reserve(static_cast<std::size_t>(count));
    slice.payload = Tensor(count, width);
  }
  std::vector<std::int64_t> cursor(static_cast<std::size_t>(num_workers), 0);
  std::int64_t i = 0;
  while (i < n) {
    // Maximal same-owner run [i, e): ids append as a range and payload
    // rows move with one block memcpy.
    const std::int32_t w = owner[static_cast<std::size_t>(i)];
    std::int64_t e = i + 1;
    while (e < n && owner[static_cast<std::size_t>(e)] == w) ++e;
    MessageBatch& slice = slices[static_cast<std::size_t>(w)];
    slice.dst.insert(slice.dst.end(),
                     batch.dst.begin() + static_cast<std::ptrdiff_t>(i),
                     batch.dst.begin() + static_cast<std::ptrdiff_t>(e));
    slice.src.insert(slice.src.end(),
                     batch.src.begin() + static_cast<std::ptrdiff_t>(i),
                     batch.src.begin() + static_cast<std::ptrdiff_t>(e));
    if (width > 0) {
      std::memcpy(slice.payload.RowPtr(cursor[static_cast<std::size_t>(w)]),
                  batch.payload.RowPtr(i),
                  static_cast<std::size_t>((e - i) * width) * sizeof(float));
    }
    cursor[static_cast<std::size_t>(w)] += e - i;
    i = e;
  }
  return slices;
}

PooledAccumulator::PooledAccumulator(AggKind kind, std::int64_t width)
    : kind_(kind), width_(width) {
  INFERTURBO_CHECK(kind != AggKind::kUnion)
      << "PooledAccumulator cannot pool a union aggregate";
}

void PooledAccumulator::Reset(AggKind kind, std::int64_t width) {
  INFERTURBO_CHECK(kind != AggKind::kUnion)
      << "PooledAccumulator cannot pool a union aggregate";
  kind_ = kind;
  width_ = width;
  rows_.clear();
  dst_order_.clear();
  counts_.clear();
  index_.clear();
  // dense_slots_ / slot_scratch_ are per-AddBatch scratch and already
  // reinitialized on use; keeping them is the point of Reset.
}

namespace {

float PooledInitValue(AggKind kind) {
  return (kind == AggKind::kMax) ? -std::numeric_limits<float>::infinity()
         : (kind == AggKind::kMin) ? std::numeric_limits<float>::infinity()
                                   : 0.0f;
}

kernels::detail::FoldOp PooledFoldOp(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kMean:  // carried as running sum until Finalize
      return kernels::detail::FoldOp::kAdd;
    case AggKind::kMax:
      return kernels::detail::FoldOp::kMax;
    case AggKind::kMin:
      return kernels::detail::FoldOp::kMin;
    case AggKind::kUnion:
      break;
  }
  INFERTURBO_CHECK(false) << "unreachable";
  return kernels::detail::FoldOp::kAdd;
}

}  // namespace

std::int64_t PooledAccumulator::SlotFor(NodeId dst) {
  auto [it, inserted] =
      index_.try_emplace(dst, static_cast<std::int64_t>(dst_order_.size()));
  if (inserted) {
    dst_order_.push_back(dst);
    counts_.push_back(0);
    rows_.resize(rows_.size() + static_cast<std::size_t>(width_),
                 PooledInitValue(kind_));
  }
  return it->second;
}

float* PooledAccumulator::RowFor(NodeId dst, std::int64_t count_delta) {
  const std::int64_t s = SlotFor(dst);
  counts_[static_cast<std::size_t>(s)] += count_delta;
  return rows_.data() + s * width_;
}

void PooledAccumulator::AddBatch(const MessageBatch& batch, bool partial) {
  if (batch.empty()) return;
  const std::int64_t expected = partial ? width_ + 1 : width_;
  INFERTURBO_CHECK(batch.payload.cols() == expected)
      << "AddBatch payload width " << batch.payload.cols() << " vs expected "
      << expected << (partial ? " (partial)" : "");
  const std::int64_t n = batch.size();

  // Pass 1 — slot resolution, ids only (the payload stays untouched so
  // its stream is read exactly once, by the fold kernel). When the
  // destination id range is modest relative to the batch (hub-heavy
  // power-law traffic), a dense scratch table turns the per-row hash
  // probe into one array load — the hash index is consulted only the
  // first time a destination appears this call. A sparse gigantic id
  // space skips the table rather than allocate it.
  NodeId max_dst = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    max_dst = std::max(max_dst, batch.dst[static_cast<std::size_t>(i)]);
  }
  const bool dense = static_cast<std::int64_t>(max_dst) < 4 * n + 1024;
  if (dense) {
    dense_slots_.assign(static_cast<std::size_t>(max_dst) + 1, -1);
  }
  slot_scratch_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId d = batch.dst[static_cast<std::size_t>(i)];
    std::int64_t s;
    if (dense) {
      const std::int32_t cached = dense_slots_[static_cast<std::size_t>(d)];
      if (cached >= 0) {
        s = cached;
      } else {
        s = SlotFor(d);
        dense_slots_[static_cast<std::size_t>(d)] =
            static_cast<std::int32_t>(s);
      }
    } else {
      s = SlotFor(d);
    }
    slot_scratch_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(s);
  }

  // Pass 2 — counts and value folds, one batch kernel call with the
  // SIMD row fold inlined, in row order: the same per-destination
  // accumulation order (and first-seen emission order) as the per-row
  // path. rows_ stopped growing after pass 1, so the base pointer is
  // stable.
  kernels::detail::SlotFold(PooledFoldOp(kind_))(
      rows_.data(), width_, slot_scratch_.data(), counts_.data(),
      batch.payload.data(), batch.payload.cols(), n, partial);
}

// PooledAccumulator::Add / ::AddPartial — the retained per-row scalar
// folds — live in message_scalar.cc, a TU pinned against
// autovectorization, because they double as the oracle bench_superstep
// measures the batch path against.

MessageBatch PooledAccumulator::ToPartialBatch(NodeId from) const {
  MessageBatch batch;
  batch.dst = dst_order_;
  batch.src.assign(dst_order_.size(), from);
  batch.payload = Tensor(static_cast<std::int64_t>(dst_order_.size()),
                         width_ + 1);
  for (std::size_t i = 0; i < dst_order_.size(); ++i) {
    float* row = batch.payload.RowPtr(static_cast<std::int64_t>(i));
    std::memcpy(row, rows_.data() + static_cast<std::int64_t>(i) * width_,
                static_cast<std::size_t>(width_) * sizeof(float));
    row[width_] = static_cast<float>(counts_[i]);
  }
  return batch;
}

PooledAccumulator::Finalized PooledAccumulator::Finalize() const {
  Finalized out;
  out.dst = dst_order_;
  out.counts = counts_;
  out.values = Tensor(static_cast<std::int64_t>(dst_order_.size()), width_);
  for (std::size_t i = 0; i < dst_order_.size(); ++i) {
    const float* src_row = rows_.data() + static_cast<std::int64_t>(i) *
                                              width_;
    float* dst_row = out.values.RowPtr(static_cast<std::int64_t>(i));
    if (kind_ == AggKind::kMean && counts_[i] > 0) {
      const float inv = 1.0f / static_cast<float>(counts_[i]);
      for (std::int64_t j = 0; j < width_; ++j) dst_row[j] = src_row[j] * inv;
    } else {
      std::memcpy(dst_row, src_row,
                  static_cast<std::size_t>(width_) * sizeof(float));
    }
  }
  return out;
}

}  // namespace inferturbo
