#include "src/gas/superstep_gather.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/row_fold.h"

namespace inferturbo {

BucketedInbox BucketInbox(std::span<const MessageBatch> batches,
                          const std::vector<bool>& batch_partial,
                          std::int64_t msg_dim,
                          std::span<const std::int64_t> local_index,
                          const BroadcastLookupFn& lookup) {
  BucketedInbox inbox;
  std::int64_t total = 0;
  bool any_partial = false;
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    total += batches[bi].size();
    any_partial = any_partial ||
                  (batch_partial[bi] && !batches[bi].empty());
  }
  inbox.rows = Tensor(total, msg_dim);
  inbox.dst.resize(static_cast<std::size_t>(total));
  if (any_partial) inbox.counts.assign(static_cast<std::size_t>(total), 1);

  const std::size_t row_bytes =
      static_cast<std::size_t>(msg_dim) * sizeof(float);
  std::int64_t row = 0;
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const MessageBatch& b = batches[bi];
    if (b.empty()) continue;
    const bool partial = batch_partial[bi];
    const bool id_only = b.payload.cols() == 0;
    const std::int64_t n = b.size();
    // Destination segments: one local-index gather per row.
    std::int64_t* pdst = inbox.dst.data() + row;
    if (local_index.empty()) {
      std::memset(pdst, 0, static_cast<std::size_t>(n) * sizeof(std::int64_t));
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        pdst[i] = local_index[static_cast<std::size_t>(
            b.dst[static_cast<std::size_t>(i)])];
      }
    }
    // Payload rows.
    if (id_only) {
      for (std::int64_t i = 0; i < n; ++i) {
        const std::vector<float>* value =
            lookup(b.src[static_cast<std::size_t>(i)]);
        INFERTURBO_CHECK(value != nullptr)
            << "missing broadcast value for node "
            << b.src[static_cast<std::size_t>(i)];
        std::memcpy(inbox.rows.RowPtr(row + i), value->data(), row_bytes);
      }
    } else if (partial) {
      INFERTURBO_CHECK(b.payload.cols() == msg_dim + 1)
          << "partial batch width " << b.payload.cols() << " vs message dim "
          << msg_dim;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = b.payload.RowPtr(i);
        std::memcpy(inbox.rows.RowPtr(row + i), src, row_bytes);
        inbox.counts[static_cast<std::size_t>(row + i)] =
            static_cast<std::int64_t>(src[msg_dim]);
      }
    } else {
      INFERTURBO_CHECK(b.payload.cols() == msg_dim)
          << "dense batch width " << b.payload.cols() << " vs message dim "
          << msg_dim;
      // Dense payloads are already the flat form: one block copy.
      std::memcpy(inbox.rows.RowPtr(row), b.payload.data(),
                  static_cast<std::size_t>(n) * row_bytes);
    }
    row += n;
  }
  return inbox;
}

GatherResult ReduceBucketedInbox(AggKind kind, BucketedInbox inbox,
                                 std::int64_t num_nodes) {
  GatherResult result;
  result.kind = kind;
  result.counts.assign(static_cast<std::size_t>(num_nodes), 0);

  if (kind == AggKind::kUnion) {
    INFERTURBO_CHECK(inbox.counts.empty())
        << "union layer received a partial aggregate";
    for (std::int64_t s : inbox.dst) {
      ++result.counts[static_cast<std::size_t>(s)];
    }
    result.messages = std::move(inbox.rows);
    result.dst_index = std::move(inbox.dst);
    return result;
  }

  // True folded message count per node (partial rows carry more than
  // one original message, so this is NOT the row count).
  if (inbox.counts.empty()) {
    for (std::int64_t s : inbox.dst) {
      ++result.counts[static_cast<std::size_t>(s)];
    }
  } else {
    for (std::size_t i = 0; i < inbox.dst.size(); ++i) {
      result.counts[static_cast<std::size_t>(inbox.dst[i])] +=
          inbox.counts[i];
    }
  }

  switch (kind) {
    case AggKind::kSum:
    case AggKind::kMean:
      // Mean is a sum here: the divisor is the true count below, which
      // kernels::SegmentMean (row count) would get wrong for partials.
      result.pooled = kernels::SegmentSum(inbox.rows, inbox.dst, num_nodes);
      break;
    case AggKind::kMax:
      result.pooled = kernels::SegmentMax(inbox.rows, inbox.dst, num_nodes);
      break;
    case AggKind::kMin:
      result.pooled = kernels::SegmentMin(inbox.rows, inbox.dst, num_nodes);
      break;
    case AggKind::kUnion:
      INFERTURBO_CHECK(false) << "unreachable";
  }
  // Isolated nodes are already zero (SegmentSum init, the extremum
  // kernels' empty-segment fill); only mean needs a finalize pass.
  if (kind == AggKind::kMean) {
    const std::int64_t msg_dim = result.pooled.cols();
    float* pooled = result.pooled.data();
    const std::int64_t* counts = result.counts.data();
    kernels::ParallelForRanges(
        num_nodes, msg_dim, [&](std::int64_t v0, std::int64_t v1) {
          for (std::int64_t v = v0; v < v1; ++v) {
            if (counts[v] == 0) continue;
            const float inv = 1.0f / static_cast<float>(counts[v]);
            float* acc = pooled + v * msg_dim;
            for (std::int64_t j = 0; j < msg_dim; ++j) acc[j] *= inv;
          }
        });
  }
  return result;
}

namespace {

// Pooled kinds skip the BucketedInbox materialization entirely: the
// segment fold reads rows straight out of the delivered batch payloads
// (partial rows through their wider stride, broadcast references
// through pre-resolved board pointers), so the memory traffic matches
// the scalar oracle's single pass while the folds run 8-wide. Fold
// order per destination is still batch order then row order — the
// bit-identity contract — because tasks own destination ranges and
// every task walks the batches in delivery order.
GatherResult GatherPooledFused(AggKind kind, std::int64_t msg_dim,
                               std::span<const MessageBatch> batches,
                               const std::vector<bool>& batch_partial,
                               std::span<const std::int64_t> local_index,
                               std::int64_t num_nodes,
                               const BroadcastLookupFn& lookup) {
  GatherResult result;
  result.kind = kind;
  result.counts.assign(static_cast<std::size_t>(num_nodes), 0);

  std::int64_t total = 0;
  for (const MessageBatch& b : batches) total += b.size();
  if (total == 0 || num_nodes == 0) {
    result.pooled = Tensor(num_nodes, msg_dim);
    return result;
  }
  const bool sum_like = kind == AggKind::kSum || kind == AggKind::kMean;
  result.pooled =
      sum_like ? Tensor(num_nodes, msg_dim)
               : Tensor::Full(num_nodes, msg_dim,
                              kind == AggKind::kMax
                                  ? -std::numeric_limits<float>::infinity()
                                  : std::numeric_limits<float>::infinity());

  // Serial prologue: per-row destination segments, true message counts,
  // and broadcast-row resolution (the lookup is not required to be
  // thread-safe, so it runs before the fan-out).
  std::vector<std::int32_t> segs(static_cast<std::size_t>(total));
  std::vector<const float*> resolved;
  std::int64_t base = 0;
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const MessageBatch& b = batches[bi];
    if (b.empty()) continue;
    const std::int64_t n = b.size();
    std::int32_t* ps = segs.data() + base;
    if (local_index.empty()) {
      std::fill(ps, ps + n, 0);
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        ps[i] = static_cast<std::int32_t>(local_index[static_cast<std::size_t>(
            b.dst[static_cast<std::size_t>(i)])]);
      }
    }
    if (b.payload.cols() == 0) {  // id-only broadcast references
      if (resolved.empty()) {
        resolved.assign(static_cast<std::size_t>(total), nullptr);
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const std::vector<float>* value =
            lookup(b.src[static_cast<std::size_t>(i)]);
        INFERTURBO_CHECK(value != nullptr)
            << "missing broadcast value for node "
            << b.src[static_cast<std::size_t>(i)];
        resolved[static_cast<std::size_t>(base + i)] = value->data();
        ++result.counts[static_cast<std::size_t>(ps[i])];
      }
    } else if (batch_partial[bi]) {
      INFERTURBO_CHECK(b.payload.cols() == msg_dim + 1)
          << "partial batch width " << b.payload.cols() << " vs message dim "
          << msg_dim;
      const float* pv = b.payload.data();
      const std::int64_t stride = msg_dim + 1;
      for (std::int64_t i = 0; i < n; ++i) {
        result.counts[static_cast<std::size_t>(ps[i])] +=
            static_cast<std::int64_t>(pv[i * stride + msg_dim]);
      }
    } else {
      INFERTURBO_CHECK(b.payload.cols() == msg_dim)
          << "dense batch width " << b.payload.cols() << " vs message dim "
          << msg_dim;
      for (std::int64_t i = 0; i < n; ++i) {
        ++result.counts[static_cast<std::size_t>(ps[i])];
      }
    }
    base += n;
  }

  const kernels::detail::FoldOp op = kind == AggKind::kMax
                                         ? kernels::detail::FoldOp::kMax
                                     : kind == AggKind::kMin
                                         ? kernels::detail::FoldOp::kMin
                                         : kernels::detail::FoldOp::kAdd;
  const kernels::detail::SegFoldFn seg_fold = kernels::detail::SegFold(op);
  const kernels::detail::RowFoldFn row_fold =
      op == kernels::detail::FoldOp::kMax   ? kernels::detail::RowMax()
      : op == kernels::detail::FoldOp::kMin ? kernels::detail::RowMin()
                                            : kernels::detail::RowAdd();
  float* po = result.pooled.data();
  const std::int64_t work_per_segment =
      total * msg_dim / std::max<std::int64_t>(1, num_nodes);
  kernels::ParallelForRanges(
      num_nodes, work_per_segment, [&](std::int64_t s0, std::int64_t s1) {
        std::int64_t at = 0;
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
          const MessageBatch& b = batches[bi];
          if (b.empty()) continue;
          const std::int64_t n = b.size();
          const std::int32_t* ps = segs.data() + at;
          if (b.payload.cols() == 0) {
            // Broadcast references fold through their resolved board
            // pointers — few rows (one per hub reference), so the
            // per-row dispatched fold is fine here.
            const float* const* pr = resolved.data() + at;
            for (std::int64_t i = 0; i < n; ++i) {
              const std::int64_t s = ps[i];
              if (s >= s0 && s < s1) {
                row_fold(po + s * msg_dim, pr[i], msg_dim);
              }
            }
          } else {
            // Contiguous payloads take the batch kernel: the row fold
            // is inlined, so the payload stream — the dominant traffic
            // of the whole gather — runs call-free.
            seg_fold(po, msg_dim, ps, b.payload.data(), b.payload.cols(), n,
                     s0, s1);
          }
          at += n;
        }
      });

  // Isolated nodes: extrema flip their +-inf init to the neutral zero;
  // sum/mean are already zero.
  if (!sum_like) {
    const std::int64_t* counts = result.counts.data();
    kernels::ParallelForRanges(
        num_nodes, msg_dim, [&](std::int64_t v0, std::int64_t v1) {
          for (std::int64_t v = v0; v < v1; ++v) {
            if (counts[v] != 0) continue;
            float* row = po + v * msg_dim;
            std::fill(row, row + msg_dim, 0.0f);
          }
        });
  }
  if (kind == AggKind::kMean) {
    const std::int64_t* counts = result.counts.data();
    kernels::ParallelForRanges(
        num_nodes, msg_dim, [&](std::int64_t v0, std::int64_t v1) {
          for (std::int64_t v = v0; v < v1; ++v) {
            if (counts[v] == 0) continue;
            const float inv = 1.0f / static_cast<float>(counts[v]);
            float* acc = po + v * msg_dim;
            for (std::int64_t j = 0; j < msg_dim; ++j) acc[j] *= inv;
          }
        });
  }
  return result;
}

}  // namespace

GatherResult GatherSuperstepInbox(AggKind kind, std::int64_t msg_dim,
                                  std::span<const MessageBatch> batches,
                                  const std::vector<bool>& batch_partial,
                                  std::span<const std::int64_t> local_index,
                                  std::int64_t num_nodes,
                                  const BroadcastLookupFn& lookup) {
  if (kind == AggKind::kUnion) {
    // Union keeps the raw rows, so the flat materialization IS the
    // result; the fused fold has nothing to save.
    return ReduceBucketedInbox(
        kind, BucketInbox(batches, batch_partial, msg_dim, local_index,
                          lookup),
        num_nodes);
  }
  return GatherPooledFused(kind, msg_dim, batches, batch_partial, local_index,
                           num_nodes, lookup);
}

}  // namespace inferturbo
