#ifndef INFERTURBO_GAS_SUPERSTEP_GATHER_H_
#define INFERTURBO_GAS_SUPERSTEP_GATHER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/gas/gas_conv.h"
#include "src/gas/message.h"

namespace inferturbo {

/// The superstep gather data plane, shared by both backends: a worker's
/// inbox (Pregel) or a key group's message values (MapReduce) is first
/// flattened into dst-segmented arrays in one counting pass —
/// BucketedInbox — then reduced with the parallel segment kernels.
/// Everything here preserves the scalar fold's accumulation order
/// exactly (per destination: batch order, then row order within a
/// batch), so results are bit-identical to the retained per-row oracle
/// at any thread count.

/// Resolves a broadcast key (id-only message reference) to its
/// published row, or nullptr when the key was never published.
using BroadcastLookupFn =
    std::function<const std::vector<float>*(NodeId)>;

/// A flattened inbox: every message row materialized (broadcast refs
/// resolved, partial rows stripped of their trailing count column),
/// with its destination segment id and folded message count.
struct BucketedInbox {
  /// (n × msg_dim) resolved message rows, in inbox order.
  Tensor rows;
  /// Local destination segment per row, in [0, num_nodes).
  std::vector<std::int64_t> dst;
  /// Original-message count each row carries; empty means all 1 (no
  /// partial batches were present).
  std::vector<std::int64_t> counts;
};

/// Flattens `batches` in one counting pass. `batch_partial[i]` marks
/// batch i as pre-pooled (payload has a trailing count column);
/// zero-width payloads are id-only broadcast references resolved
/// through `lookup` (which must return non-null for every referenced
/// key). `local_index` maps a global dst id to its segment; an empty
/// span sends every row to segment 0 (the MapReduce single-key case).
BucketedInbox BucketInbox(std::span<const MessageBatch> batches,
                          const std::vector<bool>& batch_partial,
                          std::int64_t msg_dim,
                          std::span<const std::int64_t> local_index,
                          const BroadcastLookupFn& lookup);

/// Segment-reduces a bucketed inbox into a finalized GatherResult over
/// `num_nodes` segments: sum/mean/max/min run through the parallel
/// kernels (mean divides by the true folded count, not the row count,
/// so partial rows merge exactly); union moves the rows through
/// untouched. Nodes that received nothing get a zero row and count 0.
GatherResult ReduceBucketedInbox(AggKind kind, BucketedInbox inbox,
                                 std::int64_t num_nodes);

/// The full kernel-backed gather: BucketInbox + ReduceBucketedInbox.
GatherResult GatherSuperstepInbox(AggKind kind, std::int64_t msg_dim,
                                  std::span<const MessageBatch> batches,
                                  const std::vector<bool>& batch_partial,
                                  std::span<const std::int64_t> local_index,
                                  std::int64_t num_nodes,
                                  const BroadcastLookupFn& lookup);

/// The retained scalar oracle — byte-for-byte the pre-kernel per-row
/// fold the Pregel driver used to run. It is the bit-identity oracle
/// the equivalence tests check the fast path against and the baseline
/// bench_superstep measures speedups against; its TU is compiled with
/// autovectorization disabled so the baseline means the same thing at
/// every optimization level. Do not "optimize" it.
GatherResult GatherSuperstepInboxScalar(
    AggKind kind, std::int64_t msg_dim,
    std::span<const MessageBatch> batches,
    const std::vector<bool>& batch_partial,
    std::span<const std::int64_t> local_index, std::int64_t num_nodes,
    const BroadcastLookupFn& lookup);

}  // namespace inferturbo

#endif  // INFERTURBO_GAS_SUPERSTEP_GATHER_H_
