// The retained scalar gather oracle. This is byte-for-byte the per-row
// fold the Pregel driver ran before the kernel-backed data plane: one
// message row at a time, a scalar switch per row, std::max/std::min
// folds, then a serial finalize. The equivalence suite checks the fast
// path against it and bench_superstep reports speedups relative to it,
// so — like src/tensor/kernels/reference.cc — this TU is pinned to
// genuinely scalar code via per-file compile options (see
// src/CMakeLists.txt). Do not "optimize" it.
#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/gas/superstep_gather.h"

namespace inferturbo {

GatherResult GatherSuperstepInboxScalar(
    AggKind kind, std::int64_t msg_dim,
    std::span<const MessageBatch> batches,
    const std::vector<bool>& batch_partial,
    std::span<const std::int64_t> local_index, std::int64_t num_nodes,
    const BroadcastLookupFn& lookup) {
  const auto local_of = [&local_index](NodeId v) {
    return local_index.empty()
               ? std::int64_t{0}
               : local_index[static_cast<std::size_t>(v)];
  };

  if (kind == AggKind::kUnion) {
    // Materialize all rows with local dst indices.
    std::int64_t total = 0;
    for (const MessageBatch& b : batches) total += b.size();
    GatherResult result;
    result.kind = kind;
    result.messages = Tensor(total, msg_dim);
    result.dst_index.reserve(static_cast<std::size_t>(total));
    result.counts.assign(static_cast<std::size_t>(num_nodes), 0);
    std::int64_t row = 0;
    for (const MessageBatch& b : batches) {
      const bool id_only = b.payload.cols() == 0;
      for (std::int64_t i = 0; i < b.size(); ++i) {
        const std::int64_t local =
            local_of(b.dst[static_cast<std::size_t>(i)]);
        if (id_only) {
          const std::vector<float>* value =
              lookup(b.src[static_cast<std::size_t>(i)]);
          INFERTURBO_CHECK(value != nullptr)
              << "missing broadcast value for node "
              << b.src[static_cast<std::size_t>(i)];
          result.messages.SetRow(row, value->data());
        } else {
          result.messages.SetRow(row, b.payload.RowPtr(i));
        }
        result.dst_index.push_back(local);
        ++result.counts[static_cast<std::size_t>(local)];
        ++row;
      }
    }
    return result;
  }

  // Pooled path: fold rows (and pre-pooled partial rows) directly.
  GatherResult result;
  result.kind = kind;
  result.pooled = Tensor(num_nodes, msg_dim);
  result.counts.assign(static_cast<std::size_t>(num_nodes), 0);
  if (kind == AggKind::kMax || kind == AggKind::kMin) {
    result.pooled = Tensor::Full(
        num_nodes, msg_dim,
        kind == AggKind::kMax ? -std::numeric_limits<float>::infinity()
                              : std::numeric_limits<float>::infinity());
  }
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const MessageBatch& b = batches[bi];
    const bool partial = batch_partial[bi];
    const bool id_only = b.payload.cols() == 0;
    for (std::int64_t i = 0; i < b.size(); ++i) {
      const std::int64_t local = local_of(b.dst[static_cast<std::size_t>(i)]);
      const float* row_data;
      std::int64_t count = 1;
      if (id_only) {
        const std::vector<float>* value =
            lookup(b.src[static_cast<std::size_t>(i)]);
        INFERTURBO_CHECK(value != nullptr)
            << "missing broadcast value for node "
            << b.src[static_cast<std::size_t>(i)];
        row_data = value->data();
      } else {
        row_data = b.payload.RowPtr(i);
        if (partial) {
          count = static_cast<std::int64_t>(row_data[msg_dim]);
        }
      }
      float* acc = result.pooled.RowPtr(local);
      switch (kind) {
        case AggKind::kSum:
        case AggKind::kMean:
          for (std::int64_t j = 0; j < msg_dim; ++j) acc[j] += row_data[j];
          break;
        case AggKind::kMax:
          for (std::int64_t j = 0; j < msg_dim; ++j) {
            acc[j] = std::max(acc[j], row_data[j]);
          }
          break;
        case AggKind::kMin:
          for (std::int64_t j = 0; j < msg_dim; ++j) {
            acc[j] = std::min(acc[j], row_data[j]);
          }
          break;
        case AggKind::kUnion:
          INFERTURBO_CHECK(false) << "unreachable";
      }
      result.counts[static_cast<std::size_t>(local)] += count;
    }
  }
  // Finalize: mean division, neutral zero for isolated nodes.
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    float* acc = result.pooled.RowPtr(v);
    const std::int64_t count = result.counts[static_cast<std::size_t>(v)];
    if (count == 0) {
      std::fill(acc, acc + msg_dim, 0.0f);
    } else if (kind == AggKind::kMean) {
      const float inv = 1.0f / static_cast<float>(count);
      for (std::int64_t j = 0; j < msg_dim; ++j) acc[j] *= inv;
    }
  }
  return result;
}

}  // namespace inferturbo
