#include "src/gas/signature.h"

#include <sstream>
#include <vector>

namespace inferturbo {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kMean:
      return "mean";
    case AggKind::kMax:
      return "max";
    case AggKind::kMin:
      return "min";
    case AggKind::kUnion:
      return "union";
  }
  return "unknown";
}

Result<AggKind> AggKindFromString(std::string_view s) {
  if (s == "sum") return AggKind::kSum;
  if (s == "mean") return AggKind::kMean;
  if (s == "max") return AggKind::kMax;
  if (s == "min") return AggKind::kMin;
  if (s == "union") return AggKind::kUnion;
  return Status::InvalidArgument("unknown agg kind: '" + std::string(s) + "'");
}

std::string LayerSignature::Serialize() const {
  std::ostringstream os;
  os << "layer_type=" << layer_type << " agg=" << AggKindToString(agg_kind)
     << " in=" << input_dim << " out=" << output_dim
     << " msg=" << message_dim << " partial=" << (partial_gather ? 1 : 0)
     << " broadcastable=" << (broadcastable_messages ? 1 : 0)
     << " edge_feats=" << (uses_edge_features ? 1 : 0);
  return os.str();
}

Result<LayerSignature> LayerSignature::Parse(const std::string& line) {
  LayerSignature sig;
  std::istringstream is(line);
  std::string token;
  bool saw_type = false;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad signature token: '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "layer_type") {
        sig.layer_type = value;
        saw_type = true;
      } else if (key == "agg") {
        INFERTURBO_ASSIGN_OR_RETURN(sig.agg_kind, AggKindFromString(value));
      } else if (key == "in") {
        sig.input_dim = std::stoll(value);
      } else if (key == "out") {
        sig.output_dim = std::stoll(value);
      } else if (key == "msg") {
        sig.message_dim = std::stoll(value);
      } else if (key == "partial") {
        sig.partial_gather = value == "1";
      } else if (key == "broadcastable") {
        sig.broadcastable_messages = value == "1";
      } else if (key == "edge_feats") {
        sig.uses_edge_features = value == "1";
      } else {
        return Status::InvalidArgument("unknown signature key: '" + key + "'");
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad signature value for " + key + ": '" +
                                     value + "'");
    }
  }
  if (!saw_type) {
    return Status::InvalidArgument("signature missing layer_type");
  }
  return sig;
}

}  // namespace inferturbo
