#ifndef INFERTURBO_GAS_GAS_CONV_H_
#define INFERTURBO_GAS_GAS_CONV_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/gas/message.h"
#include "src/gas/signature.h"
#include "src/tensor/autograd.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// What the Gather stage hands to apply_node after vectorization.
///
/// For pooled aggregates (sum/mean/max/min) only `pooled`/`counts` are
/// populated: one finalized row per local node (zero / count 0 when a
/// node received no messages). For union aggregates (GAT) the raw
/// per-message rows and their destination segment ids are preserved so
/// apply_node can run attention.
struct GatherResult {
  AggKind kind = AggKind::kSum;
  /// (num_nodes × message_dim) finalized pooled values.
  Tensor pooled;
  /// Messages folded per node (0 = isolated node this round).
  std::vector<std::int64_t> counts;
  /// Union path: raw message rows (E × message_dim)...
  Tensor messages;
  /// ...and each row's local destination index in [0, num_nodes).
  std::vector<std::int64_t> dst_index;
};

/// One GNN layer expressed in the paper's five-stage GAS-like
/// abstraction (§IV-B). The two *data-flow* stages (gather_nbrs,
/// scatter_nbrs) are built into the engines; subclasses override only
/// the three *computation-flow* stages:
///
///   aggregate   — implied by signature().agg_kind, executed by the
///                 engine (receiver-side, or sender-side under
///                 partial-gather when the kind is a lawful monoid);
///   apply_node  — ApplyNode(): new node state from the previous state
///                 and the gathered result;
///   apply_edge  — ComputeMessage() (the per-node part identical across
///                 out-edges) plus ApplyEdge() (the per-edge merge with
///                 edge features, identity by default).
///
/// The same object also exposes the training-side computation flow
/// (ForwardAg) over a local subgraph block, sharing the same parameter
/// tensors — this is the unification that lets a model trained
/// mini-batch run full-graph inference unchanged.
class GasConv {
 public:
  virtual ~GasConv() = default;

  virtual const LayerSignature& signature() const = 0;

  // --- inference computation flow (plain tensors) -------------------
  /// The outgoing message content per node: (n × message_dim) from
  /// (n × input_dim) states. Broadcastable layers compute this once per
  /// node regardless of out-degree.
  virtual Tensor ComputeMessage(const Tensor& node_states) const = 0;

  /// Per-edge adjustment of message rows with edge features; default
  /// passes messages through (none of the bundled layers use edge
  /// features, but the hook completes the paper's apply_edge stage).
  virtual Tensor ApplyEdge(const Tensor& messages,
                           const Tensor* edge_features) const;

  /// New node states (n × output_dim) from previous states
  /// (n × input_dim) and the gathered aggregate.
  virtual Tensor ApplyNode(const Tensor& node_states,
                           const GatherResult& gathered) const = 0;

  // --- training computation flow (autograd) -------------------------
  /// Full message passing over a subgraph block: `h` is (num_nodes ×
  /// input_dim); (src_index, dst_index) are local edge endpoints;
  /// `edge_features` (nullable) has one row per edge when the layer's
  /// signature declares uses_edge_features. Returns (num_nodes ×
  /// output_dim). Gradients flow into the same parameters inference
  /// reads.
  virtual ag::VarPtr ForwardAg(const ag::VarPtr& h,
                               std::span<const std::int64_t> src_index,
                               std::span<const std::int64_t> dst_index,
                               std::int64_t num_nodes,
                               const Tensor* edge_features) const = 0;

  /// The layer's trainable parameters (shared with inference).
  virtual std::vector<ag::VarPtr> Parameters() const = 0;
};

/// Engine-side helper implementing the receiver half of Gather: folds a
/// vectorized message batch (with local destination indices) into a
/// GatherResult per `kind`. Rows whose last column is a partial count
/// (is_partial = true) are merged exactly.
GatherResult GatherIntoResult(AggKind kind, const Tensor& messages,
                              std::span<const std::int64_t> dst_index,
                              std::int64_t num_nodes, bool is_partial);

}  // namespace inferturbo

#endif  // INFERTURBO_GAS_GAS_CONV_H_
