#ifndef INFERTURBO_GAS_SIGNATURE_H_
#define INFERTURBO_GAS_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace inferturbo {

/// The reduce semantics of a layer's `aggregate` stage.
///
/// The paper's rule (§IV-B): computation placed in `aggregate` must be
/// commutative and associative — sum/mean/max/min pooling or union.
/// Anything else (GAT's attention) must move to `apply_node`, with the
/// aggregate reduced to a plain union of messages.
enum class AggKind {
  kSum,
  kMean,
  kMax,
  kMin,
  kUnion,
};

std::string_view AggKindToString(AggKind kind);
Result<AggKind> AggKindFromString(std::string_view s);

/// True when sender-side partial aggregation shrinks the message volume
/// (the partial-gather strategy's payoff). Union is associative too,
/// but combining unions does not reduce bytes, so partial-gather is a
/// no-op for it.
inline bool PartialGatherReduces(AggKind kind) {
  return kind != AggKind::kUnion;
}

/// The layer-wise "signature file" the paper records beside a trained
/// model: everything the inference runtime must know to re-deploy the
/// layer's computation flow into the GAS stages without manual
/// configuration (§IV-B, annotation technique).
struct LayerSignature {
  std::string layer_type;  ///< e.g. "sage", "gat", "gcn"
  AggKind agg_kind = AggKind::kSum;
  /// Dimensionality of node state entering the layer.
  std::int64_t input_dim = 0;
  /// Dimensionality of node state leaving the layer.
  std::int64_t output_dim = 0;
  /// Width of a scatter message row.
  std::int64_t message_dim = 0;
  /// Whether the @Gather(partial=...) annotation enables sender-side
  /// aggregation for this layer.
  bool partial_gather = false;
  /// Whether one node's messages are identical across its out-edges
  /// (the broadcast strategy's precondition). False whenever
  /// apply_edge mixes in per-edge state.
  bool broadcastable_messages = true;
  /// Whether apply_edge consumes edge features (message_dim then
  /// exceeds the per-node message width by the edge feature dim).
  bool uses_edge_features = false;

  /// One-line text form, parseable by Parse().
  std::string Serialize() const;
  static Result<LayerSignature> Parse(const std::string& line);

  friend bool operator==(const LayerSignature& a,
                         const LayerSignature& b) = default;
};

}  // namespace inferturbo

#endif  // INFERTURBO_GAS_SIGNATURE_H_
