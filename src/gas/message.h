#ifndef INFERTURBO_GAS_MESSAGE_H_
#define INFERTURBO_GAS_MESSAGE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/byte_size.h"
#include "src/gas/signature.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// Vectorized messages: the struct-of-arrays form the paper's
/// gather_nbrs produces — destination ids, source ids, and a payload
/// row per message. This is the unit moved between workers by both
/// backends, and the unit combiners operate on.
struct MessageBatch {
  std::vector<NodeId> dst;
  std::vector<NodeId> src;
  /// (dst.size() × payload_dim); when the batch holds partial
  /// aggregates the last column is the folded message count.
  Tensor payload;

  std::int64_t size() const { return static_cast<std::int64_t>(dst.size()); }
  bool empty() const { return dst.empty(); }

  /// Simulated wire bytes of the whole batch (header per message plus
  /// payload rows).
  std::uint64_t WireBytes() const {
    if (empty()) return 0;
    // A zero-width payload is an identifier-only reference (broadcast
    // strategy): the source id in the header is the lookup key.
    const std::size_t per_message =
        payload.cols() == 0
            ? IdOnlyMessageBytes()
            : MessageBytes(static_cast<std::size_t>(payload.cols()));
    return static_cast<std::uint64_t>(dst.size()) * per_message;
  }

  /// Appends all messages of `other` (payload widths must match unless
  /// one side is empty). O(size + other.size); for merging many
  /// batches use Merge, which allocates once.
  void Append(const MessageBatch& other);
  /// Appends a single message row of `width` floats. Amortized O(width)
  /// per call — the payload grows geometrically underneath, so
  /// incremental builders cost the same as sizing up front.
  void Push(NodeId dst_id, NodeId src_id, const float* row,
            std::int64_t width);

  /// Pre-reserves ids and payload storage for `n` messages of `width`.
  void Reserve(std::size_t n, std::int64_t width);

  /// Concatenates `batches` with a single allocation.
  static MessageBatch Merge(std::span<const MessageBatch> batches);
};

/// Buckets `batch`'s rows by the worker owning each `dst` id. Slot w of
/// the result holds all of w's rows in their original relative order
/// (the deterministic-routing contract both engines rely on); workers
/// receiving nothing get an empty batch. Low-copy: owners are computed
/// in one counting pass, each slice's payload is allocated exactly
/// once, contiguous same-owner runs move with one block memcpy, and a
/// batch whose rows all land on one worker is std::moved through
/// untouched.
std::vector<MessageBatch> SplitByWorker(MessageBatch batch,
                                        const HashPartitioner& partitioner,
                                        std::int64_t num_workers);

/// Accumulates pooled (sum/mean/max/min) aggregates keyed by
/// destination node, supporting both receiver-side gather and
/// sender-side combining (partial-gather). Mean is carried as
/// (sum, count) so partial combines stay exact — the commutative/
/// associative contract the paper's aggregate stage requires.
class PooledAccumulator {
 public:
  PooledAccumulator(AggKind kind, std::int64_t width);

  PooledAccumulator(const PooledAccumulator&) = delete;
  PooledAccumulator& operator=(const PooledAccumulator&) = delete;
  PooledAccumulator(PooledAccumulator&&) = default;
  PooledAccumulator& operator=(PooledAccumulator&&) = default;

  /// Clears all accumulated state and rebinds the aggregate kind and
  /// row width, keeping every allocation (rows, index, scratch tables)
  /// for reuse. Engines hold one accumulator per worker across
  /// supersteps and Reset it per destination partition instead of
  /// constructing a fresh one in the hot loop.
  void Reset(AggKind kind, std::int64_t width);

  /// Folds one message row for `dst` (count 1).
  void Add(NodeId dst, const float* row);
  /// Folds a partial aggregate row for `dst` carrying `count` original
  /// messages.
  void AddPartial(NodeId dst, const float* row, std::int64_t count);
  /// Folds a whole batch in row order — bit-identical to calling Add
  /// (or AddPartial, when `partial` and the payload carries a trailing
  /// count column) per row, including first-seen destination order.
  /// When the batch's destination id range is modest relative to its
  /// size (the power-law common case) slot resolution runs through a
  /// dense scratch table — one array load per row, a hash probe only on
  /// first sight of each destination — and the value fold runs through
  /// the dispatched SIMD row kernels instead of a scalar loop per
  /// message.
  void AddBatch(const MessageBatch& batch, bool partial);

  /// Emits one message per destination: payload = aggregate row with
  /// the count appended as a final column so downstream merges stay
  /// exact. `src` on every message is `from` (the combining worker).
  MessageBatch ToPartialBatch(NodeId from) const;

  /// Finalized values (divided by count for mean), with destinations
  /// and counts aligned to rows, in first-seen order.
  struct Finalized {
    std::vector<NodeId> dst;
    std::vector<std::int64_t> counts;
    Tensor values;
  };
  Finalized Finalize() const;

  std::int64_t width() const { return width_; }
  bool empty() const { return dst_order_.empty(); }
  std::int64_t num_destinations() const {
    return static_cast<std::int64_t>(dst_order_.size());
  }

 private:
  /// Slot of `dst` in rows_/dst_order_/counts_, inserting (and
  /// extending storage by one initialized row) on first sight.
  std::int64_t SlotFor(NodeId dst);
  float* RowFor(NodeId dst, std::int64_t count_delta);

  AggKind kind_;
  std::int64_t width_;
  /// Aggregate rows in first-seen order, width_ floats each.
  std::vector<float> rows_;
  std::vector<NodeId> dst_order_;
  std::vector<std::int64_t> counts_;
  std::unordered_map<NodeId, std::int64_t> index_;
  /// AddBatch scratch: dst id -> slot (-1 unseen this call), kept as a
  /// member so repeated batches reuse the allocation.
  std::vector<std::int32_t> dense_slots_;
  /// AddBatch scratch: per-row resolved slots, handed to the batch fold
  /// kernel so the payload stream is read exactly once.
  std::vector<std::int32_t> slot_scratch_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_GAS_MESSAGE_H_
