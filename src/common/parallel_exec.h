#ifndef INFERTURBO_COMMON_PARALLEL_EXEC_H_
#define INFERTURBO_COMMON_PARALLEL_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace inferturbo {

/// Per-worker context handed to every task of a StaticExecutor launch.
/// The slot outlives individual launches, so `scratch` is the place for
/// buffers a kernel wants to reuse run after run on the same core
/// (packed matmul panels, combiner staging): the allocation — and on a
/// pinned worker the cache footprint — stays thread-local across
/// supersteps instead of being reallocated per kernel call.
struct WorkerSlot {
  int thread_id = 0;   ///< 0 is the calling thread; workers are 1..T-1.
  int cpu = -1;        ///< Pinned CPU, or -1 when unpinned.
  int numa_node = 0;   ///< NUMA node of `cpu` (best effort; 0 elsewhere).
  std::vector<float> scratch;
};

/// A bulk-synchronous executor with persistent workers and static task
/// ownership: launch `tasks` numbered tasks and task t always runs on
/// thread t mod T (the caller participates as thread 0). There is no
/// work queue and no per-task std::function allocation — a launch
/// publishes one job descriptor, bumps an epoch the workers spin on,
/// and the fixed task→thread map does the rest. Workers spin briefly
/// (kernel launches in a superstep arrive back to back) and then park
/// on a condition variable, so an idle executor costs nothing.
///
/// Determinism contract: which thread runs task t never affects what
/// task t computes — callers derive all ownership from (t, tasks)
/// alone. The executor adds no scheduling freedom to observe.
///
/// Workers are pinned to cores (and labelled with their NUMA node) on
/// Linux when the machine has enough CPUs; set INFERTURBO_NO_PIN to
/// disable. INFERTURBO_EXEC_THREADS overrides the Default() size.
class StaticExecutor {
 public:
  /// Spawns `num_threads - 1` persistent workers (the calling thread is
  /// the remaining one). `num_threads < 1` is clamped to 1.
  explicit StaticExecutor(int num_threads);
  ~StaticExecutor();

  StaticExecutor(const StaticExecutor&) = delete;
  StaticExecutor& operator=(const StaticExecutor&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(slot, t)` for every task t in [0, tasks), task t on
  /// thread t mod num_threads(), and returns when all have finished.
  /// Nested launches (from inside a task) run inline on the caller.
  /// Launches from distinct threads serialize on an internal mutex.
  template <typename Fn>
  void RunTasks(int tasks, Fn&& fn) {
    RunTasksRaw(
        tasks,
        [](void* ctx, WorkerSlot& slot, int task) {
          (*static_cast<std::remove_reference_t<Fn>*>(ctx))(slot, task);
        },
        &fn);
  }

  /// True on a StaticExecutor worker thread (any executor). The serial
  /// guard for layered parallelism: a kernel invoked from inside a task
  /// must not launch again.
  static bool InWorker();

  /// The process-wide executor, sized to the hardware concurrency (or
  /// INFERTURBO_EXEC_THREADS). Constructed on first use, never torn
  /// down — workers park when idle.
  static StaticExecutor& Default();

  /// A per-thread slot for code paths that run serially (no launch):
  /// same WorkerSlot shape, so kernels use one scratch protocol
  /// everywhere. Each OS thread gets its own, making serial fallbacks
  /// inside pool workers race-free.
  static WorkerSlot& SerialSlot();

 private:
  // The launch payload: one descriptor per launch, published before the
  // epoch bump that releases it to the workers.
  struct Job {
    void (*fn)(void*, WorkerSlot&, int) = nullptr;
    void* ctx = nullptr;
    int tasks = 0;
  };

  void RunTasksRaw(int tasks, void (*fn)(void*, WorkerSlot&, int), void* ctx);
  void WorkerLoop(int thread_id);
  void RunOwnedTasks(const Job& job, int thread_id);

  const int num_threads_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;

  // Launch protocol: job_ is written by the (single, run_mu_-holding)
  // caller, then epoch_ is bumped with release semantics; workers
  // acquire the epoch and read job_ data-race-free. Completion runs the
  // other way: each worker acq_rel-decrements pending_ after its tasks
  // (every worker acknowledges every epoch, even with nothing to run,
  // so job_ can never be overwritten under a straggler), and the caller
  // acquires pending_ == 0.
  Job job_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> pending_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;  // guards num_parked_, pairs with cv_
  std::condition_variable cv_;
  int num_parked_ = 0;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::mutex run_mu_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_PARALLEL_EXEC_H_
