#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <utility>

namespace inferturbo {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so concurrent workers do not interleave, and
// guards the sink pointer.
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();  // empty == default stderr
  return *sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

/// Small dense per-thread id (main thread gets 0) — far more readable
/// in interleaved output than the opaque pthread handle.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "HH:MM:SS.mmm" wall-clock timestamp, local time.
void FormatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  std::snprintf(buf, size, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
}

void EmitLine(LogLevel level, const std::string& line, bool also_stderr) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = SinkSlot();
  if (sink) {
    sink(level, line);
    if (!also_stderr) return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    char ts[16];
    FormatTimestamp(ts, sizeof(ts));
    stream_ << "[" << LevelTag(level_) << " " << ts << " t" << ThreadId()
            << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  EmitLine(level_, stream_.str(), /*also_stderr=*/false);
}

FatalMessage::FatalMessage(const char* file, int line) {
  char ts[16];
  FormatTimestamp(ts, sizeof(ts));
  stream_ << "[FATAL " << ts << " t" << ThreadId() << " " << file << ":"
          << line << "] ";
}

FatalMessage::~FatalMessage() {
  EmitLine(LogLevel::kError, stream_.str(), /*also_stderr=*/true);
  std::abort();
}

}  // namespace internal_logging
}  // namespace inferturbo
