#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace inferturbo {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so concurrent workers do not interleave.
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace inferturbo
