#include "src/common/io_fault.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/logging.h"

namespace inferturbo {

std::string_view IoFaultKindToString(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone:
      return "None";
    case IoFaultKind::kWriteFail:
      return "WriteFail";
    case IoFaultKind::kNoSpace:
      return "NoSpace";
    case IoFaultKind::kShortRead:
      return "ShortRead";
    case IoFaultKind::kBitFlip:
      return "BitFlip";
  }
  return "Unknown";
}

void ScriptedIoFaultInjector::Arm(IoOp op, std::string path_substring,
                                  IoFaultKind kind, std::int64_t times) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({op, std::move(path_substring), kind, times});
}

IoFaultKind ScriptedIoFaultInjector::Tick(IoOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& rule : rules_) {
    if (rule.op != op || rule.remaining == 0) continue;
    if (path.find(rule.substring) == std::string::npos) continue;
    if (rule.remaining > 0) --rule.remaining;
    ++fired_;
    return rule.kind;
  }
  return IoFaultKind::kNone;
}

std::int64_t ScriptedIoFaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::string IoFaultEventToString(const IoFaultEvent& event) {
  std::string out = event.op == IoOp::kWrite ? "write" : "read";
  out += ":";
  out += event.path;
  out += ":";
  out += IoFaultKindToString(event.kind);
  return out;
}

RandomIoFaultInjector::RandomIoFaultInjector(std::uint64_t seed,
                                             Profile profile)
    : seed_(seed), profile_(profile), rng_(seed) {}

IoFaultKind RandomIoFaultInjector::Tick(IoOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (profile_.max_faults >= 0 && fired_ >= profile_.max_faults) {
    return IoFaultKind::kNone;
  }
  // Always consume exactly two draws per tick so the PRNG stream stays
  // aligned with the tick count regardless of which branch fires.
  const double roll = rng_.NextDouble();
  const double pick = rng_.NextDouble();
  if (roll >= profile_.fault_probability) return IoFaultKind::kNone;

  const double w_write_fail = std::max(0.0, profile_.write_fail_weight);
  const double w_no_space = std::max(0.0, profile_.no_space_weight);
  const double w_short_read = std::max(0.0, profile_.short_read_weight);
  const double w_bit_flip = std::max(0.0, profile_.bit_flip_weight);
  const double total = w_write_fail + w_no_space + w_short_read + w_bit_flip;
  if (total <= 0.0) return IoFaultKind::kNone;

  IoFaultKind kind = IoFaultKind::kBitFlip;
  double cut = pick * total;
  if (cut < w_write_fail) {
    kind = IoFaultKind::kWriteFail;
  } else if (cut < w_write_fail + w_no_space) {
    kind = IoFaultKind::kNoSpace;
  } else if (cut < w_write_fail + w_no_space + w_short_read) {
    kind = IoFaultKind::kShortRead;
  }
  // Write-only kinds make no sense on the read path; degrade them to a
  // short read so the drawn probability mass is preserved.
  if (op == IoOp::kRead &&
      (kind == IoFaultKind::kWriteFail || kind == IoFaultKind::kNoSpace)) {
    kind = IoFaultKind::kShortRead;
  }

  ++fired_;
  schedule_.push_back({op, path, kind});
  if (profile_.log_faults) {
    INFERTURBO_LOG(Info) << "io_fault[seed=" << seed_ << " #" << fired_
                         << "] " << IoFaultEventToString(schedule_.back());
  }
  return kind;
}

std::int64_t RandomIoFaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::vector<IoFaultEvent> RandomIoFaultInjector::realized_schedule() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schedule_;
}

ReplayIoFaultInjector::ReplayIoFaultInjector(
    std::vector<IoFaultEvent> schedule) {
  for (IoFaultEvent& event : schedule) {
    queues_[{static_cast<int>(event.op), std::move(event.path)}].push_back(
        event.kind);
    ++pending_;
  }
}

IoFaultKind ReplayIoFaultInjector::Tick(IoOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find({static_cast<int>(op), path});
  if (it == queues_.end() || it->second.empty()) return IoFaultKind::kNone;
  const IoFaultKind kind = it->second.front();
  it->second.pop_front();
  ++fired_;
  --pending_;
  return kind;
}

std::int64_t ReplayIoFaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::int64_t ReplayIoFaultInjector::faults_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

Status RetryWithBackoff(const IoRetryPolicy& retry,
                        const std::function<Status()>& attempt,
                        std::int64_t* retries_performed) {
  const int attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  double backoff = retry.initial_backoff_seconds;
  Status last = Status::OK();
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff = std::min(backoff * retry.backoff_multiplier,
                         retry.max_backoff_seconds);
      if (retries_performed != nullptr) ++*retries_performed;
    }
    last = attempt();
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace inferturbo
