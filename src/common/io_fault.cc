#include "src/common/io_fault.h"

#include <chrono>
#include <thread>
#include <utility>

namespace inferturbo {

std::string_view IoFaultKindToString(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone:
      return "None";
    case IoFaultKind::kWriteFail:
      return "WriteFail";
    case IoFaultKind::kNoSpace:
      return "NoSpace";
    case IoFaultKind::kShortRead:
      return "ShortRead";
    case IoFaultKind::kBitFlip:
      return "BitFlip";
  }
  return "Unknown";
}

void ScriptedIoFaultInjector::Arm(IoOp op, std::string path_substring,
                                  IoFaultKind kind, std::int64_t times) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({op, std::move(path_substring), kind, times});
}

IoFaultKind ScriptedIoFaultInjector::Tick(IoOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& rule : rules_) {
    if (rule.op != op || rule.remaining == 0) continue;
    if (path.find(rule.substring) == std::string::npos) continue;
    if (rule.remaining > 0) --rule.remaining;
    ++fired_;
    return rule.kind;
  }
  return IoFaultKind::kNone;
}

std::int64_t ScriptedIoFaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status RetryWithBackoff(const IoRetryPolicy& retry,
                        const std::function<Status()>& attempt,
                        std::int64_t* retries_performed) {
  const int attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  double backoff = retry.initial_backoff_seconds;
  Status last = Status::OK();
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff = std::min(backoff * retry.backoff_multiplier,
                         retry.max_backoff_seconds);
      if (retries_performed != nullptr) ++*retries_performed;
    }
    last = attempt();
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace inferturbo
