#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/byte_size.h"

namespace inferturbo {

Result<FlagParser> FlagParser::Parse(int argc, const char* const argv[]) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      return Status::InvalidArgument("expected --flag, got '" + token + "'");
    }
    token = token.substr(2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      parser.values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--key value` form, unless the next token is another flag (then
    // treat as boolean true).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.values_[token] = argv[++i];
    } else {
      parser.values_[token] = "true";
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& key,
                                std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Result<std::uint64_t> FlagParser::GetBytes(const std::string& key,
                                           std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  Result<std::uint64_t> parsed = ParseByteSize(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + key + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace inferturbo
