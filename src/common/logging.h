#ifndef INFERTURBO_COMMON_LOGGING_H_
#define INFERTURBO_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace inferturbo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kInfo. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error" into
/// `*level`. Returns false (leaving `*level` untouched) on anything
/// else — the CLI turns that into a usage error.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// Destination for formatted log lines (`line` has no trailing
/// newline). Invoked under the logging mutex, so sinks need no
/// locking of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the process-wide sink; pass nullptr to restore the default
/// (stderr). Tests install a capturing sink to assert on log output.
/// Fatal messages always go to stderr in addition to the sink, so a
/// crashing process never hides its last words inside a test buffer.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log sink that emits one line to stderr on destruction.
/// Use through the INFERTURBO_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define INFERTURBO_LOG(level)                                  \
  ::inferturbo::internal_logging::LogMessage(                  \
      ::inferturbo::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal invariant check: logs and aborts when `cond` is false. Used for
/// programmer errors (not data errors, which return Status).
#define INFERTURBO_CHECK(cond)                                          \
  if (!(cond))                                                          \
  ::inferturbo::internal_logging::FatalMessage(__FILE__, __LINE__)      \
      << "Check failed: " #cond " "

namespace internal_logging {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_LOGGING_H_
