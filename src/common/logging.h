#ifndef INFERTURBO_COMMON_LOGGING_H_
#define INFERTURBO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace inferturbo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kInfo. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink that emits one line to stderr on destruction.
/// Use through the INFERTURBO_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define INFERTURBO_LOG(level)                                  \
  ::inferturbo::internal_logging::LogMessage(                  \
      ::inferturbo::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal invariant check: logs and aborts when `cond` is false. Used for
/// programmer errors (not data errors, which return Status).
#define INFERTURBO_CHECK(cond)                                          \
  if (!(cond))                                                          \
  ::inferturbo::internal_logging::FatalMessage(__FILE__, __LINE__)      \
      << "Check failed: " #cond " "

namespace internal_logging {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_LOGGING_H_
