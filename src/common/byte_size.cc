#include "src/common/byte_size.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace inferturbo {

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

Result<std::uint64_t> ParseByteSize(std::string_view text) {
  const auto fail = [&text]() {
    return Status::InvalidArgument("cannot parse byte size '" +
                                   std::string(text) + "'");
  };
  // Trim surrounding whitespace.
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  const std::string trimmed(text.substr(begin, end - begin));
  if (trimmed.empty()) return fail();

  char* number_end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &number_end);
  if (number_end == trimmed.c_str()) return fail();
  if (!std::isfinite(value) || value < 0.0) return fail();

  std::string unit(number_end);
  std::size_t unit_begin = 0;
  while (unit_begin < unit.size() &&
         std::isspace(static_cast<unsigned char>(unit[unit_begin])))
    ++unit_begin;
  unit = unit.substr(unit_begin);
  for (char& c : unit) c = static_cast<char>(std::tolower(
                           static_cast<unsigned char>(c)));

  double multiplier = 1.0;
  if (!unit.empty() && unit != "b") {
    // One prefix letter, then optionally "b" or "ib" ("m", "mb", "mib").
    static constexpr std::array<std::pair<char, double>, 4> kPrefixes = {
        {{'k', 1024.0},
         {'m', 1024.0 * 1024.0},
         {'g', 1024.0 * 1024.0 * 1024.0},
         {'t', 1024.0 * 1024.0 * 1024.0 * 1024.0}}};
    bool matched = false;
    for (const auto& [prefix, factor] : kPrefixes) {
      if (unit[0] != prefix) continue;
      const std::string rest = unit.substr(1);
      if (rest.empty() || rest == "b" || rest == "ib") {
        multiplier = factor;
        matched = true;
      }
      break;
    }
    if (!matched) return fail();
  }

  const double bytes = value * multiplier;
  // 2^64 rounded to double; anything at or past it overflows u64.
  if (bytes >= 18446744073709551616.0) return fail();
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace inferturbo
