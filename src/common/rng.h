#ifndef INFERTURBO_COMMON_RNG_H_
#define INFERTURBO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace inferturbo {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library (graph generation, weight
/// init, neighbor sampling) takes an explicit seed, because reproducible
/// predictions are one of the paper's headline claims — the only allowed
/// nondeterminism is the one we *measure* (Fig. 7's sampling churn),
/// and there it is driven by explicit per-run seeds.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Standard normal via Box–Muller (one value per call; the spare is
  /// cached).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi_u2 = 6.283185307179586 * u2;
    spare_ = mag * std::sin(two_pi_u2);
    has_spare_ = true;
    return mag * std::cos(two_pi_u2);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_RNG_H_
