#ifndef INFERTURBO_COMMON_CRC32_H_
#define INFERTURBO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace inferturbo {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `size` bytes.
/// Chainable: pass a previous value as `seed` to extend a running
/// checksum. This is the integrity check stamped on every byte the
/// system persists — checkpoint files, shuffle spill blocks, and
/// output shards — so torn writes and bit rot are detected on read
/// instead of silently corrupting results.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_CRC32_H_
