#ifndef INFERTURBO_COMMON_BINARY_IO_H_
#define INFERTURBO_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace inferturbo {

/// Append-only little-endian byte-buffer writer used by everything the
/// system persists (checkpoints, spill blocks). Floats are written as
/// raw IEEE bytes, so round trips are bit-exact — the property the
/// cross-process exactness contract rests on.
class BinaryWriter {
 public:
  void PutBytes(const void* data, std::size_t size) {
    if (size == 0) return;  // empty vectors hand over a null data()
    buffer_.append(static_cast<const char*>(data), size);
  }
  template <typename T>
  void PutScalar(T value) {
    PutBytes(&value, sizeof(T));
  }
  void PutU32(std::uint32_t v) { PutScalar(v); }
  void PutU64(std::uint64_t v) { PutScalar(v); }
  void PutI32(std::int32_t v) { PutScalar(v); }
  void PutI64(std::int64_t v) { PutScalar(v); }
  void PutFloat(float v) { PutScalar(v); }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutBytes(s.data(), s.size());
  }
  void PutFloats(const std::vector<float>& v) {
    PutU64(v.size());
    PutBytes(v.data(), v.size() * sizeof(float));
  }
  void PutI64s(const std::vector<std::int64_t>& v) {
    PutU64(v.size());
    PutBytes(v.data(), v.size() * sizeof(std::int64_t));
  }

  std::size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer. Every getter returns
/// a descriptive IoError Status on underflow instead of reading past
/// the end — short reads and truncated files become recoverable errors,
/// never undefined behavior. Length prefixes are validated against the
/// remaining bytes before any allocation, so a corrupted count cannot
/// trigger an absurd allocation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status GetBytes(void* out, std::size_t size) {
    if (remaining() < size) {
      return Status::IoError("short read: need " + std::to_string(size) +
                             " bytes, have " + std::to_string(remaining()));
    }
    if (size == 0) return Status::OK();  // `out` may be an empty data()
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }
  template <typename T>
  Status GetScalar(T* out) {
    return GetBytes(out, sizeof(T));
  }
  Status GetU32(std::uint32_t* out) { return GetScalar(out); }
  Status GetU64(std::uint64_t* out) { return GetScalar(out); }
  Status GetI32(std::int32_t* out) { return GetScalar(out); }
  Status GetI64(std::int64_t* out) { return GetScalar(out); }
  Status GetFloat(float* out) { return GetScalar(out); }

  Status GetString(std::string* out);
  Status GetFloats(std::vector<float>* out);
  Status GetI64s(std::vector<std::int64_t>* out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

 private:
  /// Validates a length prefix claiming `count` elements of
  /// `element_size` bytes against the remaining buffer.
  Status CheckCount(std::uint64_t count, std::size_t element_size) {
    if (count > remaining() / (element_size == 0 ? 1 : element_size)) {
      return Status::IoError("corrupt length prefix: " +
                             std::to_string(count) + " elements exceed " +
                             std::to_string(remaining()) +
                             " remaining bytes");
    }
    return Status::OK();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_BINARY_IO_H_
