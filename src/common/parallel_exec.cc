#include "src/common/parallel_exec.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace inferturbo {
namespace {

thread_local bool t_executor_worker = false;
thread_local bool t_in_launch = false;

// How long a thread spins before parking (workers waiting for the next
// epoch, the caller waiting for completion). Kernel launches inside a
// superstep arrive back to back, so a short spin usually catches the
// next one without a futex round trip; past the yield phase the thread
// parks so an idle executor — or one oversubscribed on a small machine
// — costs nothing.
constexpr int kSpinIters = 1024;
constexpr int kYieldIters = 64;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#endif
}

int DetectNumCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Parses a sysfs cpulist ("0-3,8,10-11") into cpu ids.
void ParseCpuList(const std::string& list, int node, std::vector<int>* map) {
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const std::size_t dash = token.find('-');
    const int lo = std::atoi(token.c_str());
    const int hi = dash == std::string::npos
                       ? lo
                       : std::atoi(token.c_str() + dash + 1);
    for (int cpu = lo; cpu <= hi; ++cpu) {
      if (cpu >= 0 && cpu < static_cast<int>(map->size())) {
        (*map)[static_cast<std::size_t>(cpu)] = node;
      }
    }
  }
}

// cpu -> NUMA node, best effort from sysfs; all zeros when the topology
// is unreadable (non-Linux, containers without /sys).
std::vector<int> CpuNodeMap(int num_cpus) {
  std::vector<int> map(static_cast<std::size_t>(num_cpus), 0);
  for (int node = 0; node < 64; ++node) {
    std::ostringstream path;
    path << "/sys/devices/system/node/node" << node << "/cpulist";
    std::ifstream in(path.str());
    if (!in) {
      if (node == 0) continue;  // node0 can be absent on odd topologies
      break;
    }
    std::string list;
    std::getline(in, list);
    ParseCpuList(list, node, &map);
  }
  return map;
}

void PinCurrentThread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: a denied affinity call (restricted cpuset) just leaves
  // the thread floating.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

bool StaticExecutor::InWorker() { return t_executor_worker; }

WorkerSlot& StaticExecutor::SerialSlot() {
  static thread_local WorkerSlot slot;
  return slot;
}

StaticExecutor::StaticExecutor(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  const int num_cpus = DetectNumCpus();
  const bool pin = num_cpus > 1 && num_threads_ <= num_cpus &&
                   std::getenv("INFERTURBO_NO_PIN") == nullptr;
  const std::vector<int> cpu_node = CpuNodeMap(num_cpus);
  slots_.resize(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    WorkerSlot& slot = slots_[static_cast<std::size_t>(t)];
    slot.thread_id = t;
    // The caller (slot 0) is never pinned — it may be an application
    // main thread with its own affinity ideas.
    slot.cpu = (pin && t > 0) ? t % num_cpus : -1;
    slot.numa_node =
        slot.cpu >= 0 ? cpu_node[static_cast<std::size_t>(slot.cpu)] : 0;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

StaticExecutor::~StaticExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void StaticExecutor::RunOwnedTasks(const Job& job, int thread_id) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(thread_id)];
  for (int t = thread_id; t < job.tasks; t += num_threads_) {
    job.fn(job.ctx, slot, t);
  }
}

void StaticExecutor::WorkerLoop(int thread_id) {
  t_executor_worker = true;
  {
    const WorkerSlot& slot = slots_[static_cast<std::size_t>(thread_id)];
    if (slot.cpu >= 0) PinCurrentThread(slot.cpu);
  }
  std::uint64_t seen = 0;
  for (;;) {
    // Spin, then yield, then park until the epoch moves.
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e == seen && !shutdown_.load(std::memory_order_acquire)) {
      ++spins;
      if (spins <= kSpinIters) {
        CpuRelax();
      } else if (spins <= kSpinIters + kYieldIters) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        ++num_parked_;
        cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 shutdown_.load(std::memory_order_acquire);
        });
        --num_parked_;
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = e;
    const Job job = job_;  // safe: published before the epoch bump
    RunOwnedTasks(job, thread_id);
    // Every worker acknowledges the epoch (tasks or not) so the caller
    // knows job_ is dead before the next launch reuses it.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_one();
    }
  }
}

void StaticExecutor::RunTasksRaw(int tasks,
                                 void (*fn)(void*, WorkerSlot&, int),
                                 void* ctx) {
  if (tasks <= 0) return;
  if (tasks == 1 || num_threads_ == 1 || t_executor_worker || t_in_launch) {
    // Serial / nested: run every task inline on this thread. Nested
    // launches must not touch the barrier (a worker waiting on itself
    // deadlocks), and SerialSlot keeps the scratch per OS thread so
    // concurrent serial callers (e.g. pool workers) never share.
    WorkerSlot& slot = SerialSlot();
    for (int t = 0; t < tasks; ++t) fn(ctx, slot, t);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  t_in_launch = true;
  job_ = Job{fn, ctx, tasks};
  pending_.store(num_threads_ - 1, std::memory_order_relaxed);
  {
    // The epoch bump happens under mu_ so a worker between its
    // predicate check and its park cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.fetch_add(1, std::memory_order_release);
    if (num_parked_ > 0) cv_.notify_all();
  }
  RunOwnedTasks(job_, /*thread_id=*/0);
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    ++spins;
    if (spins <= kSpinIters) {
      CpuRelax();
    } else if (spins <= kSpinIters + kYieldIters) {
      std::this_thread::yield();
    } else {
      std::unique_lock<std::mutex> lock(done_mu_);
      done_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      break;
    }
  }
  t_in_launch = false;
}

StaticExecutor& StaticExecutor::Default() {
  static StaticExecutor* exec = [] {
    int threads = DetectNumCpus();
    if (const char* env = std::getenv("INFERTURBO_EXEC_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) threads = parsed;
    }
    return new StaticExecutor(threads);
  }();
  return *exec;
}

}  // namespace inferturbo
