#ifndef INFERTURBO_COMMON_STATUS_H_
#define INFERTURBO_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace inferturbo {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: operations on hot paths report failure via
/// Status instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kOutOfMemory,   ///< A simulated or real memory budget was exceeded.
  kIoError,
  kInternal,
  kNotImplemented,
  kAborted,
  kDeadlineExceeded,  ///< An attempt overran its per-attempt deadline.
  kUnavailable,       ///< Transient failure; the operation may be retried.
};

/// Returns a stable human-readable name for `code` (e.g. "OutOfMemory").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// The OK state allocates nothing. Construct errors through the static
/// factories: `Status::InvalidArgument("bad dim")`.
class Status {
 public:
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define INFERTURBO_RETURN_NOT_OK(expr)             \
  do {                                             \
    ::inferturbo::Status _s = (expr);              \
    if (!_s.ok()) return _s;                       \
  } while (0)

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_STATUS_H_
