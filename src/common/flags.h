#ifndef INFERTURBO_COMMON_FLAGS_H_
#define INFERTURBO_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace inferturbo {

/// A minimal `--key=value` / `--key value` command-line parser for the
/// example binaries and tools. No registry, no globals: parse argv,
/// then pull typed values with defaults.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed input
  /// (non-flag tokens, dangling `--key` without value).
  static Result<FlagParser> Parse(int argc, const char* const argv[]);

  bool Has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Human-readable byte count ("512MB", "4GiB", "1048576"; see
  /// ParseByteSize). Unlike the lenient getters above a malformed value
  /// is an InvalidArgument error, not a silent fallback — byte budgets
  /// misread as 0 would quietly disable the limit they configure.
  Result<std::uint64_t> GetBytes(const std::string& key,
                                 std::uint64_t fallback) const;

  /// Keys seen on the command line, for unknown-flag validation.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_FLAGS_H_
