#ifndef INFERTURBO_COMMON_RESULT_H_
#define INFERTURBO_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace inferturbo {

/// A value-or-error type: either holds a `T` or a non-OK Status.
///
/// Usage:
///   Result<Graph> r = GraphBuilder::Finish();
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from a value (the common success path).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (the common failure path).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// OK status when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> rep_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. Usable only in functions returning Status.
#define INFERTURBO_ASSIGN_OR_RETURN(lhs, rexpr)       \
  INFERTURBO_ASSIGN_OR_RETURN_IMPL_(                  \
      INFERTURBO_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define INFERTURBO_CONCAT_INNER_(a, b) a##b
#define INFERTURBO_CONCAT_(a, b) INFERTURBO_CONCAT_INNER_(a, b)
#define INFERTURBO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                      \
  if (!tmp.ok()) return tmp.status();                      \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_RESULT_H_
