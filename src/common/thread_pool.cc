#include "src/common/thread_pool.h"

#include <atomic>

#include "src/common/logging.h"
#include "src/telemetry/metrics.h"

namespace inferturbo {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

bool ThreadPool::InPoolWorker() { return t_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    INFERTURBO_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
    if (MetricsEnabled()) {
      // Under mu_, so the size read is exact; the gauge's peak records
      // the worst backlog a run ever built up.
      GlobalMetrics().GetGauge("threadpool.queue_depth")->Set(
          static_cast<std::int64_t>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitUrgent(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    INFERTURBO_CHECK(!shutdown_) << "SubmitUrgent after shutdown";
    queue_.push_front(std::move(task));
    ++in_flight_;
    if (MetricsEnabled()) {
      GlobalMetrics().GetGauge("threadpool.queue_depth")->Set(
          static_cast<std::int64_t>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (MetricsEnabled()) {
        GlobalMetrics().GetGauge("threadpool.queue_depth")->Set(
            static_cast<std::int64_t>(queue_.size()));
        GlobalMetrics().GetCounter("threadpool.tasks_executed")->Increment();
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Block-partition the index space; one task per worker keeps queue
  // overhead negligible for large n.
  const std::size_t num_blocks = std::min(n, threads_.size());
  std::atomic<std::size_t> next{0};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    Submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelForRanges(
    std::size_t n, std::size_t max_tasks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t tasks = std::max<std::size_t>(1, std::min(n, max_tasks));
  if (tasks == 1) {
    fn(0, n);
    return;
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t begin = n * t / tasks;
    const std::size_t end = n * (t + 1) / tasks;
    if (begin < end) {
      Submit([&fn, begin, end] { fn(begin, end); });
    }
  }
  Wait();
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace inferturbo
