#ifndef INFERTURBO_COMMON_THREAD_POOL_H_
#define INFERTURBO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace inferturbo {

/// A fixed-size work-queue thread pool.
///
/// Both distributed-engine simulations (Pregel workers, MapReduce
/// mappers/reducers) schedule their logical instances onto this pool, so
/// "1000 instances" can run on an N-core machine while per-instance cost
/// is still accounted individually.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Must not be called after Shutdown.
  void Submit(std::function<void()> task);

  /// Enqueues `task` at the front of the queue. Retry and speculative
  /// backup attempts use this so recovery work is not stuck behind a
  /// long backlog of first attempts.
  void SubmitUrgent(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for all.
  /// `fn` must be safe to invoke concurrently.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs `fn(begin, end)` over a fixed contiguous partition of [0, n)
  /// into at most `max_tasks` ranges — one queued task per range, so
  /// the per-index dispatch of ParallelFor (an atomic fetch_add and an
  /// indirect call per element) is paid once per range instead.
  /// Boundaries depend only on (n, task count); each index belongs to
  /// exactly one call.
  void ParallelForRanges(
      std::size_t n, std::size_t max_tasks,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// Nested ParallelFor/Wait from inside a pool task would deadlock
  /// (the task itself counts as in-flight), so layered parallelism —
  /// e.g. a tensor kernel invoked from a Pregel worker — checks this
  /// and runs serially instead.
  static bool InPoolWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// The process-wide default pool, sized to the hardware concurrency.
ThreadPool& DefaultThreadPool();

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_THREAD_POOL_H_
