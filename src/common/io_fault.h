#ifndef INFERTURBO_COMMON_IO_FAULT_H_
#define INFERTURBO_COMMON_IO_FAULT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace inferturbo {

/// The failure modes the persistence layer is hardened against. Every
/// component that touches disk (checkpoint store, MapReduce spill path,
/// output writer) consults an injector before each physical attempt, so
/// tests can script real-world I/O failures deterministically.
enum class IoFaultKind {
  kNone = 0,
  /// The write syscall fails outright; nothing becomes durable. The
  /// attempt surfaces as an IoError Status (retryable).
  kWriteFail,
  /// ENOSPC: the filesystem is full; open/rename fails. Surfaces as an
  /// IoError Status (retryable — space may be reclaimed).
  kNoSpace,
  /// A read returns fewer bytes than the file holds (truncated read or
  /// torn file). On the read path the helper truncates the returned
  /// data; length/checksum validation catches it downstream. On the
  /// write path the file is silently truncated — a torn write.
  kShortRead,
  /// One bit in the payload flips — silent corruption that only a
  /// checksum can catch. The operation itself "succeeds".
  kBitFlip,
};

std::string_view IoFaultKindToString(IoFaultKind kind);

/// Which side of the filesystem an operation is on, for scoping faults.
enum class IoOp { kWrite, kRead };

/// Injection point consulted once per physical I/O attempt. Thread-safe
/// implementations required: engines call this from pool workers.
class IoFaultInjector {
 public:
  virtual ~IoFaultInjector() = default;
  /// Fault to apply to this attempt on `path` (kNone = healthy).
  virtual IoFaultKind Tick(IoOp op, const std::string& path) = 0;
};

/// Scripted injector for tests: arm rules matching a path substring and
/// an op, each firing a bounded number of times (so transient faults
/// stop and retries can succeed) or forever (`times` < 0, persistent).
class ScriptedIoFaultInjector : public IoFaultInjector {
 public:
  void Arm(IoOp op, std::string path_substring, IoFaultKind kind,
           std::int64_t times = 1);
  IoFaultKind Tick(IoOp op, const std::string& path) override;
  /// Total faults injected so far (all rules).
  std::int64_t faults_fired() const;

 private:
  struct Rule {
    IoOp op;
    std::string substring;
    IoFaultKind kind;
    std::int64_t remaining;  // < 0 = unbounded
  };
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::int64_t fired_ = 0;
};

/// Bounded retry with exponential backoff for transient persisted-state
/// faults. Defaults keep test latency negligible while still exercising
/// the backoff arithmetic.
struct IoRetryPolicy {
  int max_attempts = 4;
  double initial_backoff_seconds = 0.0002;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.02;
};

/// Runs `attempt` up to `retry.max_attempts` times, sleeping with
/// exponential backoff between failures. Returns the first OK status,
/// or the last error once attempts are exhausted (a persistent fault).
/// When `retries_performed` is non-null it is incremented once per
/// retried attempt (not the first try) — the counter JobMetrics exposes
/// for the spill path.
Status RetryWithBackoff(const IoRetryPolicy& retry,
                        const std::function<Status()>& attempt,
                        std::int64_t* retries_performed = nullptr);

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_IO_FAULT_H_
