#ifndef INFERTURBO_COMMON_IO_FAULT_H_
#define INFERTURBO_COMMON_IO_FAULT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace inferturbo {

/// The failure modes the persistence layer is hardened against. Every
/// component that touches disk (checkpoint store, MapReduce spill path,
/// output writer) consults an injector before each physical attempt, so
/// tests can script real-world I/O failures deterministically.
enum class IoFaultKind {
  kNone = 0,
  /// The write syscall fails outright; nothing becomes durable. The
  /// attempt surfaces as an IoError Status (retryable).
  kWriteFail,
  /// ENOSPC: the filesystem is full; open/rename fails. Surfaces as an
  /// IoError Status (retryable — space may be reclaimed).
  kNoSpace,
  /// A read returns fewer bytes than the file holds (truncated read or
  /// torn file). On the read path the helper truncates the returned
  /// data; length/checksum validation catches it downstream. On the
  /// write path the file is silently truncated — a torn write.
  kShortRead,
  /// One bit in the payload flips — silent corruption that only a
  /// checksum can catch. The operation itself "succeeds".
  kBitFlip,
};

std::string_view IoFaultKindToString(IoFaultKind kind);

/// Which side of the filesystem an operation is on, for scoping faults.
enum class IoOp { kWrite, kRead };

/// Injection point consulted once per physical I/O attempt. Thread-safe
/// implementations required: engines call this from pool workers.
class IoFaultInjector {
 public:
  virtual ~IoFaultInjector() = default;
  /// Fault to apply to this attempt on `path` (kNone = healthy).
  virtual IoFaultKind Tick(IoOp op, const std::string& path) = 0;
};

/// Scripted injector for tests: arm rules matching a path substring and
/// an op, each firing a bounded number of times (so transient faults
/// stop and retries can succeed) or forever (`times` < 0, persistent).
class ScriptedIoFaultInjector : public IoFaultInjector {
 public:
  void Arm(IoOp op, std::string path_substring, IoFaultKind kind,
           std::int64_t times = 1);
  IoFaultKind Tick(IoOp op, const std::string& path) override;
  /// Total faults injected so far (all rules).
  std::int64_t faults_fired() const;

 private:
  struct Rule {
    IoOp op;
    std::string substring;
    IoFaultKind kind;
    std::int64_t remaining;  // < 0 = unbounded
  };
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::int64_t fired_ = 0;
};

/// One realized fault decision: which op/path it hit and what fired.
/// `kNone` ticks are not recorded — the schedule lists faults only.
struct IoFaultEvent {
  IoOp op;
  std::string path;
  IoFaultKind kind;
};

/// Formats one event as "write:checkpoints/ck_3.bin:BitFlip".
std::string IoFaultEventToString(const IoFaultEvent& event);

/// Seeded probabilistic injector. Each Tick draws from a deterministic
/// PRNG stream (seed given at construction), so a given seed always
/// produces the same fault schedule for the same sequence of Tick
/// calls. Every fired fault is appended to a realized-schedule log
/// (and optionally INFERTURBO_LOG'd), so a failing randomized sweep can
/// be replayed exactly via ReplayIoFaultInjector without re-running the
/// probabilistic draw — even from a different Tick interleaving.
class RandomIoFaultInjector : public IoFaultInjector {
 public:
  struct Profile {
    /// Probability that a given attempt faults at all.
    double fault_probability = 0.05;
    /// Relative weights among fault kinds once an attempt faults.
    /// Read-side draws that land on a write-only kind degrade to
    /// kShortRead; write-side draws landing on kShortRead stay (torn
    /// write).
    double write_fail_weight = 1.0;
    double no_space_weight = 1.0;
    double short_read_weight = 1.0;
    double bit_flip_weight = 1.0;
    /// Hard cap on total faults fired (< 0 = unbounded). Keeps
    /// randomized sweeps within retry budgets.
    std::int64_t max_faults = -1;
    /// Log every realized fault at Info level as it fires.
    bool log_faults = true;
  };

  RandomIoFaultInjector(std::uint64_t seed, Profile profile);
  IoFaultKind Tick(IoOp op, const std::string& path) override;

  std::uint64_t seed() const { return seed_; }
  std::int64_t faults_fired() const;
  /// The realized schedule: every non-kNone decision, in Tick order.
  std::vector<IoFaultEvent> realized_schedule() const;

 private:
  const std::uint64_t seed_;
  const Profile profile_;
  mutable std::mutex mu_;
  Rng rng_;
  std::int64_t fired_ = 0;
  std::vector<IoFaultEvent> schedule_;
};

/// Replays a realized schedule recorded by RandomIoFaultInjector. Each
/// (op, path) pair keeps a FIFO of the kinds that fired on it; Tick
/// pops the next one (kNone when that queue is exhausted). Keying by
/// (op, path) instead of global tick order makes the replay robust to
/// thread-interleaving differences between the recording run and the
/// replaying run.
class ReplayIoFaultInjector : public IoFaultInjector {
 public:
  explicit ReplayIoFaultInjector(std::vector<IoFaultEvent> schedule);
  IoFaultKind Tick(IoOp op, const std::string& path) override;
  /// Faults replayed so far.
  std::int64_t faults_fired() const;
  /// Events armed but never consumed by a Tick.
  std::int64_t faults_pending() const;

 private:
  mutable std::mutex mu_;
  // (op, path) -> queue of kinds, consumed front-first.
  std::map<std::pair<int, std::string>, std::deque<IoFaultKind>> queues_;
  std::int64_t fired_ = 0;
  std::int64_t pending_ = 0;
};

/// Bounded retry with exponential backoff for transient persisted-state
/// faults. Defaults keep test latency negligible while still exercising
/// the backoff arithmetic.
struct IoRetryPolicy {
  int max_attempts = 4;
  double initial_backoff_seconds = 0.0002;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.02;
};

/// Runs `attempt` up to `retry.max_attempts` times, sleeping with
/// exponential backoff between failures. Returns the first OK status,
/// or the last error once attempts are exhausted (a persistent fault).
/// When `retries_performed` is non-null it is incremented once per
/// retried attempt (not the first try) — the counter JobMetrics exposes
/// for the spill path.
Status RetryWithBackoff(const IoRetryPolicy& retry,
                        const std::function<Status()>& attempt,
                        std::int64_t* retries_performed = nullptr);

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_IO_FAULT_H_
