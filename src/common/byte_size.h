#ifndef INFERTURBO_COMMON_BYTE_SIZE_H_
#define INFERTURBO_COMMON_BYTE_SIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace inferturbo {

/// Serialized-size accounting for the simulated wire format.
///
/// The cluster experiments (Figs. 11–13) report per-instance input and
/// output bytes. The simulated engines never actually serialize — they
/// hand vectors across thread queues — so these helpers define the
/// canonical on-wire cost a real deployment would pay, and the engines
/// charge it to worker counters.

/// Fixed per-message envelope: 8-byte destination id, 8-byte source id,
/// 4-byte payload kind tag, 4-byte payload length.
inline constexpr std::size_t kMessageHeaderBytes = 24;

/// Payload bytes for a dense float32 embedding of `dim` values.
inline constexpr std::size_t EmbeddingBytes(std::size_t dim) {
  return dim * sizeof(float);
}

/// Wire size of one node-to-node message carrying a `dim`-value
/// embedding.
inline constexpr std::size_t MessageBytes(std::size_t dim) {
  return kMessageHeaderBytes + EmbeddingBytes(dim);
}

/// Wire size of an identifier-only message (broadcast strategy sends
/// these along edges instead of embeddings).
inline constexpr std::size_t IdOnlyMessageBytes() {
  return kMessageHeaderBytes + sizeof(std::uint64_t);
}

/// "12.3 MiB"-style rendering for logs and bench output.
std::string FormatBytes(std::uint64_t bytes);

/// Parses a human-readable byte count: a non-negative number followed
/// by an optional unit. Units are binary (1024-based) whether spelled
/// "MB" or "MiB" — operator shorthand, matching du/free conventions —
/// and case-insensitive, with optional whitespace before the unit:
/// "512MB", "4GiB", "1.5 gib", "64 K", and plain "1048576" all parse.
/// Fractional values round down to whole bytes. Returns
/// InvalidArgument on malformed text, negatives, or values that
/// overflow 2^64 - 1 bytes.
Result<std::uint64_t> ParseByteSize(std::string_view text);

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_BYTE_SIZE_H_
