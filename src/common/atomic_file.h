#ifndef INFERTURBO_COMMON_ATOMIC_FILE_H_
#define INFERTURBO_COMMON_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/io_fault.h"
#include "src/common/result.h"

namespace inferturbo {

/// Durably replaces `path` with `data`: the bytes land in a sibling
/// temp file first, are flushed and fsync'd, and the temp file is then
/// renamed over `path` — readers see either the old complete file or
/// the new complete file, never a torn mix. The temp file is removed on
/// any failure.
///
/// `injector` (optional) is consulted once per physical attempt;
/// injected kWriteFail/kNoSpace fail the attempt with IoError, while
/// kBitFlip/kShortRead silently corrupt the written bytes (which is the
/// point: only a checksum on the read side can catch them). Transient
/// faults are retried per `retry` with exponential backoff; a
/// persistent fault surfaces as the last attempt's Status.
/// `retries_performed` (optional) is incremented once per retried
/// attempt so callers can account recovery work (e.g. spill metrics).
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       IoFaultInjector* injector = nullptr,
                       const IoRetryPolicy& retry = IoRetryPolicy(),
                       std::int64_t* retries_performed = nullptr);

/// Reads the whole file into a string. Injected read faults apply:
/// kShortRead truncates the returned data and kBitFlip flips one bit —
/// both are *silent* here and must be caught by the caller's
/// length/checksum validation; kWriteFail/kNoSpace fail the call with
/// IoError. No internal retry: corruption is only detectable after
/// validation, so the retry loop belongs to the validating caller (see
/// RetryWithBackoff).
Result<std::string> ReadFileToString(const std::string& path,
                                     IoFaultInjector* injector = nullptr);

}  // namespace inferturbo

#endif  // INFERTURBO_COMMON_ATOMIC_FILE_H_
