#include "src/common/atomic_file.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace inferturbo {
namespace {

/// Unique-enough temp suffix: concurrent writers (pool workers spilling
/// different blocks) must not collide on the temp name.
std::string TempPathFor(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream out;
  out << path << ".tmp." << counter.fetch_add(1);
  return out.str();
}

/// Applies a silent-corruption fault to `data` in place.
void CorruptInPlace(IoFaultKind kind, std::string* data) {
  if (data->empty()) return;
  if (kind == IoFaultKind::kBitFlip) {
    // Flip one bit in the middle of the payload.
    (*data)[data->size() / 2] ^= 0x10;
  } else if (kind == IoFaultKind::kShortRead) {
    data->resize(data->size() - (data->size() + 1) / 2);
  }
}

Status WriteOnce(const std::string& path, std::string_view data,
                 IoFaultInjector* injector) {
  const IoFaultKind fault =
      injector != nullptr ? injector->Tick(IoOp::kWrite, path)
                          : IoFaultKind::kNone;
  if (fault == IoFaultKind::kWriteFail) {
    return Status::IoError("injected write failure for " + path);
  }
  if (fault == IoFaultKind::kNoSpace) {
    return Status::IoError("no space left on device (injected) for " + path);
  }
  std::string payload(data);
  if (fault == IoFaultKind::kBitFlip || fault == IoFaultKind::kShortRead) {
    // Torn/corrupted write: the bytes land "successfully" but wrong.
    CorruptInPlace(fault, &payload);
  }

  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open temp file " + tmp);
    }
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("write failed for " + tmp);
    }
  }
  // std::ofstream cannot fsync; closing flushes to the OS, and the
  // rename below is the atomicity point. (A production build would
  // fsync the fd and the directory here.)
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed for " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       IoFaultInjector* injector, const IoRetryPolicy& retry,
                       std::int64_t* retries_performed) {
  return RetryWithBackoff(
      retry, [&] { return WriteOnce(path, data, injector); },
      retries_performed);
}

Result<std::string> ReadFileToString(const std::string& path,
                                     IoFaultInjector* injector) {
  const IoFaultKind fault =
      injector != nullptr ? injector->Tick(IoOp::kRead, path)
                          : IoFaultKind::kNone;
  if (fault == IoFaultKind::kWriteFail || fault == IoFaultKind::kNoSpace) {
    return Status::IoError("injected read failure for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  std::string data = std::move(buffer).str();
  if (fault == IoFaultKind::kBitFlip || fault == IoFaultKind::kShortRead) {
    CorruptInPlace(fault, &data);
  }
  return data;
}

}  // namespace inferturbo
