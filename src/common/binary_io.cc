#include "src/common/binary_io.h"

namespace inferturbo {

Status BinaryReader::GetString(std::string* out) {
  std::uint64_t size = 0;
  INFERTURBO_RETURN_NOT_OK(GetU64(&size));
  INFERTURBO_RETURN_NOT_OK(CheckCount(size, 1));
  out->assign(data_.data() + pos_, static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return Status::OK();
}

Status BinaryReader::GetFloats(std::vector<float>* out) {
  std::uint64_t count = 0;
  INFERTURBO_RETURN_NOT_OK(GetU64(&count));
  INFERTURBO_RETURN_NOT_OK(CheckCount(count, sizeof(float)));
  out->resize(static_cast<std::size_t>(count));
  return GetBytes(out->data(), static_cast<std::size_t>(count) *
                                   sizeof(float));
}

Status BinaryReader::GetI64s(std::vector<std::int64_t>* out) {
  std::uint64_t count = 0;
  INFERTURBO_RETURN_NOT_OK(GetU64(&count));
  INFERTURBO_RETURN_NOT_OK(CheckCount(count, sizeof(std::int64_t)));
  out->resize(static_cast<std::size_t>(count));
  return GetBytes(out->data(), static_cast<std::size_t>(count) *
                                   sizeof(std::int64_t));
}

}  // namespace inferturbo
