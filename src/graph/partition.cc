#include "src/graph/partition.h"

namespace inferturbo {

PartitionAssignment AssignPartitions(std::int64_t num_nodes,
                                     const HashPartitioner& partitioner) {
  PartitionAssignment out;
  out.partition_of.resize(static_cast<std::size_t>(num_nodes));
  out.local_index.resize(static_cast<std::size_t>(num_nodes));
  out.members.resize(static_cast<std::size_t>(partitioner.num_partitions()));
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::int64_t p = partitioner.PartitionOf(v);
    out.partition_of[static_cast<std::size_t>(v)] = p;
    out.local_index[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(out.members[static_cast<std::size_t>(p)]
                                      .size());
    out.members[static_cast<std::size_t>(p)].push_back(v);
  }
  return out;
}

}  // namespace inferturbo
