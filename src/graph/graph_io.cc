#include "src/graph/graph_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

/// Stream buffer handed to every table reader/writer. Tables at the
/// paper's scale are hundreds of GB; the default ~8 KB stdio window
/// turns loading into syscall churn.
constexpr std::size_t kStreamBufferBytes = 1 << 20;

/// An ifstream with a 1 MiB buffer installed before open (pubsetbuf is
/// only honored on an unopened stream).
class BufferedLineReader {
 public:
  explicit BufferedLineReader(const std::string& path)
      : buffer_(new char[kStreamBufferBytes]) {
    stream_.rdbuf()->pubsetbuf(buffer_.get(), kStreamBufferBytes);
    stream_.open(path);
  }

  bool ok() const { return static_cast<bool>(stream_); }
  bool eof() const { return stream_.eof(); }

  /// Reads the next line, tracking the 1-based line number for error
  /// messages.
  bool Next(std::string* line) {
    if (!std::getline(stream_, *line)) return false;
    ++line_number_;
    return true;
  }
  std::int64_t line_number() const { return line_number_; }

 private:
  std::unique_ptr<char[]> buffer_;
  std::ifstream stream_;
  std::int64_t line_number_ = 0;
};

class BufferedWriter {
 public:
  explicit BufferedWriter(const std::string& path)
      : buffer_(new char[kStreamBufferBytes]) {
    stream_.rdbuf()->pubsetbuf(buffer_.get(), kStreamBufferBytes);
    stream_.open(path, std::ios::trunc);
  }

  bool ok() const { return static_cast<bool>(stream_); }
  void Write(const std::string& line) { stream_ << line; }
  bool Flush() {
    stream_.flush();
    return static_cast<bool>(stream_);
  }

 private:
  std::unique_ptr<char[]> buffer_;
  std::ofstream stream_;
};

/// "<path>:<line>: <reason>" — every malformed row names the exact
/// file and 1-based line it came from.
Status ParseError(const std::string& path, std::int64_t line,
                  const std::string& reason) {
  return Status::IoError(path + ":" + std::to_string(line) + ": " + reason);
}

void AppendFloatCsv(const float* values, std::int64_t n, std::string* out) {
  char buf[32];
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out->push_back(',');
    std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
    out->append(buf);
  }
}

std::vector<std::string_view> SplitView(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

Status ParseInt(std::string_view s, std::string_view what,
                std::int64_t* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) {
    return Status::IoError("bad integer " + std::string(what) + " '" +
                           std::string(s) + "'");
  }
  return Status::OK();
}

Status ParseFloatCsv(std::string_view s, std::string_view what,
                     std::vector<float>* out) {
  out->clear();
  if (s.empty()) return Status::OK();
  for (std::string_view part : SplitView(s, ',')) {
    float v = 0.0f;
    const auto result =
        std::from_chars(part.data(), part.data() + part.size(), v);
    if (result.ec != std::errc() || result.ptr != part.data() + part.size()) {
      return Status::IoError("bad float in " + std::string(what) + ": '" +
                             std::string(part) + "'");
    }
    out->push_back(v);
  }
  return Status::OK();
}

/// Runs a field parser and prefixes any failure with path:line.
Status AtLine(const std::string& path, std::int64_t line, Status status) {
  if (status.ok()) return status;
  return ParseError(path, line, status.message());
}

}  // namespace

Status WriteNodeTable(const Graph& graph, const std::string& path) {
  BufferedWriter out(path);
  if (!out.ok()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  std::string line;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    line.clear();
    line += std::to_string(v);
    line.push_back('\t');
    line += std::to_string(graph.labels().empty()
                               ? -1
                               : graph.labels()[static_cast<std::size_t>(v)]);
    line.push_back('\t');
    AppendFloatCsv(graph.node_features().RowPtr(v), graph.feature_dim(),
                   &line);
    line.push_back('\t');
    bool first = true;
    for (EdgeId e : graph.OutEdges(v)) {
      if (!first) line.push_back(',');
      first = false;
      line += std::to_string(graph.EdgeDst(e));
    }
    line.push_back('\n');
    out.Write(line);
    if (!out.ok()) {
      return Status::IoError("write failed for " + path + " near node " +
                             std::to_string(v));
    }
  }
  if (!out.Flush()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status WriteEdgeTable(const Graph& graph, const std::string& path) {
  BufferedWriter out(path);
  if (!out.ok()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  std::string line;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    line.clear();
    line += std::to_string(graph.EdgeSrc(e));
    line.push_back('\t');
    line += std::to_string(graph.EdgeDst(e));
    if (graph.has_edge_features()) {
      line.push_back('\t');
      AppendFloatCsv(graph.edge_features().RowPtr(e),
                     graph.edge_features().cols(), &line);
    }
    line.push_back('\n');
    out.Write(line);
    if (!out.ok()) {
      return Status::IoError("write failed for " + path + " near edge " +
                             std::to_string(e));
    }
  }
  if (!out.Flush()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Graph> LoadGraphFromTables(const std::string& node_path,
                                  const std::string& edge_path) {
  BufferedLineReader nodes(node_path);
  if (!nodes.ok()) return Status::IoError("cannot open " + node_path);

  std::vector<std::vector<float>> features;
  std::vector<std::int64_t> labels;
  std::int64_t max_label = -1;
  std::string line;
  std::int64_t expected_id = 0;
  while (nodes.Next(&line)) {
    if (line.empty()) continue;
    const std::int64_t lineno = nodes.line_number();
    const std::vector<std::string_view> fields = SplitView(line, '\t');
    if (fields.size() < 3) {
      return ParseError(node_path, lineno,
                        "node row needs >= 3 tab-separated fields "
                        "(id, label, features[, out-neighbors]); got " +
                            std::to_string(fields.size()));
    }
    std::int64_t id = 0;
    INFERTURBO_RETURN_NOT_OK(
        AtLine(node_path, lineno, ParseInt(fields[0], "node id", &id)));
    if (id != expected_id) {
      return ParseError(node_path, lineno,
                        "node ids must be dense and ordered; got " +
                            std::to_string(id) + " expecting " +
                            std::to_string(expected_id));
    }
    ++expected_id;
    std::int64_t label = 0;
    INFERTURBO_RETURN_NOT_OK(
        AtLine(node_path, lineno, ParseInt(fields[1], "label", &label)));
    labels.push_back(label);
    max_label = std::max(max_label, label);
    std::vector<float> feat;
    INFERTURBO_RETURN_NOT_OK(AtLine(
        node_path, lineno, ParseFloatCsv(fields[2], "feature column",
                                         &feat)));
    if (!features.empty() && feat.size() != features[0].size()) {
      return ParseError(node_path, lineno,
                        "inconsistent feature dim: this row has " +
                            std::to_string(feat.size()) +
                            " values, earlier rows have " +
                            std::to_string(features[0].size()));
    }
    features.push_back(std::move(feat));
  }
  if (!nodes.eof()) {
    return ParseError(node_path, nodes.line_number() + 1,
                      "read failed before end of file");
  }
  const std::int64_t num_nodes = static_cast<std::int64_t>(features.size());
  if (num_nodes == 0) {
    return Status::IoError(node_path + ": empty node table");
  }

  GraphBuilder builder(num_nodes);
  BufferedLineReader edges(edge_path);
  if (!edges.ok()) return Status::IoError("cannot open " + edge_path);
  std::vector<std::vector<float>> edge_feats;
  std::int64_t first_featured_line = -1;
  std::int64_t first_bare_line = -1;
  while (edges.Next(&line)) {
    if (line.empty()) continue;
    const std::int64_t lineno = edges.line_number();
    const std::vector<std::string_view> fields = SplitView(line, '\t');
    if (fields.size() < 2) {
      return ParseError(edge_path, lineno,
                        "edge row needs >= 2 tab-separated fields "
                        "(src, dst[, features])");
    }
    std::int64_t src = 0, dst = 0;
    INFERTURBO_RETURN_NOT_OK(
        AtLine(edge_path, lineno, ParseInt(fields[0], "src id", &src)));
    INFERTURBO_RETURN_NOT_OK(
        AtLine(edge_path, lineno, ParseInt(fields[1], "dst id", &dst)));
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes) {
      return ParseError(edge_path, lineno,
                        "edge (" + std::to_string(src) + " -> " +
                            std::to_string(dst) + ") references a node id "
                            "outside [0, " + std::to_string(num_nodes) + ")");
    }
    builder.AddEdge(src, dst);
    if (fields.size() >= 3) {
      if (first_featured_line < 0) first_featured_line = lineno;
      std::vector<float> feat;
      INFERTURBO_RETURN_NOT_OK(AtLine(
          edge_path, lineno, ParseFloatCsv(fields[2], "edge features",
                                           &feat)));
      if (!edge_feats.empty() && feat.size() != edge_feats[0].size()) {
        return ParseError(edge_path, lineno,
                          "inconsistent edge feature dim: this row has " +
                              std::to_string(feat.size()) +
                              " values, earlier rows have " +
                              std::to_string(edge_feats[0].size()));
      }
      edge_feats.push_back(std::move(feat));
    } else if (first_bare_line < 0) {
      first_bare_line = lineno;
    }
  }
  if (!edges.eof()) {
    return ParseError(edge_path, edges.line_number() + 1,
                      "read failed before end of file");
  }

  Tensor feat_tensor = Tensor::FromRows(features);
  builder.SetNodeFeatures(std::move(feat_tensor));
  const bool all_unlabeled = max_label < 0;
  if (!all_unlabeled) {
    // -1 marks "no label"; map it to class 0 for storage simplicity.
    for (std::int64_t& y : labels) y = std::max<std::int64_t>(y, 0);
    builder.SetLabels(std::move(labels), max_label + 1);
  }
  if (!edge_feats.empty()) {
    if (first_bare_line >= 0) {
      return ParseError(edge_path, first_bare_line,
                        "edge table mixes rows with and without features "
                        "(first featured row is line " +
                            std::to_string(first_featured_line) + ")");
    }
    builder.SetEdgeFeatures(Tensor::FromRows(edge_feats));
  }
  return std::move(builder).Finish();
}

}  // namespace inferturbo
