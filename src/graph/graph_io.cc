#include "src/graph/graph_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

void AppendFloatCsv(const float* values, std::int64_t n, std::string* out) {
  char buf[32];
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out->push_back(',');
    std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
    out->append(buf);
  }
}

std::vector<std::string_view> SplitView(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

Status ParseInt(std::string_view s, std::int64_t* out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) {
    return Status::IoError("bad integer field: '" + std::string(s) + "'");
  }
  return Status::OK();
}

Status ParseFloatCsv(std::string_view s, std::vector<float>* out) {
  out->clear();
  if (s.empty()) return Status::OK();
  for (std::string_view part : SplitView(s, ',')) {
    float v = 0.0f;
    const auto result =
        std::from_chars(part.data(), part.data() + part.size(), v);
    if (result.ec != std::errc()) {
      return Status::IoError("bad float field: '" + std::string(part) + "'");
    }
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace

Status WriteNodeTable(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string line;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    line.clear();
    line += std::to_string(v);
    line.push_back('\t');
    line += std::to_string(graph.labels().empty()
                               ? -1
                               : graph.labels()[static_cast<std::size_t>(v)]);
    line.push_back('\t');
    AppendFloatCsv(graph.node_features().RowPtr(v), graph.feature_dim(),
                   &line);
    line.push_back('\t');
    bool first = true;
    for (EdgeId e : graph.OutEdges(v)) {
      if (!first) line.push_back(',');
      first = false;
      line += std::to_string(graph.EdgeDst(e));
    }
    line.push_back('\n');
    out << line;
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status WriteEdgeTable(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string line;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    line.clear();
    line += std::to_string(graph.EdgeSrc(e));
    line.push_back('\t');
    line += std::to_string(graph.EdgeDst(e));
    if (graph.has_edge_features()) {
      line.push_back('\t');
      AppendFloatCsv(graph.edge_features().RowPtr(e),
                     graph.edge_features().cols(), &line);
    }
    line.push_back('\n');
    out << line;
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Graph> LoadGraphFromTables(const std::string& node_path,
                                  const std::string& edge_path) {
  std::ifstream nodes(node_path);
  if (!nodes) return Status::IoError("cannot open " + node_path);

  std::vector<std::vector<float>> features;
  std::vector<std::int64_t> labels;
  std::int64_t max_label = -1;
  std::string line;
  std::int64_t expected_id = 0;
  while (std::getline(nodes, line)) {
    if (line.empty()) continue;
    const std::vector<std::string_view> fields = SplitView(line, '\t');
    if (fields.size() < 3) {
      return Status::IoError("node table row needs >= 3 fields");
    }
    std::int64_t id = 0;
    INFERTURBO_RETURN_NOT_OK(ParseInt(fields[0], &id));
    if (id != expected_id) {
      return Status::IoError("node table ids must be dense and ordered; got " +
                             std::to_string(id) + " expecting " +
                             std::to_string(expected_id));
    }
    ++expected_id;
    std::int64_t label = 0;
    INFERTURBO_RETURN_NOT_OK(ParseInt(fields[1], &label));
    labels.push_back(label);
    max_label = std::max(max_label, label);
    std::vector<float> feat;
    INFERTURBO_RETURN_NOT_OK(ParseFloatCsv(fields[2], &feat));
    if (!features.empty() && feat.size() != features[0].size()) {
      return Status::IoError("inconsistent feature dim in node table");
    }
    features.push_back(std::move(feat));
  }
  const std::int64_t num_nodes = static_cast<std::int64_t>(features.size());
  if (num_nodes == 0) return Status::IoError("empty node table");

  GraphBuilder builder(num_nodes);
  std::ifstream edges(edge_path);
  if (!edges) return Status::IoError("cannot open " + edge_path);
  std::vector<std::vector<float>> edge_feats;
  bool has_edge_feats = false;
  while (std::getline(edges, line)) {
    if (line.empty()) continue;
    const std::vector<std::string_view> fields = SplitView(line, '\t');
    if (fields.size() < 2) {
      return Status::IoError("edge table row needs >= 2 fields");
    }
    std::int64_t src = 0, dst = 0;
    INFERTURBO_RETURN_NOT_OK(ParseInt(fields[0], &src));
    INFERTURBO_RETURN_NOT_OK(ParseInt(fields[1], &dst));
    builder.AddEdge(src, dst);
    if (fields.size() >= 3) {
      has_edge_feats = true;
      std::vector<float> feat;
      INFERTURBO_RETURN_NOT_OK(ParseFloatCsv(fields[2], &feat));
      edge_feats.push_back(std::move(feat));
    }
  }

  Tensor feat_tensor = Tensor::FromRows(features);
  builder.SetNodeFeatures(std::move(feat_tensor));
  const bool all_unlabeled = max_label < 0;
  if (!all_unlabeled) {
    // -1 marks "no label"; map it to class 0 for storage simplicity.
    for (std::int64_t& y : labels) y = std::max<std::int64_t>(y, 0);
    builder.SetLabels(std::move(labels), max_label + 1);
  }
  if (has_edge_feats) {
    if (static_cast<std::int64_t>(edge_feats.size()) != builder.num_edges()) {
      return Status::IoError("edge table mixes rows with and without "
                             "features");
    }
    builder.SetEdgeFeatures(Tensor::FromRows(edge_feats));
  }
  return std::move(builder).Finish();
}

}  // namespace inferturbo
