#ifndef INFERTURBO_GRAPH_GRAPH_H_
#define INFERTURBO_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace inferturbo {

using NodeId = std::int64_t;
using EdgeId = std::int64_t;

/// A directed, attributed graph G = {V, E, X, E_feat} (paper §II-A),
/// immutable once built.
///
/// Edges are stored once, sorted by source (CSR over out-edges), with a
/// secondary index sorted by destination (CSC over in-edges) so both the
/// Scatter side (out-edges) and the Gather side (in-edges) are O(degree).
/// Node ids are dense [0, num_nodes).
class Graph {
 public:
  Graph() = default;

  // --- topology ----------------------------------------------------
  std::int64_t num_nodes() const { return num_nodes_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edge_dst_.size());
  }

  std::int64_t OutDegree(NodeId u) const {
    return out_offsets_[static_cast<std::size_t>(u) + 1] -
           out_offsets_[static_cast<std::size_t>(u)];
  }
  std::int64_t InDegree(NodeId v) const {
    return in_offsets_[static_cast<std::size_t>(v) + 1] -
           in_offsets_[static_cast<std::size_t>(v)];
  }

  /// Edge ids leaving `u`; index into edge_src()/edge_dst().
  std::span<const EdgeId> OutEdges(NodeId u) const {
    return {out_edge_ids_.data() + out_offsets_[static_cast<std::size_t>(u)],
            static_cast<std::size_t>(OutDegree(u))};
  }
  /// Edge ids entering `v`.
  std::span<const EdgeId> InEdges(NodeId v) const {
    return {in_edge_ids_.data() + in_offsets_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(InDegree(v))};
  }

  NodeId EdgeSrc(EdgeId e) const {
    return edge_src_[static_cast<std::size_t>(e)];
  }
  NodeId EdgeDst(EdgeId e) const {
    return edge_dst_[static_cast<std::size_t>(e)];
  }

  const std::vector<NodeId>& edge_src() const { return edge_src_; }
  const std::vector<NodeId>& edge_dst() const { return edge_dst_; }

  // --- attributes ---------------------------------------------------
  /// (num_nodes × feature_dim) raw node features X.
  const Tensor& node_features() const { return node_features_; }
  std::int64_t feature_dim() const { return node_features_.cols(); }

  /// (num_edges × edge_feature_dim), empty when the graph has no edge
  /// features.
  const Tensor& edge_features() const { return edge_features_; }
  bool has_edge_features() const { return !edge_features_.empty(); }

  // --- supervision ---------------------------------------------------
  /// Single-label class ids (empty for multi-label graphs).
  const std::vector<std::int64_t>& labels() const { return labels_; }
  /// (num_nodes × num_classes) multi-hot targets (empty for
  /// single-label graphs).
  const Tensor& multi_labels() const { return multi_labels_; }
  bool is_multi_label() const { return !multi_labels_.empty(); }
  std::int64_t num_classes() const { return num_classes_; }

  const std::vector<NodeId>& train_nodes() const { return train_nodes_; }
  const std::vector<NodeId>& val_nodes() const { return val_nodes_; }
  const std::vector<NodeId>& test_nodes() const { return test_nodes_; }

  /// Approximate resident bytes (topology + features), used by memory
  /// budgeting in the baseline pipeline.
  std::size_t ApproxByteSize() const;

 private:
  friend class GraphBuilder;

  std::int64_t num_nodes_ = 0;

  // CSR by source. edge id e is a position in edge_src_/edge_dst_;
  // out_edge_ids_ is the identity permutation kept for API symmetry.
  std::vector<std::int64_t> out_offsets_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;

  // CSC by destination: edge ids grouped by dst.
  std::vector<std::int64_t> in_offsets_;
  std::vector<EdgeId> in_edge_ids_;

  Tensor node_features_;
  Tensor edge_features_;
  std::vector<std::int64_t> labels_;
  Tensor multi_labels_;
  std::int64_t num_classes_ = 0;
  std::vector<NodeId> train_nodes_;
  std::vector<NodeId> val_nodes_;
  std::vector<NodeId> test_nodes_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_GRAPH_H_
