#ifndef INFERTURBO_GRAPH_DATASETS_H_
#define INFERTURBO_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>

#include "src/graph/graph.h"
#include "src/graph/power_law.h"

namespace inferturbo {

/// Synthetic stand-ins for the paper's Table I datasets.
///
/// The real PPI / OGB-Products / OGB-MAG240M corpora are not available
/// offline, so each analogue keeps the public shape that the
/// experiments depend on — feature dimension, class count,
/// single- vs multi-label, rough density, and a planted class structure
/// with homophilous edges so that trained GNNs beat chance — while the
/// node count is scaled down by `scale` (1.0 = the default bench size,
/// already ~25x smaller than the originals).
struct Dataset {
  std::string name;
  Graph graph;
};

/// Knobs shared by the planted-structure generators.
struct PlantedGraphConfig {
  std::int64_t num_nodes = 0;
  double avg_degree = 10.0;
  std::int64_t feature_dim = 0;
  std::int64_t num_classes = 0;
  /// Probability that an edge endpoint is re-drawn from the source's
  /// class; higher = stronger class signal in the topology.
  double homophily = 0.7;
  /// Feature noise stddev relative to unit-norm class centroids.
  double noise = 1.0;
  bool multi_label = false;
  /// Number of hidden groups when multi_label (each group maps to a
  /// multi-hot pattern over num_classes labels).
  std::int64_t num_groups = 12;
  /// Train/val fractions (test = remainder).
  double train_fraction = 0.5;
  double val_fraction = 0.2;
  /// When > 0, edge *destinations* are drawn with a Zipf(alpha) rank
  /// bias instead of uniformly, planting power-law in-degrees on top of
  /// the class structure (MAG240M-style hub papers/venues). 0 keeps
  /// destinations uniform.
  double in_skew_alpha = 0.0;
  /// When > 0, each edge gets a feature row: its first entry encodes
  /// whether the edge is intra-class (a learnable signal for
  /// edge-featured layers), the rest is N(0,1) noise.
  std::int64_t edge_feature_dim = 0;
  std::uint64_t seed = 7;
};

/// Fully general planted-structure generator; the named datasets below
/// are presets over it.
Dataset MakePlantedDataset(const std::string& name,
                           const PlantedGraphConfig& config);

/// PPI-like: small, dense-ish, 50 features, 121 *multi-label* targets.
Dataset MakePpiLike(double scale = 1.0, std::uint64_t seed = 7);
/// OGB-Products-like: medium, 100 features, 47 classes.
Dataset MakeProductsLike(double scale = 1.0, std::uint64_t seed = 7);
/// MAG240M-like: large, 128 features (paper: 768), 153 classes.
Dataset MakeMag240mLike(double scale = 1.0, std::uint64_t seed = 7);

/// The paper's synthetic Power-Law dataset: 2 classes, 200-d features
/// in the paper (64 here by default), degree distribution per `config`;
/// a millesimal of nodes is marked as training split (paper §V-A).
Dataset MakePowerLawDataset(const PowerLawConfig& config,
                            std::int64_t feature_dim = 64);

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_DATASETS_H_
