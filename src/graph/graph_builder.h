#ifndef INFERTURBO_GRAPH_GRAPH_BUILDER_H_
#define INFERTURBO_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// Accumulates nodes, edges, and attributes, then freezes them into an
/// immutable Graph (validating shapes and id ranges).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::int64_t num_nodes) : num_nodes_(num_nodes) {}

  /// Appends a directed edge src -> dst. Returns its edge position in
  /// insertion order (edge features must follow the same order).
  std::int64_t AddEdge(NodeId src, NodeId dst);
  void ReserveEdges(std::size_t n);

  /// (num_nodes × d) feature matrix; required before Finish().
  void SetNodeFeatures(Tensor features);
  /// Optional (num_added_edges × d) edge features, rows in insertion
  /// order.
  void SetEdgeFeatures(Tensor features);
  /// Single-label supervision.
  void SetLabels(std::vector<std::int64_t> labels, std::int64_t num_classes);
  /// Multi-label supervision (num_nodes × num_classes, entries 0/1).
  void SetMultiLabels(Tensor targets);
  void SetSplits(std::vector<NodeId> train, std::vector<NodeId> val,
                 std::vector<NodeId> test);

  std::int64_t num_nodes() const { return num_nodes_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(src_.size());
  }

  /// Validates and builds both adjacency indexes. The builder is
  /// consumed (moved-from) on success.
  Result<Graph> Finish() &&;

 private:
  std::int64_t num_nodes_;
  std::vector<NodeId> src_;
  std::vector<NodeId> dst_;
  Tensor node_features_;
  Tensor edge_features_;
  std::vector<std::int64_t> labels_;
  Tensor multi_labels_;
  std::int64_t num_classes_ = 0;
  std::vector<NodeId> train_;
  std::vector<NodeId> val_;
  std::vector<NodeId> test_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_GRAPH_BUILDER_H_
