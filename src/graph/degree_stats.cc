#include "src/graph/degree_stats.h"

#include <algorithm>
#include <cmath>

namespace inferturbo {
namespace {

DegreeStats ComputeFromDegrees(std::vector<std::int64_t> degrees) {
  DegreeStats stats;
  if (degrees.empty()) return stats;
  double sum = 0.0;
  std::int64_t max_log2 = 0;
  for (std::int64_t d : degrees) {
    sum += static_cast<double>(d);
    stats.max_degree = std::max(stats.max_degree, d);
  }
  while ((std::int64_t{1} << max_log2) < std::max<std::int64_t>(
             stats.max_degree, 1)) {
    ++max_log2;
  }
  stats.mean_degree = sum / static_cast<double>(degrees.size());
  stats.log2_histogram.assign(static_cast<std::size_t>(max_log2) + 1, 0);
  for (std::int64_t d : degrees) {
    std::size_t bucket = 0;
    while ((std::int64_t{1} << bucket) < d) ++bucket;
    ++stats.log2_histogram[bucket];
  }
  std::sort(degrees.begin(), degrees.end());
  auto percentile = [&degrees](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(degrees.size() - 1));
    return degrees[idx];
  };
  stats.p50 = percentile(0.50);
  stats.p90 = percentile(0.90);
  stats.p99 = percentile(0.99);
  return stats;
}

}  // namespace

DegreeStats ComputeInDegreeStats(const Graph& graph) {
  std::vector<std::int64_t> degrees(
      static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    degrees[static_cast<std::size_t>(v)] = graph.InDegree(v);
  }
  return ComputeFromDegrees(std::move(degrees));
}

DegreeStats ComputeOutDegreeStats(const Graph& graph) {
  std::vector<std::int64_t> degrees(
      static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    degrees[static_cast<std::size_t>(v)] = graph.OutDegree(v);
  }
  return ComputeFromDegrees(std::move(degrees));
}

std::int64_t HubDegreeThreshold(std::int64_t total_edges,
                                std::int64_t total_workers, double lambda) {
  if (total_workers <= 0) return total_edges;
  const double t = lambda * static_cast<double>(total_edges) /
                   static_cast<double>(total_workers);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(t));
}

std::vector<NodeId> FindOutDegreeHubs(const Graph& graph,
                                      std::int64_t threshold) {
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) > threshold) hubs.push_back(v);
  }
  return hubs;
}

std::vector<NodeId> FindInDegreeHubs(const Graph& graph,
                                     std::int64_t threshold) {
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InDegree(v) > threshold) hubs.push_back(v);
  }
  return hubs;
}

}  // namespace inferturbo
