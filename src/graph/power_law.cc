#include "src/graph/power_law.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace inferturbo {

ZipfSampler::ZipfSampler(std::int64_t n, double alpha) {
  INFERTURBO_CHECK(n > 0) << "ZipfSampler needs n > 0";
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (std::int64_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -alpha);
    cdf_[static_cast<std::size_t>(r)] = acc;
  }
  const double inv = 1.0 / acc;
  for (double& c : cdf_) c *= inv;
  cdf_.back() = 1.0;
}

std::int64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::int64_t>(it - cdf_.begin());
}

namespace {

/// A cheap bijective mix of ids within [0, n): multiply-mod by a prime
/// picked coprime to n, plus an offset. Keeps hubs scattered without a
/// materialized permutation.
class IdScrambler {
 public:
  explicit IdScrambler(std::int64_t n, std::uint64_t seed) : n_(n) {
    Rng rng(seed);
    offset_ = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    // Pick an odd multiplier coprime to n.
    mult_ = 0;
    while (mult_ == 0) {
      const std::int64_t candidate = static_cast<std::int64_t>(
          rng.NextBounded(static_cast<std::uint64_t>(n - 1))) + 1;
      if (Gcd(candidate, n) == 1) mult_ = candidate;
    }
  }

  NodeId Map(std::int64_t rank) const {
    return static_cast<NodeId>(
        (static_cast<__int128>(rank) * mult_ + offset_) % n_);
  }

 private:
  static std::int64_t Gcd(std::int64_t a, std::int64_t b) {
    while (b != 0) {
      const std::int64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  }

  std::int64_t n_;
  std::int64_t mult_ = 1;
  std::int64_t offset_ = 0;
};

}  // namespace

EdgeList GeneratePowerLawEdges(const PowerLawConfig& config) {
  INFERTURBO_CHECK(config.num_nodes > 1) << "power-law graph needs >1 node";
  const std::int64_t num_edges = static_cast<std::int64_t>(
      config.avg_degree * static_cast<double>(config.num_nodes));
  Rng rng(config.seed);
  const bool zipf_src = config.skew == PowerLawSkew::kOut ||
                        config.skew == PowerLawSkew::kBoth;
  const bool zipf_dst = config.skew == PowerLawSkew::kIn ||
                        config.skew == PowerLawSkew::kBoth;
  // Separate scramblers for the two endpoints so kBoth does not force
  // the same nodes to be hubs on both sides.
  IdScrambler src_scrambler(config.num_nodes, config.seed ^ 0xabcdef01ULL);
  IdScrambler dst_scrambler(config.num_nodes, config.seed ^ 0x12345678ULL);
  ZipfSampler zipf(config.num_nodes, config.alpha);

  EdgeList edges;
  edges.src.reserve(static_cast<std::size_t>(num_edges));
  edges.dst.reserve(static_cast<std::size_t>(num_edges));
  const std::uint64_t n = static_cast<std::uint64_t>(config.num_nodes);
  for (std::int64_t e = 0; e < num_edges; ++e) {
    NodeId s = zipf_src
                   ? src_scrambler.Map(zipf.Sample(&rng))
                   : static_cast<NodeId>(rng.NextBounded(n));
    NodeId d = zipf_dst
                   ? dst_scrambler.Map(zipf.Sample(&rng))
                   : static_cast<NodeId>(rng.NextBounded(n));
    if (s == d) d = static_cast<NodeId>((d + 1) % config.num_nodes);
    edges.src.push_back(s);
    edges.dst.push_back(d);
  }
  return edges;
}

}  // namespace inferturbo
