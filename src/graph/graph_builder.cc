#include "src/graph/graph_builder.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace inferturbo {

std::int64_t GraphBuilder::AddEdge(NodeId src, NodeId dst) {
  src_.push_back(src);
  dst_.push_back(dst);
  return static_cast<std::int64_t>(src_.size()) - 1;
}

void GraphBuilder::ReserveEdges(std::size_t n) {
  src_.reserve(n);
  dst_.reserve(n);
}

void GraphBuilder::SetNodeFeatures(Tensor features) {
  node_features_ = std::move(features);
}

void GraphBuilder::SetEdgeFeatures(Tensor features) {
  edge_features_ = std::move(features);
}

void GraphBuilder::SetLabels(std::vector<std::int64_t> labels,
                             std::int64_t num_classes) {
  labels_ = std::move(labels);
  num_classes_ = num_classes;
}

void GraphBuilder::SetMultiLabels(Tensor targets) {
  num_classes_ = targets.cols();
  multi_labels_ = std::move(targets);
}

void GraphBuilder::SetSplits(std::vector<NodeId> train, std::vector<NodeId> val,
                             std::vector<NodeId> test) {
  train_ = std::move(train);
  val_ = std::move(val);
  test_ = std::move(test);
}

Result<Graph> GraphBuilder::Finish() && {
  if (num_nodes_ < 0) {
    return Status::InvalidArgument("negative node count");
  }
  for (std::size_t i = 0; i < src_.size(); ++i) {
    if (src_[i] < 0 || src_[i] >= num_nodes_ || dst_[i] < 0 ||
        dst_[i] >= num_nodes_) {
      return Status::InvalidArgument(
          "edge " + std::to_string(i) + " (" + std::to_string(src_[i]) +
          " -> " + std::to_string(dst_[i]) + ") references a node outside [0," +
          std::to_string(num_nodes_) + ")");
    }
  }
  if (node_features_.rows() != num_nodes_) {
    return Status::InvalidArgument(
        "node features have " + std::to_string(node_features_.rows()) +
        " rows for " + std::to_string(num_nodes_) + " nodes");
  }
  if (!edge_features_.empty() &&
      edge_features_.rows() != static_cast<std::int64_t>(src_.size())) {
    return Status::InvalidArgument(
        "edge features have " + std::to_string(edge_features_.rows()) +
        " rows for " + std::to_string(src_.size()) + " edges");
  }
  if (!labels_.empty() &&
      static_cast<std::int64_t>(labels_.size()) != num_nodes_) {
    return Status::InvalidArgument("labels size mismatch");
  }
  if (!multi_labels_.empty() && multi_labels_.rows() != num_nodes_) {
    return Status::InvalidArgument("multi-label target rows mismatch");
  }
  if (!labels_.empty()) {
    for (std::int64_t y : labels_) {
      if (y < 0 || y >= num_classes_) {
        return Status::InvalidArgument("label " + std::to_string(y) +
                                       " outside [0," +
                                       std::to_string(num_classes_) + ")");
      }
    }
  }
  for (const std::vector<NodeId>* split : {&train_, &val_, &test_}) {
    for (NodeId v : *split) {
      if (v < 0 || v >= num_nodes_) {
        return Status::InvalidArgument("split references node " +
                                       std::to_string(v));
      }
    }
  }

  Graph g;
  g.num_nodes_ = num_nodes_;
  const std::int64_t num_edges = static_cast<std::int64_t>(src_.size());

  // Counting sort edges by src to build the CSR arrays; edge ids are
  // positions in the sorted order, so edge features are permuted along.
  std::vector<std::int64_t> out_counts(
      static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (NodeId s : src_) ++out_counts[static_cast<std::size_t>(s) + 1];
  std::partial_sum(out_counts.begin(), out_counts.end(), out_counts.begin());
  g.out_offsets_ = out_counts;

  std::vector<std::int64_t> cursor(out_counts.begin(), out_counts.end() - 1);
  g.edge_src_.resize(static_cast<std::size_t>(num_edges));
  g.edge_dst_.resize(static_cast<std::size_t>(num_edges));
  std::vector<std::int64_t> perm(static_cast<std::size_t>(num_edges));
  for (std::size_t i = 0; i < src_.size(); ++i) {
    const std::int64_t pos = cursor[static_cast<std::size_t>(src_[i])]++;
    g.edge_src_[static_cast<std::size_t>(pos)] = src_[i];
    g.edge_dst_[static_cast<std::size_t>(pos)] = dst_[i];
    perm[static_cast<std::size_t>(pos)] = static_cast<std::int64_t>(i);
  }
  g.out_edge_ids_.resize(static_cast<std::size_t>(num_edges));
  std::iota(g.out_edge_ids_.begin(), g.out_edge_ids_.end(), 0);

  if (!edge_features_.empty()) {
    Tensor permuted(num_edges, edge_features_.cols());
    for (std::int64_t e = 0; e < num_edges; ++e) {
      permuted.SetRow(e,
                      edge_features_.RowPtr(perm[static_cast<std::size_t>(e)]));
    }
    g.edge_features_ = std::move(permuted);
  }

  // CSC: group edge ids by destination.
  std::vector<std::int64_t> in_counts(static_cast<std::size_t>(num_nodes_) + 1,
                                      0);
  for (NodeId d : g.edge_dst_) ++in_counts[static_cast<std::size_t>(d) + 1];
  std::partial_sum(in_counts.begin(), in_counts.end(), in_counts.begin());
  g.in_offsets_ = in_counts;
  std::vector<std::int64_t> in_cursor(in_counts.begin(), in_counts.end() - 1);
  g.in_edge_ids_.resize(static_cast<std::size_t>(num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e) {
    const NodeId d = g.edge_dst_[static_cast<std::size_t>(e)];
    g.in_edge_ids_[static_cast<std::size_t>(
        in_cursor[static_cast<std::size_t>(d)]++)] = e;
  }

  g.node_features_ = std::move(node_features_);
  g.labels_ = std::move(labels_);
  g.multi_labels_ = std::move(multi_labels_);
  g.num_classes_ = num_classes_;
  g.train_nodes_ = std::move(train_);
  g.val_nodes_ = std::move(val_);
  g.test_nodes_ = std::move(test_);
  return g;
}

}  // namespace inferturbo
