#include "src/graph/graph.h"

namespace inferturbo {

std::size_t Graph::ApproxByteSize() const {
  std::size_t bytes = 0;
  bytes += out_offsets_.size() * sizeof(std::int64_t);
  bytes += out_edge_ids_.size() * sizeof(EdgeId);
  bytes += edge_src_.size() * sizeof(NodeId);
  bytes += edge_dst_.size() * sizeof(NodeId);
  bytes += in_offsets_.size() * sizeof(std::int64_t);
  bytes += in_edge_ids_.size() * sizeof(EdgeId);
  bytes += node_features_.ByteSize();
  bytes += edge_features_.ByteSize();
  bytes += labels_.size() * sizeof(std::int64_t);
  bytes += multi_labels_.ByteSize();
  return bytes;
}

}  // namespace inferturbo
