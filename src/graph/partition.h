#ifndef INFERTURBO_GRAPH_PARTITION_H_
#define INFERTURBO_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace inferturbo {

/// Pregel-style node partitioning (paper §IV-C1): nodes are assigned to
/// workers by a hash of their id, and a partition owns its nodes' state
/// and all their out-edges.
class HashPartitioner {
 public:
  explicit HashPartitioner(std::int64_t num_partitions)
      : num_partitions_(num_partitions) {}

  std::int64_t num_partitions() const { return num_partitions_; }

  /// Worker owning node `v`. Fibonacci-hash of the id rather than plain
  /// `mod N` so consecutive ids (as produced by generators) spread out.
  std::int64_t PartitionOf(NodeId v) const {
    const std::uint64_t h =
        static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::int64_t>(h % static_cast<std::uint64_t>(
                                             num_partitions_));
  }

 private:
  std::int64_t num_partitions_;
};

/// Node-to-partition assignment with both directions materialized:
/// which worker owns a node, the node's dense local index there, and
/// each worker's member list.
struct PartitionAssignment {
  /// partition_of[v] = owning worker.
  std::vector<std::int64_t> partition_of;
  /// local_index[v] = position of v within members[partition_of[v]].
  std::vector<std::int64_t> local_index;
  /// members[p] = global node ids owned by worker p, ascending.
  std::vector<std::vector<NodeId>> members;
};

/// Assigns all `num_nodes` ids under `partitioner`.
PartitionAssignment AssignPartitions(std::int64_t num_nodes,
                                     const HashPartitioner& partitioner);

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_PARTITION_H_
