#ifndef INFERTURBO_GRAPH_DEGREE_STATS_H_
#define INFERTURBO_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace inferturbo {

/// Degree-distribution summaries used to analyze skew (paper §IV-D) and
/// to pick hub thresholds.
struct DegreeStats {
  std::int64_t max_degree = 0;
  double mean_degree = 0.0;
  /// 50th/90th/99th percentile degrees.
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  /// Count of nodes whose degree strictly exceeds each power of two;
  /// histogram[k] covers degree in (2^k, 2^(k+1)].
  std::vector<std::int64_t> log2_histogram;
};

/// Stats over in-degrees.
DegreeStats ComputeInDegreeStats(const Graph& graph);
/// Stats over out-degrees.
DegreeStats ComputeOutDegreeStats(const Graph& graph);

/// The paper's hub-activation heuristic:
/// threshold = lambda * total_edges / total_workers (§IV-D, lambda=0.1).
std::int64_t HubDegreeThreshold(std::int64_t total_edges,
                                std::int64_t total_workers,
                                double lambda = 0.1);

/// Nodes whose out-degree exceeds `threshold`.
std::vector<NodeId> FindOutDegreeHubs(const Graph& graph,
                                      std::int64_t threshold);
/// Nodes whose in-degree exceeds `threshold`.
std::vector<NodeId> FindInDegreeHubs(const Graph& graph,
                                     std::int64_t threshold);

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_DEGREE_STATS_H_
