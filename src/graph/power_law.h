#ifndef INFERTURBO_GRAPH_POWER_LAW_H_
#define INFERTURBO_GRAPH_POWER_LAW_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace inferturbo {

/// Which endpoint of each edge is drawn from the heavy-tailed (Zipf)
/// node distribution. The paper's §V-A generates in-degree-skewed and
/// out-degree-skewed variants separately for variable control.
enum class PowerLawSkew {
  kNone,  ///< both endpoints uniform (Erdős–Rényi-like)
  kIn,    ///< destinations Zipf-distributed -> skewed in-degree
  kOut,   ///< sources Zipf-distributed -> skewed out-degree
  kBoth,  ///< both endpoints Zipf (independent)
};

struct PowerLawConfig {
  std::int64_t num_nodes = 10'000;
  /// Edges = num_nodes * avg_degree.
  double avg_degree = 10.0;
  PowerLawSkew skew = PowerLawSkew::kBoth;
  /// Zipf exponent; 2.0 reproduces the hub-heavy tails of natural
  /// graphs (PowerGraph reports alpha ~ 2 for real web/social graphs).
  double alpha = 2.0;
  std::uint64_t seed = 17;
};

/// Draws ranks 1..n with P(rank) proportional to rank^-alpha, by
/// inverting a precomputed CDF. Deterministic under the caller's Rng.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double alpha);

  /// A rank in [0, n).
  std::int64_t Sample(Rng* rng) const;

  std::int64_t n() const { return static_cast<std::int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

/// Edge list of a power-law graph per `config`. Node ids hosting the
/// heavy ranks are scattered via a pseudorandom permutation so hubs do
/// not cluster in id space (which would bias hash partitioning).
struct EdgeList {
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
};
EdgeList GeneratePowerLawEdges(const PowerLawConfig& config);

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_POWER_LAW_H_
