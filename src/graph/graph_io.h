#ifndef INFERTURBO_GRAPH_GRAPH_IO_H_
#define INFERTURBO_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/common/result.h"
#include "src/graph/graph.h"

namespace inferturbo {

/// Text form of the MapReduce pipeline's inputs (paper §IV-C2): a *node
/// table* — `id \t label \t f0,f1,... \t out_nbr0,out_nbr1,...` — and an
/// *edge table* — `src \t dst [\t e0,e1,...]`.

/// Writes the node table of `graph` to `path`.
Status WriteNodeTable(const Graph& graph, const std::string& path);
/// Writes the edge table of `graph` to `path`.
Status WriteEdgeTable(const Graph& graph, const std::string& path);

/// Rebuilds a Graph from the two tables. Splits and multi-label targets
/// are not round-tripped (tables carry what the inference job needs).
/// Reads are buffered (1 MiB windows), and every malformed row fails
/// with an IoError naming the file, 1-based line number, and reason —
/// "edges.tsv:17: bad integer src id 'x7'" — never silently skipping
/// or crashing on bad input.
Result<Graph> LoadGraphFromTables(const std::string& node_path,
                                  const std::string& edge_path);

}  // namespace inferturbo

#endif  // INFERTURBO_GRAPH_GRAPH_IO_H_
