#include "src/graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "src/common/logging.h"
#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

/// Assigns each node a class/group uniformly and returns per-class node
/// lists for homophilous rewiring.
std::vector<std::int64_t> AssignClasses(
    std::int64_t num_nodes, std::int64_t num_classes, Rng* rng,
    std::vector<std::vector<NodeId>>* by_class) {
  std::vector<std::int64_t> classes(static_cast<std::size_t>(num_nodes));
  by_class->assign(static_cast<std::size_t>(num_classes), {});
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::int64_t c = static_cast<std::int64_t>(
        rng->NextBounded(static_cast<std::uint64_t>(num_classes)));
    classes[static_cast<std::size_t>(v)] = c;
    (*by_class)[static_cast<std::size_t>(c)].push_back(v);
  }
  // Guarantee non-empty classes so centroids are always exercised.
  for (std::int64_t c = 0; c < num_classes; ++c) {
    if ((*by_class)[static_cast<std::size_t>(c)].empty()) {
      const NodeId v = static_cast<NodeId>(
          rng->NextBounded(static_cast<std::uint64_t>(num_nodes)));
      (*by_class)[static_cast<std::size_t>(
          classes[static_cast<std::size_t>(v)])]
          .erase(std::find((*by_class)[static_cast<std::size_t>(
                               classes[static_cast<std::size_t>(v)])]
                               .begin(),
                           (*by_class)[static_cast<std::size_t>(
                               classes[static_cast<std::size_t>(v)])]
                               .end(),
                           v));
      classes[static_cast<std::size_t>(v)] = c;
      (*by_class)[static_cast<std::size_t>(c)].push_back(v);
    }
  }
  return classes;
}

/// Features = unit-ish class centroid + N(0, noise) per dimension.
Tensor PlantFeatures(const std::vector<std::int64_t>& classes,
                     std::int64_t num_classes, std::int64_t feature_dim,
                     double noise, Rng* rng) {
  Tensor centroids = Tensor::RandomNormal(num_classes, feature_dim, 1.0f, rng);
  Tensor features(static_cast<std::int64_t>(classes.size()), feature_dim);
  for (std::size_t v = 0; v < classes.size(); ++v) {
    const float* pc = centroids.RowPtr(classes[v]);
    float* pf = features.RowPtr(static_cast<std::int64_t>(v));
    for (std::int64_t j = 0; j < feature_dim; ++j) {
      pf[j] = pc[j] + static_cast<float>(noise * rng->NextGaussian());
    }
  }
  return features;
}

void MakeSplits(std::int64_t num_nodes, double train_fraction,
                double val_fraction, Rng* rng, std::vector<NodeId>* train,
                std::vector<NodeId>* val, std::vector<NodeId>* test) {
  std::vector<NodeId> ids(static_cast<std::size_t>(num_nodes));
  std::iota(ids.begin(), ids.end(), 0);
  // Fisher-Yates under the dataset rng keeps splits reproducible.
  for (std::size_t i = ids.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng->NextBounded(static_cast<std::uint64_t>(
            i)));
    std::swap(ids[i - 1], ids[j]);
  }
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(num_nodes));
  const auto n_val = static_cast<std::size_t>(
      val_fraction * static_cast<double>(num_nodes));
  train->assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(
                                               n_train));
  val->assign(ids.begin() + static_cast<std::ptrdiff_t>(n_train),
              ids.begin() + static_cast<std::ptrdiff_t>(n_train + n_val));
  test->assign(ids.begin() + static_cast<std::ptrdiff_t>(n_train + n_val),
               ids.end());
}

}  // namespace

Dataset MakePlantedDataset(const std::string& name,
                           const PlantedGraphConfig& config) {
  INFERTURBO_CHECK(config.num_nodes > 1 && config.num_classes > 0 &&
                   config.feature_dim > 0)
      << "invalid planted dataset config for " << name;
  Rng rng(config.seed);
  const std::int64_t hidden_classes =
      config.multi_label ? config.num_groups : config.num_classes;

  std::vector<std::vector<NodeId>> by_class;
  std::vector<std::int64_t> classes =
      AssignClasses(config.num_nodes, hidden_classes, &rng, &by_class);

  // Homophilous edges: pick a uniform source; with probability
  // `homophily` the destination comes from the source's class. With
  // in_skew_alpha > 0, destination picks are Zipf-rank-biased (low
  // positions become hubs; class assignment is random, so hubs carry
  // no class bias).
  const std::int64_t num_edges = static_cast<std::int64_t>(
      config.avg_degree * static_cast<double>(config.num_nodes));
  std::unique_ptr<ZipfSampler> global_zipf;
  std::vector<std::unique_ptr<ZipfSampler>> class_zipf;
  if (config.in_skew_alpha > 0.0) {
    global_zipf =
        std::make_unique<ZipfSampler>(config.num_nodes, config.in_skew_alpha);
    class_zipf.resize(by_class.size());
    for (std::size_t c = 0; c < by_class.size(); ++c) {
      class_zipf[c] = std::make_unique<ZipfSampler>(
          static_cast<std::int64_t>(by_class[c].size()),
          config.in_skew_alpha);
    }
  }
  GraphBuilder builder(config.num_nodes);
  builder.ReserveEdges(static_cast<std::size_t>(num_edges));
  Tensor edge_feats;
  if (config.edge_feature_dim > 0) {
    edge_feats = Tensor::RandomNormal(num_edges, config.edge_feature_dim,
                                      1.0f, &rng);
  }
  for (std::int64_t e = 0; e < num_edges; ++e) {
    const NodeId src = static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(config.num_nodes)));
    NodeId dst;
    if (rng.NextDouble() < config.homophily) {
      const auto& peers =
          by_class[static_cast<std::size_t>(
              classes[static_cast<std::size_t>(src)])];
      const std::size_t pick =
          global_zipf
              ? static_cast<std::size_t>(
                    class_zipf[static_cast<std::size_t>(
                                   classes[static_cast<std::size_t>(src)])]
                        ->Sample(&rng))
              : static_cast<std::size_t>(
                    rng.NextBounded(static_cast<std::uint64_t>(peers.size())));
      dst = peers[pick];
    } else if (global_zipf) {
      dst = static_cast<NodeId>(global_zipf->Sample(&rng));
    } else {
      dst = static_cast<NodeId>(
          rng.NextBounded(static_cast<std::uint64_t>(config.num_nodes)));
    }
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % config.num_nodes);
    if (config.edge_feature_dim > 0) {
      // Column 0 carries the intra-class signal edge-featured layers
      // can learn from; the rest stays noise.
      edge_feats.At(e, 0) =
          classes[static_cast<std::size_t>(src)] ==
                  classes[static_cast<std::size_t>(dst)]
              ? 1.0f
              : -1.0f;
    }
    builder.AddEdge(src, dst);
  }
  if (config.edge_feature_dim > 0) {
    builder.SetEdgeFeatures(std::move(edge_feats));
  }

  builder.SetNodeFeatures(PlantFeatures(classes, hidden_classes,
                                        config.feature_dim, config.noise,
                                        &rng));

  if (config.multi_label) {
    // Each hidden group maps to a fixed multi-hot pattern; node targets
    // are the group pattern with small flip noise, mirroring PPI's
    // correlated 121-way labels.
    Tensor patterns(hidden_classes, config.num_classes);
    for (std::int64_t g = 0; g < hidden_classes; ++g) {
      for (std::int64_t l = 0; l < config.num_classes; ++l) {
        patterns.At(g, l) = rng.NextDouble() < 0.25 ? 1.0f : 0.0f;
      }
    }
    Tensor targets(config.num_nodes, config.num_classes);
    for (NodeId v = 0; v < config.num_nodes; ++v) {
      const float* pp = patterns.RowPtr(classes[static_cast<std::size_t>(v)]);
      float* pt = targets.RowPtr(v);
      for (std::int64_t l = 0; l < config.num_classes; ++l) {
        const bool flip = rng.NextDouble() < 0.02;
        pt[l] = flip ? 1.0f - pp[l] : pp[l];
      }
    }
    builder.SetMultiLabels(std::move(targets));
  } else {
    builder.SetLabels(classes, hidden_classes);
  }

  std::vector<NodeId> train, val, test;
  MakeSplits(config.num_nodes, config.train_fraction, config.val_fraction,
             &rng, &train, &val, &test);
  builder.SetSplits(std::move(train), std::move(val), std::move(test));

  Result<Graph> graph = std::move(builder).Finish();
  INFERTURBO_CHECK(graph.ok()) << graph.status().ToString();
  return Dataset{name, std::move(graph).ValueOrDie()};
}

Dataset MakePpiLike(double scale, std::uint64_t seed) {
  PlantedGraphConfig config;
  config.num_nodes =
      std::max<std::int64_t>(64, static_cast<std::int64_t>(2000 * scale));
  config.avg_degree = 14.0;  // PPI is dense: ~14 edges/node
  config.feature_dim = 50;
  config.num_classes = 121;
  config.multi_label = true;
  config.num_groups = 12;
  config.homophily = 0.8;
  config.noise = 0.8;
  config.seed = seed;
  return MakePlantedDataset("ppi-like", config);
}

Dataset MakeProductsLike(double scale, std::uint64_t seed) {
  PlantedGraphConfig config;
  config.num_nodes =
      std::max<std::int64_t>(128, static_cast<std::int64_t>(10000 * scale));
  config.avg_degree = 25.0;  // Products: ~25 edges/node
  config.feature_dim = 100;
  config.num_classes = 47;
  config.homophily = 0.75;
  config.noise = 1.2;
  config.train_fraction = 0.1;  // Products trains on a small split
  config.val_fraction = 0.05;
  config.seed = seed;
  return MakePlantedDataset("products-like", config);
}

Dataset MakeMag240mLike(double scale, std::uint64_t seed) {
  PlantedGraphConfig config;
  config.num_nodes =
      std::max<std::int64_t>(256, static_cast<std::int64_t>(50000 * scale));
  config.avg_degree = 20.0;  // MAG240M subset: ~22 edges/node
  config.feature_dim = 128;  // paper: 768; scaled with the node count
  config.num_classes = 153;
  config.homophily = 0.65;
  config.noise = 1.5;
  config.train_fraction = 0.02;  // about 1% labeled, like the paper
  config.val_fraction = 0.01;
  config.seed = seed;
  return MakePlantedDataset("mag240m-like", config);
}

Dataset MakePowerLawDataset(const PowerLawConfig& config,
                            std::int64_t feature_dim) {
  Rng rng(config.seed ^ 0x5bd1e995ULL);
  EdgeList edges = GeneratePowerLawEdges(config);
  GraphBuilder builder(config.num_nodes);
  builder.ReserveEdges(edges.src.size());
  for (std::size_t e = 0; e < edges.src.size(); ++e) {
    builder.AddEdge(edges.src[e], edges.dst[e]);
  }
  // Two planted classes (the paper's Power-Law dataset has #Class = 2).
  std::vector<std::vector<NodeId>> by_class;
  std::vector<std::int64_t> classes =
      AssignClasses(config.num_nodes, 2, &rng, &by_class);
  builder.SetNodeFeatures(
      PlantFeatures(classes, 2, feature_dim, 1.0, &rng));
  builder.SetLabels(classes, 2);
  // "all nodes ... are used in inference task, while millesimal are
  // used in training phase" (§V-A).
  std::vector<NodeId> train;
  const std::int64_t train_count =
      std::max<std::int64_t>(2, config.num_nodes / 1000);
  for (std::int64_t i = 0; i < train_count; ++i) {
    train.push_back(static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(config.num_nodes))));
  }
  std::vector<NodeId> all(static_cast<std::size_t>(config.num_nodes));
  std::iota(all.begin(), all.end(), 0);
  builder.SetSplits(std::move(train), {}, std::move(all));
  Result<Graph> graph = std::move(builder).Finish();
  INFERTURBO_CHECK(graph.ok()) << graph.status().ToString();
  return Dataset{"power-law", std::move(graph).ValueOrDie()};
}

}  // namespace inferturbo
