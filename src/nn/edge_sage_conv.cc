#include "src/nn/edge_sage_conv.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

EdgeSageConv::EdgeSageConv(std::int64_t input_dim,
                           std::int64_t edge_feature_dim,
                           std::int64_t output_dim, bool activation,
                           Rng* rng)
    : activation_(activation),
      edge_feature_dim_(edge_feature_dim),
      w_self_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      w_nbr_(ag::Param(Tensor::GlorotUniform(input_dim + edge_feature_dim,
                                             output_dim, rng))),
      bias_(ag::Param(Tensor::Zeros(1, output_dim))) {
  INFERTURBO_CHECK(edge_feature_dim > 0)
      << "EdgeSageConv needs edge features; use SageConv otherwise";
  signature_.layer_type = "edge_sage";
  signature_.agg_kind = AggKind::kMean;
  signature_.input_dim = input_dim;
  signature_.output_dim = output_dim;
  signature_.message_dim = input_dim + edge_feature_dim;
  signature_.partial_gather = true;
  signature_.broadcastable_messages = false;  // varies per edge
  signature_.uses_edge_features = true;
}

Tensor EdgeSageConv::ComputeMessage(const Tensor& node_states) const {
  INFERTURBO_CHECK(node_states.cols() == signature_.input_dim)
      << "EdgeSageConv message input dim mismatch";
  return node_states;
}

Tensor EdgeSageConv::ApplyEdge(const Tensor& messages,
                               const Tensor* edge_features) const {
  INFERTURBO_CHECK(edge_features != nullptr &&
                   edge_features->rows() == messages.rows() &&
                   edge_features->cols() == edge_feature_dim_)
      << "EdgeSageConv::ApplyEdge needs aligned edge features";
  return ConcatCols(messages, *edge_features);
}

Tensor EdgeSageConv::ApplyNode(const Tensor& node_states,
                               const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kMean)
      << "EdgeSageConv expects mean-gathered messages";
  Tensor out = MatMul(node_states, w_self_->value);
  AddInPlace(&out, MatMul(gathered.pooled, w_nbr_->value));
  out = AddRowBroadcast(out, bias_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr EdgeSageConv::ForwardAg(const ag::VarPtr& h,
                                   std::span<const std::int64_t> src_index,
                                   std::span<const std::int64_t> dst_index,
                                   std::int64_t num_nodes,
                                   const Tensor* edge_features) const {
  INFERTURBO_CHECK(edge_features != nullptr &&
                   edge_features->rows() ==
                       static_cast<std::int64_t>(src_index.size()))
      << "EdgeSageConv::ForwardAg needs per-edge features";
  ag::VarPtr messages = ag::GatherRows(
      h, std::vector<std::int64_t>(src_index.begin(), src_index.end()));
  messages = ag::ConcatCols(messages, ag::Constant(*edge_features));
  ag::VarPtr pooled = ag::SegmentMean(
      messages, std::vector<std::int64_t>(dst_index.begin(), dst_index.end()),
      num_nodes);
  ag::VarPtr out = ag::AddRowBroadcast(
      ag::Add(ag::MatMul(h, w_self_), ag::MatMul(pooled, w_nbr_)), bias_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> EdgeSageConv::Parameters() const {
  return {w_self_, w_nbr_, bias_};
}

}  // namespace inferturbo
