#include "src/nn/gin_conv.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

GinConv::GinConv(std::int64_t input_dim, std::int64_t output_dim,
                 bool activation, Rng* rng)
    : activation_(activation),
      eps_(ag::Param(Tensor::Zeros(1, 1))),
      w1_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      b1_(ag::Param(Tensor::Zeros(1, output_dim))),
      w2_(ag::Param(Tensor::GlorotUniform(output_dim, output_dim, rng))),
      b2_(ag::Param(Tensor::Zeros(1, output_dim))) {
  signature_.layer_type = "gin";
  signature_.agg_kind = AggKind::kSum;
  signature_.input_dim = input_dim;
  signature_.output_dim = output_dim;
  signature_.message_dim = input_dim;
  signature_.partial_gather = true;
  signature_.broadcastable_messages = true;
}

Tensor GinConv::ComputeMessage(const Tensor& node_states) const {
  INFERTURBO_CHECK(node_states.cols() == signature_.input_dim)
      << "GinConv message input dim mismatch";
  return node_states;
}

Tensor GinConv::ApplyNode(const Tensor& node_states,
                          const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kSum)
      << "GinConv expects sum-gathered messages";
  const float scale = 1.0f + eps_->value.At(0, 0);
  Tensor combined = Add(Scale(node_states, scale), gathered.pooled);
  Tensor hidden =
      Relu(AddRowBroadcast(MatMul(combined, w1_->value), b1_->value));
  Tensor out = AddRowBroadcast(MatMul(hidden, w2_->value), b2_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr GinConv::ForwardAg(const ag::VarPtr& h,
                              std::span<const std::int64_t> src_index,
                              std::span<const std::int64_t> dst_index,
                              std::int64_t num_nodes,
                              const Tensor* edge_features) const {
  (void)edge_features;
  ag::VarPtr messages = ag::GatherRows(
      h, std::vector<std::int64_t>(src_index.begin(), src_index.end()));
  ag::VarPtr pooled = ag::SegmentSum(
      messages, std::vector<std::int64_t>(dst_index.begin(), dst_index.end()),
      num_nodes);
  // (1 + eps) * h via a column-broadcast against a ones column scaled
  // by the trainable epsilon: h + MulColBroadcast(h, eps * ones).
  Tensor ones(h->value.rows(), 1);
  for (std::int64_t r = 0; r < ones.rows(); ++r) ones.At(r, 0) = 1.0f;
  ag::VarPtr eps_column = ag::MatMul(ag::Constant(std::move(ones)), eps_);
  ag::VarPtr combined =
      ag::Add(ag::Add(h, ag::MulColBroadcast(h, eps_column)), pooled);
  ag::VarPtr hidden = ag::Relu(
      ag::AddRowBroadcast(ag::MatMul(combined, w1_), b1_));
  ag::VarPtr out = ag::AddRowBroadcast(ag::MatMul(hidden, w2_), b2_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> GinConv::Parameters() const {
  return {eps_, w1_, b1_, w2_, b2_};
}

}  // namespace inferturbo
