#ifndef INFERTURBO_NN_LOSS_H_
#define INFERTURBO_NN_LOSS_H_

#include <cstdint>
#include <span>

#include "src/tensor/tensor.h"

namespace inferturbo {

/// Forward-only loss values for evaluation (training uses the autograd
/// losses in src/tensor/autograd.h, which these mirror numerically).

/// Mean softmax cross-entropy of `logits` rows against integer labels.
double CrossEntropyValue(const Tensor& logits,
                         std::span<const std::int64_t> labels);

/// Mean element-wise sigmoid BCE against 0/1 `targets`.
double BceValue(const Tensor& logits, const Tensor& targets);

}  // namespace inferturbo

#endif  // INFERTURBO_NN_LOSS_H_
