#ifndef INFERTURBO_NN_POOL_SAGE_CONV_H_
#define INFERTURBO_NN_POOL_SAGE_CONV_H_

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// GraphSAGE with the *max-pooling* aggregator (Hamilton et al. 2017,
/// "pool" variant):
///
///   m_u   = ReLU(W_pool h_u + b_pool)        (apply_edge, per source)
///   agg_v = max_{u->v} m_u                   (aggregate: kMax)
///   h'_v  = act(W_self h_v + W_nbr agg_v + b)
///
/// Exercises the elementwise-max monoid through the engines'
/// partial-gather path (max is commutative and associative, so the
/// combiner optimization applies; empty gathers read the neutral zero,
/// matching the reference semantics).
class PoolSageConv : public GasConv {
 public:
  PoolSageConv(std::int64_t input_dim, std::int64_t output_dim,
               bool activation, Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

 private:
  LayerSignature signature_;
  bool activation_;
  ag::VarPtr w_pool_;
  ag::VarPtr b_pool_;
  ag::VarPtr w_self_;
  ag::VarPtr w_nbr_;
  ag::VarPtr bias_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_POOL_SAGE_CONV_H_
