#include "src/nn/sage_conv.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

SageConv::SageConv(std::int64_t input_dim, std::int64_t output_dim,
                   bool activation, Rng* rng)
    : activation_(activation),
      w_self_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      w_nbr_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      bias_(ag::Param(Tensor::Zeros(1, output_dim))) {
  signature_.layer_type = "sage";
  signature_.agg_kind = AggKind::kMean;
  signature_.input_dim = input_dim;
  signature_.output_dim = output_dim;
  signature_.message_dim = input_dim;
  signature_.partial_gather = true;
  signature_.broadcastable_messages = true;
}

Tensor SageConv::ComputeMessage(const Tensor& node_states) const {
  INFERTURBO_CHECK(node_states.cols() == signature_.input_dim)
      << "SageConv message input dim " << node_states.cols() << " expected "
      << signature_.input_dim;
  return node_states;
}

Tensor SageConv::ApplyNode(const Tensor& node_states,
                           const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kMean)
      << "SageConv expects mean-gathered messages";
  Tensor out = MatMul(node_states, w_self_->value);
  AddInPlace(&out, MatMul(gathered.pooled, w_nbr_->value));
  out = AddRowBroadcast(out, bias_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr SageConv::ForwardAg(const ag::VarPtr& h,
                               std::span<const std::int64_t> src_index,
                               std::span<const std::int64_t> dst_index,
                               std::int64_t num_nodes,
                               const Tensor* edge_features) const {
  (void)edge_features;
  // scatter_and_gather fused exactly as in the paper's Fig. 3: build
  // the (row-normalized) sparse adjacency once and mean-aggregate with
  // a single SpMM instead of materializing per-edge messages.
  CsrMatrix adjacency = CsrMatrix::FromEdges(num_nodes, dst_index,
                                             src_index);
  adjacency.NormalizeRows();  // sum -> mean
  ag::VarPtr pooled = ag::SparseMatMul(std::move(adjacency), h);
  ag::VarPtr out = ag::AddRowBroadcast(
      ag::Add(ag::MatMul(h, w_self_), ag::MatMul(pooled, w_nbr_)), bias_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> SageConv::Parameters() const {
  return {w_self_, w_nbr_, bias_};
}

}  // namespace inferturbo
