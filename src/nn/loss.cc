#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

double CrossEntropyValue(const Tensor& logits,
                         std::span<const std::int64_t> labels) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(labels.size()) == logits.rows())
      << "CrossEntropyValue label count mismatch";
  if (logits.rows() == 0) return 0.0;
  const Tensor log_probs = LogSoftmaxRows(logits);
  double loss = 0.0;
  for (std::int64_t r = 0; r < log_probs.rows(); ++r) {
    loss -= log_probs.At(r, labels[static_cast<std::size_t>(r)]);
  }
  return loss / static_cast<double>(log_probs.rows());
}

double BceValue(const Tensor& logits, const Tensor& targets) {
  INFERTURBO_CHECK(logits.rows() == targets.rows() &&
                   logits.cols() == targets.cols())
      << "BceValue shape mismatch";
  if (logits.size() == 0) return 0.0;
  double loss = 0.0;
  const float* px = logits.data();
  const float* pt = targets.data();
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float x = px[i];
    loss += std::max(x, 0.0f) - x * pt[i] +
            std::log1p(std::exp(-std::fabs(x)));
  }
  return loss / static_cast<double>(logits.size());
}

}  // namespace inferturbo
