#include "src/nn/gcn_conv.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"

namespace inferturbo {

GcnConv::GcnConv(std::int64_t input_dim, std::int64_t output_dim,
                 bool activation, Rng* rng)
    : activation_(activation),
      weight_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      bias_(ag::Param(Tensor::Zeros(1, output_dim))) {
  signature_.layer_type = "gcn";
  signature_.agg_kind = AggKind::kMean;
  signature_.input_dim = input_dim;
  signature_.output_dim = output_dim;
  signature_.message_dim = input_dim;
  signature_.partial_gather = true;
  signature_.broadcastable_messages = true;
}

Tensor GcnConv::ComputeMessage(const Tensor& node_states) const {
  return node_states;
}

Tensor GcnConv::ApplyNode(const Tensor& node_states,
                          const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kMean)
      << "GcnConv expects mean-gathered messages";
  // Closed-neighborhood mean: (sum_nbrs + h) / (count + 1), with the
  // neighbor sum reconstructed from the gathered mean.
  Tensor combined(node_states.rows(), node_states.cols());
  for (std::int64_t v = 0; v < node_states.rows(); ++v) {
    const auto count = static_cast<float>(
        gathered.counts[static_cast<std::size_t>(v)]);
    const float inv = 1.0f / (count + 1.0f);
    const float* ph = node_states.RowPtr(v);
    const float* pp = gathered.pooled.RowPtr(v);
    float* pc = combined.RowPtr(v);
    for (std::int64_t j = 0; j < node_states.cols(); ++j) {
      pc[j] = (pp[j] * count + ph[j]) * inv;
    }
  }
  Tensor out = AddRowBroadcast(MatMul(combined, weight_->value),
                               bias_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr GcnConv::ForwardAg(const ag::VarPtr& h,
                              std::span<const std::int64_t> src_index,
                              std::span<const std::int64_t> dst_index,
                              std::int64_t num_nodes,
                              const Tensor* edge_features) const {
  (void)edge_features;
  std::vector<std::int64_t> dst(dst_index.begin(), dst_index.end());
  ag::VarPtr messages = ag::GatherRows(
      h, std::vector<std::int64_t>(src_index.begin(), src_index.end()));
  ag::VarPtr nbr_sum = ag::SegmentSum(messages, dst, num_nodes);
  // 1/(deg+1) is adjacency-derived, so it enters the tape as a
  // constant scale.
  const std::vector<std::int64_t> counts = SegmentCounts(dst, num_nodes);
  Tensor inv(num_nodes, 1);
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    inv.At(v, 0) =
        1.0f / (static_cast<float>(counts[static_cast<std::size_t>(v)]) +
                1.0f);
  }
  ag::VarPtr combined = ag::MulColBroadcast(ag::Add(nbr_sum, h),
                                            ag::Constant(std::move(inv)));
  ag::VarPtr out =
      ag::AddRowBroadcast(ag::MatMul(combined, weight_), bias_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> GcnConv::Parameters() const {
  return {weight_, bias_};
}

}  // namespace inferturbo
