#ifndef INFERTURBO_NN_SAGE_CONV_H_
#define INFERTURBO_NN_SAGE_CONV_H_

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// GraphSAGE (mean aggregator) in the GAS-like abstraction, matching
/// the paper's Fig. 3 SAGEConv:
///
///   aggregate  = mean over in-messages          (commutative+assoc ->
///                eligible for partial-gather / combiners)
///   apply_node = act(W_self h + W_nbr mean + b)
///   apply_edge = identity (message is the source state, identical on
///                every out-edge -> broadcastable)
class SageConv : public GasConv {
 public:
  /// `activation`: apply ReLU to the output (off for a model's last
  /// GNN layer when logits feed a head directly).
  SageConv(std::int64_t input_dim, std::int64_t output_dim, bool activation,
           Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

 private:
  LayerSignature signature_;
  bool activation_;
  ag::VarPtr w_self_;
  ag::VarPtr w_nbr_;
  ag::VarPtr bias_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_SAGE_CONV_H_
