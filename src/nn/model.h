#ifndef INFERTURBO_NN_MODEL_H_
#define INFERTURBO_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// A stack of GAS-expressed GNN layers plus a linear prediction head.
///
/// The head is the "prediction slice" the paper merges into the last
/// superstep / reduce round of the inference job. For multi-label tasks
/// logits feed a per-label sigmoid; for single-label, a softmax.
class GnnModel {
 public:
  GnnModel(std::vector<std::unique_ptr<GasConv>> layers,
           std::int64_t num_classes, Rng* rng);

  GnnModel(const GnnModel&) = delete;
  GnnModel& operator=(const GnnModel&) = delete;
  GnnModel(GnnModel&&) = default;
  GnnModel& operator=(GnnModel&&) = default;

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(layers_.size());
  }
  const GasConv& layer(std::int64_t i) const { return *layers_[i]; }
  std::int64_t input_dim() const { return layers_.front()->signature().input_dim; }
  std::int64_t embedding_dim() const {
    return layers_.back()->signature().output_dim;
  }
  std::int64_t num_classes() const { return num_classes_; }

  /// Head logits (n × num_classes) from final node states.
  Tensor PredictLogits(const Tensor& final_states) const;
  ag::VarPtr PredictLogitsAg(const ag::VarPtr& final_states) const;

  /// All trainable parameters (layers + head).
  std::vector<ag::VarPtr> Parameters() const;

  /// Writes one signature line per layer plus the head shape — the
  /// layer-wise signature files the paper saves beside a trained model
  /// so the inference deployment needs no manual configuration.
  Status SaveSignatures(const std::string& path) const;

  /// Binary round-trip of all parameter tensors (shape-checked on
  /// load). The receiving model must have the same architecture.
  Status SaveParameters(const std::string& path) const;
  Status LoadParameters(const std::string& path);

 private:
  std::vector<std::unique_ptr<GasConv>> layers_;
  std::int64_t num_classes_;
  ag::VarPtr head_weight_;
  ag::VarPtr head_bias_;
};

/// Model architecture presets mirroring the paper's experiments.
struct ModelConfig {
  std::int64_t input_dim = 0;
  std::int64_t hidden_dim = 64;
  std::int64_t num_classes = 2;
  std::int64_t num_layers = 2;
  /// GAT only.
  std::int64_t heads = 4;
  /// edge_sage only: width of per-edge feature rows.
  std::int64_t edge_feature_dim = 0;
  std::uint64_t seed = 11;
};

std::unique_ptr<GnnModel> MakeSageModel(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGcnModel(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGatModel(const ModelConfig& config);
/// GIN (sum aggregate) — exercises the kSum combiner path.
std::unique_ptr<GnnModel> MakeGinModel(const ModelConfig& config);
/// GraphSAGE max-pool variant (kMax aggregate).
std::unique_ptr<GnnModel> MakePoolSageModel(const ModelConfig& config);
/// SAGE with edge-feature messages (requires config.edge_feature_dim).
std::unique_ptr<GnnModel> MakeEdgeSageModel(const ModelConfig& config);

/// Dispatch by name:
/// "sage" | "gcn" | "gat" | "gin" | "pool_sage" | "edge_sage".
Result<std::unique_ptr<GnnModel>> MakeModel(const std::string& kind,
                                            const ModelConfig& config);

}  // namespace inferturbo

#endif  // INFERTURBO_NN_MODEL_H_
