#include "src/nn/trainer.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/tensor/optimizer.h"

namespace inferturbo {

MiniBatchTrainer::MiniBatchTrainer(const Graph* graph, GnnModel* model,
                                   TrainerOptions options)
    : graph_(graph),
      model_(model),
      options_(options),
      sampler_(graph) {}

Result<TrainReport> MiniBatchTrainer::Train() {
  if (graph_->train_nodes().empty() && options_.train_nodes.empty()) {
    return Status::InvalidArgument("graph has no training split");
  }
  if (graph_->labels().empty() && !graph_->is_multi_label()) {
    return Status::InvalidArgument("graph has no supervision");
  }

  AdamOptimizer::Options adam;
  adam.learning_rate = options_.learning_rate;
  adam.weight_decay = options_.weight_decay;
  AdamOptimizer optimizer(model_->Parameters(), adam);

  Rng rng(options_.seed);
  std::vector<NodeId> order = options_.train_nodes.empty()
                                  ? graph_->train_nodes()
                                  : options_.train_nodes;
  for (NodeId v : order) {
    if (v < 0 || v >= graph_->num_nodes()) {
      return Status::InvalidArgument("training node out of range");
    }
  }
  TrainReport report;
  for (std::int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // Fisher-Yates reshuffle per epoch, seeded -> reproducible runs.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(
          rng.NextBounded(static_cast<std::uint64_t>(i)));
      std::swap(order[i - 1], order[j]);
    }
    double epoch_loss = 0.0;
    std::int64_t batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(options_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), begin + static_cast<std::size_t>(options_.batch_size));
      // Deduplicate within the batch: the sampler requires distinct
      // targets (the power-law split can draw repeats).
      std::vector<NodeId> batch(order.begin() + static_cast<std::ptrdiff_t>(
                                                    begin),
                                order.begin() + static_cast<std::ptrdiff_t>(
                                                    end));
      std::sort(batch.begin(), batch.end());
      batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
      const double loss = TrainStep(batch, &rng);
      epoch_loss += loss;
      ++batches;
      ++report.steps;
      optimizer.Step();
    }
    epoch_loss /= std::max<std::int64_t>(1, batches);
    report.epoch_losses.push_back(epoch_loss);
    report.final_loss = epoch_loss;
    if (options_.verbose) {
      INFERTURBO_LOG(Info) << "epoch " << epoch << " loss " << epoch_loss;
    }
  }
  return report;
}

double MiniBatchTrainer::TrainStep(std::span<const NodeId> targets, Rng* rng) {
  KHopOptions khop;
  khop.hops = model_->num_layers();
  khop.fanout = options_.fanout;
  const Subgraph sub = sampler_.Sample(targets, khop, rng);

  ag::VarPtr h = ag::Constant(sub.features);
  for (std::int64_t l = 0; l < model_->num_layers(); ++l) {
    h = model_->layer(l).ForwardAg(
        h, sub.src_local, sub.dst_local, sub.num_nodes(),
        sub.edge_features.empty() ? nullptr : &sub.edge_features);
  }
  // Head over the batch targets only (local indices [0, num_targets)).
  std::vector<std::int64_t> target_rows(
      static_cast<std::size_t>(sub.num_targets));
  std::iota(target_rows.begin(), target_rows.end(), 0);
  ag::VarPtr target_states = ag::GatherRows(h, target_rows);
  ag::VarPtr logits = model_->PredictLogitsAg(target_states);

  ag::VarPtr loss;
  if (graph_->is_multi_label()) {
    Tensor targets_rows(sub.num_targets, graph_->multi_labels().cols());
    for (std::int64_t i = 0; i < sub.num_targets; ++i) {
      targets_rows.SetRow(
          i, graph_->multi_labels().RowPtr(sub.nodes[static_cast<std::size_t>(
                 i)]));
    }
    loss = ag::SigmoidBceLoss(logits, targets_rows);
  } else {
    std::vector<std::int64_t> labels(static_cast<std::size_t>(
        sub.num_targets));
    for (std::int64_t i = 0; i < sub.num_targets; ++i) {
      labels[static_cast<std::size_t>(i)] =
          graph_->labels()[static_cast<std::size_t>(
              sub.nodes[static_cast<std::size_t>(i)])];
    }
    loss = ag::SoftmaxCrossEntropyLoss(logits, labels);
  }
  ag::Backward(loss);
  return loss->value.At(0, 0);
}

}  // namespace inferturbo
