#ifndef INFERTURBO_NN_EDGE_SAGE_CONV_H_
#define INFERTURBO_NN_EDGE_SAGE_CONV_H_

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// GraphSAGE-style convolution whose messages carry *edge features* —
/// the paper's full message signature m = M(h_v, h_u, e_vu) (§II-B) and
/// its Fig. 3 `apply_edge = Merge(message, edge_state)`:
///
///   m_uv  = [h_u || e_uv]                (apply_edge: concat merge)
///   agg_v = mean_{u->v} m_uv             (aggregate: kMean, lawful)
///   h'_v  = act(W_self h_v + W_nbr agg_v + b)
///
/// Because the message differs per out-edge, broadcastable_messages is
/// false — the broadcast strategy cannot compress it (the situation the
/// paper built shadow-nodes for) — while partial-gather still applies.
class EdgeSageConv : public GasConv {
 public:
  EdgeSageConv(std::int64_t input_dim, std::int64_t edge_feature_dim,
               std::int64_t output_dim, bool activation, Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  /// Concatenates each message row with its edge's feature row.
  Tensor ApplyEdge(const Tensor& messages,
                   const Tensor* edge_features) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

 private:
  LayerSignature signature_;
  bool activation_;
  std::int64_t edge_feature_dim_;
  ag::VarPtr w_self_;
  ag::VarPtr w_nbr_;  ///< ((input_dim + edge_feature_dim) × output_dim)
  ag::VarPtr bias_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_EDGE_SAGE_CONV_H_
