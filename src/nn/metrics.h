#ifndef INFERTURBO_NN_METRICS_H_
#define INFERTURBO_NN_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace inferturbo {

/// Fraction of rows whose argmax matches the label.
double Accuracy(const Tensor& logits, std::span<const std::int64_t> labels);

/// Accuracy restricted to `nodes` (logits rows indexed by node id).
double AccuracyOn(const Tensor& logits, std::span<const std::int64_t> labels,
                  std::span<const std::int64_t> nodes);

/// Micro-averaged F1 for multi-label outputs: a label is predicted
/// when its logit is positive (sigmoid > 0.5). This is the PPI metric.
double MicroF1(const Tensor& logits, const Tensor& targets);

/// MicroF1 restricted to `nodes`.
double MicroF1On(const Tensor& logits, const Tensor& targets,
                 std::span<const std::int64_t> nodes);

}  // namespace inferturbo

#endif  // INFERTURBO_NN_METRICS_H_
