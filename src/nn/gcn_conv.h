#ifndef INFERTURBO_NN_GCN_CONV_H_
#define INFERTURBO_NN_GCN_CONV_H_

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// GCN-style convolution in the GAS-like abstraction, using mean
/// normalization over the closed in-neighborhood:
///
///   h'_v = act( W · mean({h_u : u -> v} ∪ {h_v}) + b )
///
/// (The original GCN's symmetric sqrt-degree normalization needs both
/// endpoints' degrees on every edge; the mean form keeps the aggregate
/// a lawful monoid — the property the paper's aggregate stage requires —
/// and is the variant common in industrial full-batch deployments.)
class GcnConv : public GasConv {
 public:
  GcnConv(std::int64_t input_dim, std::int64_t output_dim, bool activation,
          Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

 private:
  LayerSignature signature_;
  bool activation_;
  ag::VarPtr weight_;
  ag::VarPtr bias_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_GCN_CONV_H_
