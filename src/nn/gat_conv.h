#ifndef INFERTURBO_NN_GAT_CONV_H_
#define INFERTURBO_NN_GAT_CONV_H_

#include <vector>

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// Multi-head graph attention (GAT) in the GAS-like abstraction,
/// following the paper's Fig. 3 GATConv: attention breaks the
/// commutative/associative rule, so
///
///   aggregate  = union of raw messages       (@Gather(partial=False))
///   apply_node = per-head segment softmax over in-edges, then a
///                weighted sum, heads concatenated
///   apply_edge = identity; the message a node scatters is
///                [W h_src || a_src·(W h_src) per head], identical on
///                every out-edge -> still broadcastable.
class GatConv : public GasConv {
 public:
  /// Output dim is heads * head_dim (heads concatenated).
  GatConv(std::int64_t input_dim, std::int64_t head_dim, std::int64_t heads,
          bool activation, Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

  std::int64_t heads() const { return heads_; }
  std::int64_t head_dim() const { return head_dim_; }

  /// LeakyReLU slope used on attention logits (0.2, as in the GAT
  /// paper).
  static constexpr float kAttnSlope = 0.2f;

 private:
  LayerSignature signature_;
  bool activation_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  ag::VarPtr weight_;                  ///< (in × heads*head_dim)
  std::vector<ag::VarPtr> attn_src_;   ///< per head: (head_dim × 1)
  std::vector<ag::VarPtr> attn_dst_;   ///< per head: (head_dim × 1)
  ag::VarPtr bias_;                    ///< (1 × heads*head_dim)
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_GAT_CONV_H_
