#ifndef INFERTURBO_NN_GIN_CONV_H_
#define INFERTURBO_NN_GIN_CONV_H_

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"

namespace inferturbo {

/// Graph Isomorphism Network (GIN, Xu et al. 2019) convolution in the
/// GAS-like abstraction:
///
///   h'_v = MLP( (1 + eps) * h_v + Σ_{u->v} h_u )
///
/// The aggregate is a plain *sum* — the canonical lawful monoid — so
/// this layer exercises the kSum partial-gather/combiner path end to
/// end (SAGE/GCN use mean, GAT uses union). `eps` is a trainable
/// scalar, as in the original paper. The MLP is Linear-ReLU-Linear.
class GinConv : public GasConv {
 public:
  GinConv(std::int64_t input_dim, std::int64_t output_dim, bool activation,
          Rng* rng);

  const LayerSignature& signature() const override { return signature_; }

  Tensor ComputeMessage(const Tensor& node_states) const override;
  Tensor ApplyNode(const Tensor& node_states,
                   const GatherResult& gathered) const override;

  ag::VarPtr ForwardAg(const ag::VarPtr& h,
                       std::span<const std::int64_t> src_index,
                       std::span<const std::int64_t> dst_index,
                       std::int64_t num_nodes,
                       const Tensor* edge_features) const override;
  std::vector<ag::VarPtr> Parameters() const override;

 private:
  LayerSignature signature_;
  bool activation_;
  ag::VarPtr eps_;  ///< 1x1 trainable epsilon
  ag::VarPtr w1_;
  ag::VarPtr b1_;
  ag::VarPtr w2_;
  ag::VarPtr b2_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_GIN_CONV_H_
