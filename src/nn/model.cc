#include "src/nn/model.h"

#include <cstdio>
#include <fstream>

#include "src/common/logging.h"
#include "src/nn/edge_sage_conv.h"
#include "src/nn/gat_conv.h"
#include "src/nn/gcn_conv.h"
#include "src/nn/gin_conv.h"
#include "src/nn/pool_sage_conv.h"
#include "src/nn/sage_conv.h"
#include "src/tensor/ops.h"

namespace inferturbo {

GnnModel::GnnModel(std::vector<std::unique_ptr<GasConv>> layers,
                   std::int64_t num_classes, Rng* rng)
    : layers_(std::move(layers)), num_classes_(num_classes) {
  INFERTURBO_CHECK(!layers_.empty()) << "GnnModel needs at least one layer";
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    INFERTURBO_CHECK(layers_[i - 1]->signature().output_dim ==
                     layers_[i]->signature().input_dim)
        << "layer " << i << " input dim mismatch";
  }
  const std::int64_t emb = layers_.back()->signature().output_dim;
  head_weight_ = ag::Param(Tensor::GlorotUniform(emb, num_classes, rng));
  head_bias_ = ag::Param(Tensor::Zeros(1, num_classes));
}

Tensor GnnModel::PredictLogits(const Tensor& final_states) const {
  return AddRowBroadcast(MatMul(final_states, head_weight_->value),
                         head_bias_->value);
}

ag::VarPtr GnnModel::PredictLogitsAg(const ag::VarPtr& final_states) const {
  return ag::AddRowBroadcast(ag::MatMul(final_states, head_weight_),
                             head_bias_);
}

std::vector<ag::VarPtr> GnnModel::Parameters() const {
  std::vector<ag::VarPtr> params;
  for (const auto& layer : layers_) {
    const std::vector<ag::VarPtr> lp = layer->Parameters();
    params.insert(params.end(), lp.begin(), lp.end());
  }
  params.push_back(head_weight_);
  params.push_back(head_bias_);
  return params;
}

Status GnnModel::SaveSignatures(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (const auto& layer : layers_) {
    out << layer->signature().Serialize() << "\n";
  }
  out << "head in=" << embedding_dim() << " out=" << num_classes_ << "\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status GnnModel::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  const std::vector<ag::VarPtr> params = Parameters();
  const std::int64_t count = static_cast<std::int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const ag::VarPtr& p : params) {
    const std::int64_t rows = p->value.rows();
    const std::int64_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.ByteSize()));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status GnnModel::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<ag::VarPtr> params = Parameters();
  std::int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != static_cast<std::int64_t>(params.size())) {
    return Status::IoError("parameter count mismatch in " + path);
  }
  for (ag::VarPtr& p : params) {
    std::int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows != p->value.rows() || cols != p->value.cols()) {
      return Status::IoError("parameter shape mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.ByteSize()));
    if (!in) return Status::IoError("truncated parameter file " + path);
  }
  return Status::OK();
}

namespace {

std::vector<std::int64_t> LayerDims(const ModelConfig& config) {
  std::vector<std::int64_t> dims;
  dims.push_back(config.input_dim);
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    dims.push_back(config.hidden_dim);
  }
  return dims;
}

}  // namespace

std::unique_ptr<GnnModel> MakeSageModel(const ModelConfig& config) {
  Rng rng(config.seed);
  const std::vector<std::int64_t> dims = LayerDims(config);
  std::vector<std::unique_ptr<GasConv>> layers;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<SageConv>(
        dims[static_cast<std::size_t>(i)],
        dims[static_cast<std::size_t>(i) + 1], /*activation=*/true, &rng));
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

std::unique_ptr<GnnModel> MakeGcnModel(const ModelConfig& config) {
  Rng rng(config.seed);
  const std::vector<std::int64_t> dims = LayerDims(config);
  std::vector<std::unique_ptr<GasConv>> layers;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<GcnConv>(
        dims[static_cast<std::size_t>(i)],
        dims[static_cast<std::size_t>(i) + 1], /*activation=*/true, &rng));
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

std::unique_ptr<GnnModel> MakeGatModel(const ModelConfig& config) {
  Rng rng(config.seed);
  INFERTURBO_CHECK(config.hidden_dim % config.heads == 0)
      << "GAT hidden_dim must be divisible by heads";
  const std::int64_t head_dim = config.hidden_dim / config.heads;
  std::vector<std::unique_ptr<GasConv>> layers;
  std::int64_t in = config.input_dim;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<GatConv>(in, head_dim, config.heads,
                                               /*activation=*/true, &rng));
    in = config.hidden_dim;
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

std::unique_ptr<GnnModel> MakeGinModel(const ModelConfig& config) {
  Rng rng(config.seed);
  const std::vector<std::int64_t> dims = LayerDims(config);
  std::vector<std::unique_ptr<GasConv>> layers;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<GinConv>(
        dims[static_cast<std::size_t>(i)],
        dims[static_cast<std::size_t>(i) + 1], /*activation=*/true, &rng));
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

std::unique_ptr<GnnModel> MakePoolSageModel(const ModelConfig& config) {
  Rng rng(config.seed);
  const std::vector<std::int64_t> dims = LayerDims(config);
  std::vector<std::unique_ptr<GasConv>> layers;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<PoolSageConv>(
        dims[static_cast<std::size_t>(i)],
        dims[static_cast<std::size_t>(i) + 1], /*activation=*/true, &rng));
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

std::unique_ptr<GnnModel> MakeEdgeSageModel(const ModelConfig& config) {
  Rng rng(config.seed);
  INFERTURBO_CHECK(config.edge_feature_dim > 0)
      << "edge_sage needs config.edge_feature_dim";
  const std::vector<std::int64_t> dims = LayerDims(config);
  std::vector<std::unique_ptr<GasConv>> layers;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers.push_back(std::make_unique<EdgeSageConv>(
        dims[static_cast<std::size_t>(i)], config.edge_feature_dim,
        dims[static_cast<std::size_t>(i) + 1], /*activation=*/true, &rng));
  }
  return std::make_unique<GnnModel>(std::move(layers), config.num_classes,
                                    &rng);
}

Result<std::unique_ptr<GnnModel>> MakeModel(const std::string& kind,
                                            const ModelConfig& config) {
  if (kind == "sage") return MakeSageModel(config);
  if (kind == "gcn") return MakeGcnModel(config);
  if (kind == "gat") return MakeGatModel(config);
  if (kind == "gin") return MakeGinModel(config);
  if (kind == "pool_sage") return MakePoolSageModel(config);
  if (kind == "edge_sage") return MakeEdgeSageModel(config);
  return Status::InvalidArgument("unknown model kind: '" + kind + "'");
}

}  // namespace inferturbo
