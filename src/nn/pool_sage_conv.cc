#include "src/nn/pool_sage_conv.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

PoolSageConv::PoolSageConv(std::int64_t input_dim, std::int64_t output_dim,
                           bool activation, Rng* rng)
    : activation_(activation),
      w_pool_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      b_pool_(ag::Param(Tensor::Zeros(1, output_dim))),
      w_self_(ag::Param(Tensor::GlorotUniform(input_dim, output_dim, rng))),
      w_nbr_(ag::Param(Tensor::GlorotUniform(output_dim, output_dim, rng))),
      bias_(ag::Param(Tensor::Zeros(1, output_dim))) {
  signature_.layer_type = "pool_sage";
  signature_.agg_kind = AggKind::kMax;
  signature_.input_dim = input_dim;
  signature_.output_dim = output_dim;
  // The pooled message is the *transformed* source state.
  signature_.message_dim = output_dim;
  signature_.partial_gather = true;
  signature_.broadcastable_messages = true;
}

Tensor PoolSageConv::ComputeMessage(const Tensor& node_states) const {
  INFERTURBO_CHECK(node_states.cols() == signature_.input_dim)
      << "PoolSageConv message input dim mismatch";
  return Relu(AddRowBroadcast(MatMul(node_states, w_pool_->value),
                              b_pool_->value));
}

Tensor PoolSageConv::ApplyNode(const Tensor& node_states,
                               const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kMax)
      << "PoolSageConv expects max-gathered messages";
  Tensor out = MatMul(node_states, w_self_->value);
  AddInPlace(&out, MatMul(gathered.pooled, w_nbr_->value));
  out = AddRowBroadcast(out, bias_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr PoolSageConv::ForwardAg(const ag::VarPtr& h,
                                   std::span<const std::int64_t> src_index,
                                   std::span<const std::int64_t> dst_index,
                                   std::int64_t num_nodes,
                                   const Tensor* edge_features) const {
  (void)edge_features;
  ag::VarPtr transformed = ag::Relu(
      ag::AddRowBroadcast(ag::MatMul(h, w_pool_), b_pool_));
  ag::VarPtr messages = ag::GatherRows(
      transformed,
      std::vector<std::int64_t>(src_index.begin(), src_index.end()));
  ag::VarPtr pooled = ag::SegmentMax(
      messages, std::vector<std::int64_t>(dst_index.begin(), dst_index.end()),
      num_nodes);
  ag::VarPtr out = ag::AddRowBroadcast(
      ag::Add(ag::MatMul(h, w_self_), ag::MatMul(pooled, w_nbr_)), bias_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> PoolSageConv::Parameters() const {
  return {w_pool_, b_pool_, w_self_, w_nbr_, bias_};
}

}  // namespace inferturbo
