#include "src/nn/metrics.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

double Accuracy(const Tensor& logits, std::span<const std::int64_t> labels) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(labels.size()) == logits.rows())
      << "Accuracy label count mismatch";
  if (logits.rows() == 0) return 0.0;
  const std::vector<std::int64_t> preds = ArgmaxRows(logits);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double AccuracyOn(const Tensor& logits, std::span<const std::int64_t> labels,
                  std::span<const std::int64_t> nodes) {
  if (nodes.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t v : nodes) {
    const float* row = logits.RowPtr(v);
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(v)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

namespace {

double MicroF1FromCounts(std::int64_t tp, std::int64_t fp, std::int64_t fn) {
  const double denom = static_cast<double>(2 * tp + fp + fn);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(tp) / denom;
}

}  // namespace

double MicroF1(const Tensor& logits, const Tensor& targets) {
  INFERTURBO_CHECK(logits.rows() == targets.rows() &&
                   logits.cols() == targets.cols())
      << "MicroF1 shape mismatch";
  std::int64_t tp = 0, fp = 0, fn = 0;
  const float* pl = logits.data();
  const float* pt = targets.data();
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const bool pred = pl[i] > 0.0f;
    const bool truth = pt[i] > 0.5f;
    if (pred && truth) ++tp;
    if (pred && !truth) ++fp;
    if (!pred && truth) ++fn;
  }
  return MicroF1FromCounts(tp, fp, fn);
}

double MicroF1On(const Tensor& logits, const Tensor& targets,
                 std::span<const std::int64_t> nodes) {
  std::int64_t tp = 0, fp = 0, fn = 0;
  for (std::int64_t v : nodes) {
    const float* pl = logits.RowPtr(v);
    const float* pt = targets.RowPtr(v);
    for (std::int64_t j = 0; j < logits.cols(); ++j) {
      const bool pred = pl[j] > 0.0f;
      const bool truth = pt[j] > 0.5f;
      if (pred && truth) ++tp;
      if (pred && !truth) ++fp;
      if (!pred && truth) ++fn;
    }
  }
  return MicroF1FromCounts(tp, fp, fn);
}

}  // namespace inferturbo
