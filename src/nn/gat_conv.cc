#include "src/nn/gat_conv.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"

namespace inferturbo {

GatConv::GatConv(std::int64_t input_dim, std::int64_t head_dim,
                 std::int64_t heads, bool activation, Rng* rng)
    : activation_(activation),
      heads_(heads),
      head_dim_(head_dim),
      weight_(
          ag::Param(Tensor::GlorotUniform(input_dim, heads * head_dim, rng))),
      bias_(ag::Param(Tensor::Zeros(1, heads * head_dim))) {
  for (std::int64_t h = 0; h < heads; ++h) {
    attn_src_.push_back(ag::Param(Tensor::GlorotUniform(head_dim, 1, rng)));
    attn_dst_.push_back(ag::Param(Tensor::GlorotUniform(head_dim, 1, rng)));
  }
  signature_.layer_type = "gat";
  signature_.agg_kind = AggKind::kUnion;
  signature_.input_dim = input_dim;
  signature_.output_dim = heads * head_dim;
  // Message = transformed state (heads*head_dim) plus one source-side
  // attention logit per head.
  signature_.message_dim = heads * head_dim + heads;
  signature_.partial_gather = false;  // @Gather(partial=False)
  signature_.broadcastable_messages = true;
}

Tensor GatConv::ComputeMessage(const Tensor& node_states) const {
  INFERTURBO_CHECK(node_states.cols() == signature_.input_dim)
      << "GatConv message input dim " << node_states.cols() << " expected "
      << signature_.input_dim;
  const Tensor z = MatMul(node_states, weight_->value);  // (n × H*D)
  Tensor message(node_states.rows(), signature_.message_dim);
  for (std::int64_t r = 0; r < z.rows(); ++r) {
    const float* pz = z.RowPtr(r);
    float* pm = message.RowPtr(r);
    for (std::int64_t j = 0; j < z.cols(); ++j) pm[j] = pz[j];
    for (std::int64_t h = 0; h < heads_; ++h) {
      const float* a = attn_src_[static_cast<std::size_t>(h)]->value.data();
      float s = 0.0f;
      for (std::int64_t d = 0; d < head_dim_; ++d) {
        s += pz[h * head_dim_ + d] * a[d];
      }
      pm[z.cols() + h] = s;
    }
  }
  return message;
}

Tensor GatConv::ApplyNode(const Tensor& node_states,
                          const GatherResult& gathered) const {
  INFERTURBO_CHECK(gathered.kind == AggKind::kUnion)
      << "GatConv expects union-gathered messages";
  const std::int64_t n = node_states.rows();
  const std::int64_t zcols = heads_ * head_dim_;
  const Tensor& messages = gathered.messages;  // (E × H*D + H)
  const std::int64_t num_msgs = messages.rows();

  // Destination-side attention logits t[v,h] = a_dst_h · (W h_v)_h.
  const Tensor z_dst = MatMul(node_states, weight_->value);
  Tensor t(n, heads_);
  for (std::int64_t v = 0; v < n; ++v) {
    const float* pz = z_dst.RowPtr(v);
    float* pt = t.RowPtr(v);
    for (std::int64_t h = 0; h < heads_; ++h) {
      const float* a = attn_dst_[static_cast<std::size_t>(h)]->value.data();
      float s = 0.0f;
      for (std::int64_t d = 0; d < head_dim_; ++d) {
        s += pz[h * head_dim_ + d] * a[d];
      }
      pt[h] = s;
    }
  }

  Tensor out(n, zcols);
  // Per head: softmax(LeakyReLU(s_src + t_dst)) over each node's
  // in-messages, then attention-weighted sum of the transformed source
  // states.
  for (std::int64_t h = 0; h < heads_; ++h) {
    Tensor logits(num_msgs, 1);
    for (std::int64_t e = 0; e < num_msgs; ++e) {
      const float raw =
          messages.At(e, zcols + h) +
          t.At(gathered.dst_index[static_cast<std::size_t>(e)], h);
      logits.At(e, 0) = raw > 0.0f ? raw : kAttnSlope * raw;
    }
    const Tensor alpha = SegmentSoftmax(logits, gathered.dst_index, n);
    for (std::int64_t e = 0; e < num_msgs; ++e) {
      const std::int64_t v = gathered.dst_index[static_cast<std::size_t>(e)];
      const float w = alpha.At(e, 0);
      const float* pm = messages.RowPtr(e) + h * head_dim_;
      float* po = out.RowPtr(v) + h * head_dim_;
      for (std::int64_t d = 0; d < head_dim_; ++d) po[d] += w * pm[d];
    }
  }
  // Nodes with no in-edges fall back to their own transformed state, so
  // isolated nodes still carry signal (standard self-attention escape).
  for (std::int64_t v = 0; v < n; ++v) {
    if (gathered.counts[static_cast<std::size_t>(v)] == 0) {
      out.SetRow(v, z_dst.RowPtr(v));
    }
  }
  out = AddRowBroadcast(out, bias_->value);
  return activation_ ? Relu(out) : out;
}

ag::VarPtr GatConv::ForwardAg(const ag::VarPtr& h,
                              std::span<const std::int64_t> src_index,
                              std::span<const std::int64_t> dst_index,
                              std::int64_t num_nodes,
                              const Tensor* edge_features) const {
  (void)edge_features;
  std::vector<std::int64_t> src(src_index.begin(), src_index.end());
  std::vector<std::int64_t> dst(dst_index.begin(), dst_index.end());
  ag::VarPtr z = ag::MatMul(h, weight_);              // (n × H*D)
  ag::VarPtr z_src = ag::GatherRows(z, src);          // (E × H*D)
  ag::VarPtr z_dst = ag::GatherRows(z, dst);          // (E × H*D)

  // Per-node in-degree for the isolated-node fallback below.
  const std::vector<std::int64_t> counts = SegmentCounts(dst, num_nodes);
  Tensor isolated(num_nodes, 1);
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    isolated.At(v, 0) =
        counts[static_cast<std::size_t>(v)] == 0 ? 1.0f : 0.0f;
  }
  ag::VarPtr isolated_mask = ag::Constant(std::move(isolated));

  ag::VarPtr out;
  for (std::int64_t head = 0; head < heads_; ++head) {
    ag::VarPtr zh_src =
        ag::SliceCols(z_src, head * head_dim_, (head + 1) * head_dim_);
    ag::VarPtr zh_dst =
        ag::SliceCols(z_dst, head * head_dim_, (head + 1) * head_dim_);
    ag::VarPtr logits = ag::LeakyRelu(
        ag::Add(ag::MatMul(zh_src, attn_src_[static_cast<std::size_t>(head)]),
                ag::MatMul(zh_dst,
                           attn_dst_[static_cast<std::size_t>(head)])),
        kAttnSlope);
    ag::VarPtr alpha = ag::SegmentSoftmax(logits, dst, num_nodes);
    ag::VarPtr weighted = ag::MulColBroadcast(zh_src, alpha);
    ag::VarPtr pooled = ag::SegmentSum(weighted, dst, num_nodes);
    // Isolated nodes: pooled is zero there; add their own transformed
    // state masked in.
    ag::VarPtr zh =
        ag::SliceCols(z, head * head_dim_, (head + 1) * head_dim_);
    pooled = ag::Add(pooled, ag::MulColBroadcast(zh, isolated_mask));
    out = out ? ag::ConcatCols(out, pooled) : pooled;
  }
  out = ag::AddRowBroadcast(out, bias_);
  return activation_ ? ag::Relu(out) : out;
}

std::vector<ag::VarPtr> GatConv::Parameters() const {
  std::vector<ag::VarPtr> params{weight_, bias_};
  params.insert(params.end(), attn_src_.begin(), attn_src_.end());
  params.insert(params.end(), attn_dst_.begin(), attn_dst_.end());
  return params;
}

}  // namespace inferturbo
