#ifndef INFERTURBO_NN_TRAINER_H_
#define INFERTURBO_NN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/nn/model.h"
#include "src/sampling/khop_sampler.h"

namespace inferturbo {

/// Mini-batch k-hop training — the *training* half of the paper's
/// collaborative setting (mini-batch training + full-batch inference).
/// Each step samples the batch targets' k-hop neighborhoods, runs the
/// layers' training-side computation flow (the same parameters the
/// inference engines read), and applies Adam.
struct TrainerOptions {
  std::int64_t epochs = 20;
  std::int64_t batch_size = 64;
  /// In-neighbor fan-out per hop during training (stochastic, like the
  /// production pipelines the paper describes).
  std::int64_t fanout = 10;
  float learning_rate = 5e-3f;
  float weight_decay = 0.0f;
  std::uint64_t seed = 23;
  bool verbose = false;
  /// When non-empty, train on these nodes instead of the graph's
  /// training split (e.g. graphs loaded from tables, which carry no
  /// splits).
  std::vector<NodeId> train_nodes;
};

struct TrainReport {
  std::int64_t steps = 0;
  double final_loss = 0.0;
  std::vector<double> epoch_losses;
};

class MiniBatchTrainer {
 public:
  MiniBatchTrainer(const Graph* graph, GnnModel* model,
                   TrainerOptions options);

  /// Trains on graph->train_nodes(). Fails if the graph has no
  /// supervision or no training split.
  Result<TrainReport> Train();

 private:
  /// One forward/backward/step over `targets`; returns the batch loss.
  double TrainStep(std::span<const NodeId> targets, Rng* rng);

  const Graph* graph_;
  GnnModel* model_;
  TrainerOptions options_;
  KHopSampler sampler_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_NN_TRAINER_H_
