#include "src/mapreduce/mapreduce_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/common/binary_io.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {
namespace {

std::int64_t InstanceOfKey(std::int64_t key, std::int64_t num_instances) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::int64_t>(h %
                                   static_cast<std::uint64_t>(num_instances));
}

}  // namespace

namespace {

constexpr std::uint32_t kSpillMagic = 0x49545331;  // "ITS1"

/// Binary serialization of a key/value sequence. Format per record:
/// key, tag, src, #floats, floats..., #ids, ids... — little-endian,
/// no alignment padding (read back the same way it was written).
void EncodeRecords(const std::vector<MrKeyValue>& block, BinaryWriter* out) {
  out->PutU64(block.size());
  for (const MrKeyValue& kv : block) {
    out->PutI64(kv.first);
    out->PutI32(kv.second.tag);
    out->PutI64(kv.second.src);
    out->PutFloats(kv.second.floats);
    out->PutI64s(kv.second.ids);
  }
}

/// Inverse of EncodeRecords. Every length prefix is bounds-checked, so
/// a truncated or bit-flipped buffer becomes an IoError, never UB.
Status DecodeRecords(BinaryReader* in, std::vector<MrKeyValue>* block) {
  std::uint64_t count = 0;
  INFERTURBO_RETURN_NOT_OK(in->GetU64(&count));
  // A record is at least key + tag + src + two empty length prefixes.
  constexpr std::uint64_t kMinRecordBytes =
      sizeof(std::int64_t) * 2 + sizeof(std::int32_t) +
      sizeof(std::uint64_t) * 2;
  if (count > in->remaining() / kMinRecordBytes + 1) {
    return Status::IoError("corrupt record count " + std::to_string(count) +
                           " exceeds remaining " +
                           std::to_string(in->remaining()) + " bytes");
  }
  block->clear();
  block->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MrKeyValue kv;
    INFERTURBO_RETURN_NOT_OK(in->GetI64(&kv.first));
    INFERTURBO_RETURN_NOT_OK(in->GetI32(&kv.second.tag));
    INFERTURBO_RETURN_NOT_OK(in->GetI64(&kv.second.src));
    INFERTURBO_RETURN_NOT_OK(in->GetFloats(&kv.second.floats));
    INFERTURBO_RETURN_NOT_OK(in->GetI64s(&kv.second.ids));
    block->push_back(std::move(kv));
  }
  return Status::OK();
}

/// One spill block on disk: magic, records, trailing CRC32 over
/// everything before it — the end-to-end integrity check that turns
/// torn writes, short reads, and bit flips into detectable errors.
std::string EncodeBlock(const std::vector<MrKeyValue>& block) {
  BinaryWriter out;
  out.PutU32(kSpillMagic);
  EncodeRecords(block, &out);
  const std::uint32_t crc = Crc32(out.buffer());
  out.PutU32(crc);
  return out.Take();
}

Status DecodeBlock(const std::string& file, const std::string& path,
                   std::vector<MrKeyValue>* block) {
  if (file.size() < sizeof(std::uint32_t) * 2) {
    return Status::IoError("spill block too short (" +
                           std::to_string(file.size()) + " bytes): " + path);
  }
  const std::string_view body(file.data(),
                              file.size() - sizeof(std::uint32_t));
  std::uint32_t stored = 0;
  std::memcpy(&stored, file.data() + body.size(), sizeof(stored));
  const std::uint32_t actual = Crc32(body);
  if (stored != actual) {
    return Status::IoError("spill block checksum mismatch for " + path +
                           " (stored " + std::to_string(stored) +
                           ", computed " + std::to_string(actual) + ")");
  }
  BinaryReader in(body);
  std::uint32_t magic = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU32(&magic));
  if (magic != kSpillMagic) {
    return Status::IoError("bad spill block magic in " + path);
  }
  INFERTURBO_RETURN_NOT_OK(DecodeRecords(&in, block));
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after spill records in " + path);
  }
  return Status::OK();
}

}  // namespace

std::int64_t MapReduceJob::InstanceForKey(std::int64_t key,
                                          std::int64_t num_instances) {
  return InstanceOfKey(key, num_instances);
}

std::string MapReduceJob::SpillPath(std::int64_t stage,
                                    std::int64_t producer,
                                    std::int64_t reducer,
                                    int attempt) const {
  std::string path = options_.spill_directory + "/stage" +
                     std::to_string(stage) + "_p" + std::to_string(producer) +
                     "_r" + std::to_string(reducer);
  if (attempt >= 0) path += "_a" + std::to_string(attempt);
  return path + ".blk";
}

Status MapReduceJob::PromoteSpillBlocks(
    std::int64_t stage, const std::vector<int>& winning_attempt) {
  // An attempt id is bounded by 1 original + max_task_retries retries +
  // 1 speculative backup.
  const int attempt_cap = options_.supervisor->options().max_task_retries + 2;
  const std::int64_t n = options_.num_instances;
  for (std::int64_t p = 0; p < n; ++p) {
    const int winner = winning_attempt[static_cast<std::size_t>(p)];
    for (std::int64_t r = 0; r < n; ++r) {
      for (int a = 0; a < attempt_cap; ++a) {
        if (a == winner) continue;
        std::remove(SpillPath(stage, p, r, a).c_str());  // loser cleanup
      }
      const std::string src = SpillPath(stage, p, r, winner);
      if (!std::ifstream(src).good()) continue;  // empty block: no file
      const std::string dst = SpillPath(stage, p, r);
      if (std::rename(src.c_str(), dst.c_str()) != 0) {
        return Status::IoError("cannot promote committed spill block " + src +
                               " to " + dst);
      }
    }
  }
  return Status::OK();
}

MapReduceJob::MapReduceJob(Options options) : options_(options) {
  INFERTURBO_CHECK(options_.num_instances > 0)
      << "MapReduceJob needs instances";
  dataflow_.resize(static_cast<std::size_t>(options_.num_instances));
  metrics_.cost_model = options_.cost_model;
  metrics_.workers.resize(static_cast<std::size_t>(options_.num_instances));
}

Status MapReduceJob::RunMap(const MapFn& map_fn) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));
  TraceSpan stage_span("mr/map_stage");
  // Attempt-local map task: everything lands in *m / *out; publication
  // to dataflow_ happens at the caller (unsupervised: immediately;
  // supervised: only for the winning attempt).
  const auto run_map_task = [&](std::size_t i, WorkerStepMetrics* m,
                                std::vector<MrKeyValue>* out) {
    TraceSpan span("mr/map", static_cast<std::int64_t>(i));
    MrEmitter emitter;
    WallTimer timer;
    map_fn(static_cast<std::int64_t>(i), &emitter);
    m->busy_seconds = timer.ElapsedSeconds();
    m->records_out = static_cast<std::int64_t>(emitter.buffer().size());
    *out = std::move(emitter.buffer());
    if (MetricsEnabled()) {
      static Histogram* hist =
          GlobalMetrics().GetHistogram("mr.map_seconds");
      hist->Observe(m->busy_seconds);
    }
  };
  if (options_.supervisor != nullptr) {
    const TaskStage map_stage{TaskStageKind::kMrMap, metrics_.num_steps()};
    INFERTURBO_ASSIGN_OR_RETURN(
        const StageResult stage_result,
        options_.supervisor->RunStage(
            map_stage, static_cast<std::size_t>(n),
            [&](TaskAttempt* attempt) {
              WorkerStepMetrics local_metrics;
              std::vector<MrKeyValue> local_out;
              run_map_task(attempt->task(), &local_metrics, &local_out);
              if (attempt->TryCommit()) {
                dataflow_[attempt->task()] = std::move(local_out);
                step[attempt->task()] = local_metrics;
              }
              return Status::OK();
            }));
    (void)stage_result;
  } else {
    pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t i) {
      run_map_task(i, &step[i], &dataflow_[i]);
    });
  }
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
  return Status::OK();
}

Status MapReduceJob::RunReduce(const ReduceFn& reduce_fn,
                               const CombineFn* combiner) {
  TaskSupervisor* const supervisor = options_.supervisor;
  const bool supervised = supervisor != nullptr;
  // First error wins; the other tasks finish their current work and
  // the round is abandoned (ParallelFor has no cancellation). Only the
  // unsupervised paths use it — the supervisor returns errors itself.
  std::mutex error_mu;
  Status first_error = Status::OK();
  const auto record_error = [&error_mu, &first_error](const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok()) first_error = s;
  };
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));

  // --- producer side: partition by destination, combine, account,
  // and (when spilling) write this attempt's blocks out --------------
  // outgoing[p][r] = p's records for reducer r, key-grouped.
  std::vector<std::vector<std::vector<MrKeyValue>>> outgoing(
      static_cast<std::size_t>(n));
  TraceSpan stage_span("mr/reduce_stage");
  const std::int64_t spill_stage = metrics_.num_steps();
  const bool spill = !options_.spill_directory.empty();
  std::atomic<std::uint64_t> written{0};
  std::atomic<std::int64_t> write_retries{0};
  // Producer task body. Attempt-local under supervision: the resident
  // dataflow is only read (copied), never drained, so a retried or
  // duplicate attempt sees the same immutable inputs; spill blocks go
  // to attempt-scoped paths and only the winner's are promoted.
  const auto produce =
      [&](std::size_t p, int attempt,
          std::vector<std::vector<MrKeyValue>>* out, WorkerStepMetrics* m,
          std::uint64_t* bytes_spilled,
          std::int64_t* spill_retries) -> Status {
    TraceSpan span("mr/shuffle_partition", static_cast<std::int64_t>(p));
    WallTimer timer;
    out->assign(static_cast<std::size_t>(n), {});
    // Group this producer's pairs by destination reducer, preserving
    // emission order within each destination.
    if (supervised) {
      for (const MrKeyValue& kv : dataflow_[p]) {
        (*out)[static_cast<std::size_t>(InstanceOfKey(kv.first, n))]
            .push_back(kv);
      }
    } else {
      for (MrKeyValue& kv : dataflow_[p]) {
        (*out)[static_cast<std::size_t>(InstanceOfKey(kv.first, n))]
            .push_back(std::move(kv));
      }
      dataflow_[p].clear();
    }
    if (combiner != nullptr) {
      // Map-side combine: within one (producer, reducer) block, fold
      // same-key runs. Stable sort keeps values in emission order.
      for (auto& block : *out) {
        std::stable_sort(block.begin(), block.end(),
                         [](const MrKeyValue& a, const MrKeyValue& b) {
                           return a.first < b.first;
                         });
        std::vector<MrKeyValue> combined;
        combined.reserve(block.size());
        std::vector<MrValue> run;
        for (std::size_t i = 0; i < block.size();) {
          const std::int64_t key = block[i].first;
          run.clear();
          while (i < block.size() && block[i].first == key) {
            run.push_back(std::move(block[i].second));
            ++i;
          }
          (*combiner)(key, &run);
          for (MrValue& v : run) combined.emplace_back(key, std::move(v));
        }
        block = std::move(combined);
      }
    }
    // Shuffle-write accounting: every record leaves through external
    // storage, local or not.
    for (const auto& block : *out) {
      for (const MrKeyValue& kv : block) {
        m->bytes_out += kv.second.WireBytes();
        ++m->records_out;
      }
    }
    m->busy_seconds += timer.ElapsedSeconds();
    if (spill) {
      // Producers write their blocks out and release the memory; the
      // reducer half reads them back — the dataflow never lives fully
      // in RAM, which is the MR backend's §IV-C2 selling point. Each
      // block is CRC-framed and lands atomically (temp + rename);
      // transient injected faults are retried with backoff and counted.
      TraceSpan write_span("mr/spill_write", static_cast<std::int64_t>(p));
      for (std::int64_t r = 0; r < n; ++r) {
        auto& block = (*out)[static_cast<std::size_t>(r)];
        if (block.empty()) continue;
        const std::string encoded = EncodeBlock(block);
        std::int64_t retries = 0;
        const Status status = WriteFileAtomic(
            SpillPath(spill_stage, static_cast<std::int64_t>(p), r, attempt),
            encoded, options_.fault_injector, options_.retry, &retries);
        *spill_retries += retries;
        if (!status.ok()) return status;
        *bytes_spilled += encoded.size();
        block.clear();
        block.shrink_to_fit();
      }
    }
    return Status::OK();
  };

  if (supervised) {
    const TaskStage shuffle_stage{TaskStageKind::kMrShuffle, spill_stage};
    INFERTURBO_ASSIGN_OR_RETURN(
        const StageResult shuffle_result,
        supervisor->RunStage(
            shuffle_stage, static_cast<std::size_t>(n),
            [&](TaskAttempt* attempt) -> Status {
              std::vector<std::vector<MrKeyValue>> local_out;
              WorkerStepMetrics local_metrics;
              std::uint64_t local_bytes = 0;
              std::int64_t local_retries = 0;
              INFERTURBO_RETURN_NOT_OK(
                  produce(attempt->task(), attempt->attempt(), &local_out,
                          &local_metrics, &local_bytes, &local_retries));
              if (attempt->TryCommit()) {
                // Only the winner's work enters the books, so counters
                // stay deterministic; loser attempts' blocks are
                // deleted by PromoteSpillBlocks below.
                outgoing[attempt->task()] = std::move(local_out);
                step[attempt->task()] = local_metrics;
                written.fetch_add(local_bytes);
                write_retries.fetch_add(local_retries);
              }
              return Status::OK();
            }));
    // The stage committed everywhere; the copied inputs can go now.
    for (auto& flow : dataflow_) flow.clear();
    if (spill) {
      INFERTURBO_RETURN_NOT_OK(
          PromoteSpillBlocks(spill_stage, shuffle_result.committed_attempt));
    }
  } else {
    pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t p) {
      std::uint64_t local_bytes = 0;
      std::int64_t local_retries = 0;
      const Status status = produce(p, /*attempt=*/-1, &outgoing[p], &step[p],
                                    &local_bytes, &local_retries);
      written.fetch_add(local_bytes);
      write_retries.fetch_add(local_retries);
      if (!status.ok()) record_error(status);
    });
  }
  if (spill) {
    spill_bytes_written_ += written.load();
    metrics_.spill_write_retries += write_retries.load();
    if (MetricsEnabled()) {
      GlobalMetrics().GetCounter("mr.spill_bytes_written")
          ->Add(static_cast<std::int64_t>(written.load()));
    }
  }
  if (!first_error.ok()) return first_error;

  // --- reducer side: read, sort, reduce ------------------------------
  const std::int64_t stage = metrics_.num_steps();
  std::atomic<std::int64_t> failures{0};
  std::atomic<std::int64_t> read_retries{0};
  std::vector<std::vector<MrKeyValue>> next_dataflow(
      static_cast<std::size_t>(n));
  const auto run_reduce_task =
      [&](std::size_t r, std::vector<MrKeyValue>* out, WorkerStepMetrics* m,
          std::int64_t* injected_failures,
          std::int64_t* local_read_retries) -> Status {
    WallTimer timer;
    // Gather blocks from producers in id order, then a stable sort by
    // key: values for one key arrive in (producer, emission) order —
    // the determinism contract.
    std::vector<MrKeyValue> incoming;
    {
    TraceSpan shuffle_span("mr/shuffle_read", static_cast<std::int64_t>(r));
    std::size_t total = 0;
    for (std::int64_t p = 0; p < n; ++p) {
      total += outgoing[static_cast<std::size_t>(p)][r].size();
    }
    incoming.reserve(total);
    for (std::int64_t p = 0; p < n; ++p) {
      std::vector<MrKeyValue> from_disk;
      std::vector<MrKeyValue>* block =
          &outgoing[static_cast<std::size_t>(p)][r];
      if (spill) {
        const std::string path =
            SpillPath(spill_stage, p, static_cast<std::int64_t>(r));
        if (std::ifstream(path).good()) {
          // Read + length/checksum verify + decode as one retried unit:
          // a transient short read or bit flip fails validation and the
          // retry re-reads healthy bytes; a persistent fault surfaces
          // as a descriptive Status, never a crash or silent
          // corruption.
          std::int64_t retries = 0;
          const Status status = RetryWithBackoff(
              options_.retry,
              [&] {
                INFERTURBO_ASSIGN_OR_RETURN(
                    const std::string file,
                    ReadFileToString(path, options_.fault_injector));
                return DecodeBlock(file, path, &from_disk);
              },
              &retries);
          *local_read_retries += retries;
          if (!status.ok()) return status;
          // Supervised attempts must leave the durable shuffle input
          // in place — a retried or duplicate attempt re-reads it; the
          // files are retired once every reduce task has committed.
          if (!supervised) std::remove(path.c_str());
          block = &from_disk;
        }
      }
      // A supervised attempt may share `outgoing` with a concurrent
      // duplicate of itself — copy instead of draining.
      const bool shared_input = supervised && block != &from_disk;
      for (MrKeyValue& kv : *block) {
        m->bytes_in += kv.second.WireBytes();
        ++m->records_in;
        if (shared_input) {
          incoming.push_back(kv);
        } else {
          incoming.push_back(std::move(kv));
        }
      }
    }
    std::stable_sort(incoming.begin(), incoming.end(),
                     [](const MrKeyValue& a, const MrKeyValue& b) {
                       return a.first < b.first;
                     });
    }
    // Shuffle inputs are durable: a failed task (injected) is simply
    // re-executed over the same inputs; the wasted attempt's time is
    // charged. Reduce functions are pure w.r.t. the dataflow, so
    // re-execution is exact — MapReduce's fault-tolerance model.
    std::int64_t attempts_left = 1;
    while (options_.failure_injector &&
           options_.failure_injector(stage, static_cast<std::int64_t>(r))) {
      ++attempts_left;
      ++*injected_failures;
      if (attempts_left > 10) {
        return Status::Aborted(
            "failure injector never stopped firing for reduce task " +
            std::to_string(r) + " in stage " + std::to_string(stage) +
            " (gave up after 10 attempts)");
      }
    }
    MrEmitter emitter;
    TraceSpan reduce_span("mr/reduce", static_cast<std::int64_t>(r));
    for (std::int64_t attempt = 0; attempt < attempts_left; ++attempt) {
      const bool last_attempt = attempt + 1 == attempts_left;
      emitter.buffer().clear();
      std::vector<MrValue> run;
      for (std::size_t i = 0; i < incoming.size();) {
        const std::int64_t key = incoming[i].first;
        run.clear();
        std::uint64_t run_bytes = 0;
        while (i < incoming.size() && incoming[i].first == key) {
          run_bytes += incoming[i].second.WireBytes();
          if (last_attempt) {
            run.push_back(std::move(incoming[i].second));
          } else {
            run.push_back(incoming[i].second);  // keep inputs durable
          }
          ++i;
        }
        // Streaming execution model: one key group resident at a time
        // (sort/merge spills to external storage on a real deployment),
        // which is the backend's low-memory selling point.
        m->peak_resident_bytes = std::max(m->peak_resident_bytes, run_bytes);
        reduce_fn(key, run, &emitter);
      }
    }
    *out = std::move(emitter.buffer());
    m->busy_seconds += timer.ElapsedSeconds();
    if (MetricsEnabled()) {
      static Histogram* hist =
          GlobalMetrics().GetHistogram("mr.reduce_seconds");
      hist->Observe(m->busy_seconds);
    }
    return Status::OK();
  };

  if (supervised) {
    const TaskStage reduce_stage{TaskStageKind::kMrReduce, stage};
    INFERTURBO_ASSIGN_OR_RETURN(
        const StageResult reduce_result,
        supervisor->RunStage(
            reduce_stage, static_cast<std::size_t>(n),
            [&](TaskAttempt* attempt) -> Status {
              std::vector<MrKeyValue> local_out;
              WorkerStepMetrics local_metrics;
              std::int64_t local_failures = 0;
              std::int64_t local_retries = 0;
              INFERTURBO_RETURN_NOT_OK(
                  run_reduce_task(attempt->task(), &local_out, &local_metrics,
                                  &local_failures, &local_retries));
              if (attempt->TryCommit()) {
                next_dataflow[attempt->task()] = std::move(local_out);
                WorkerStepMetrics& s = step[attempt->task()];
                s.bytes_in += local_metrics.bytes_in;
                s.records_in += local_metrics.records_in;
                s.busy_seconds += local_metrics.busy_seconds;
                s.peak_resident_bytes = std::max(
                    s.peak_resident_bytes, local_metrics.peak_resident_bytes);
                failures.fetch_add(local_failures);
                read_retries.fetch_add(local_retries);
              }
              return Status::OK();
            }));
    (void)reduce_result;
    if (spill) {
      // Every reduce task committed; retire the round's durable inputs.
      for (std::int64_t p = 0; p < n; ++p) {
        for (std::int64_t r = 0; r < n; ++r) {
          std::remove(SpillPath(spill_stage, p, r).c_str());
        }
      }
    }
  } else {
    pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t r) {
      std::int64_t local_failures = 0;
      std::int64_t local_retries = 0;
      const Status status = run_reduce_task(r, &next_dataflow[r], &step[r],
                                            &local_failures, &local_retries);
      failures.fetch_add(local_failures);
      read_retries.fetch_add(local_retries);
      if (!status.ok()) record_error(status);
    });
  }
  failures_recovered_ += failures.load();
  metrics_.spill_read_retries += read_retries.load();
  if (!first_error.ok()) return first_error;

  dataflow_ = std::move(next_dataflow);
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
  return Status::OK();
}

std::string MapReduceJob::SerializeDataflow() const {
  BinaryWriter out;
  out.PutI64(options_.num_instances);
  for (const auto& flow : dataflow_) EncodeRecords(flow, &out);
  return out.Take();
}

Status MapReduceJob::RestoreDataflow(std::string_view bytes) {
  BinaryReader in(bytes);
  std::int64_t instances = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetI64(&instances));
  if (instances != options_.num_instances) {
    return Status::IoError(
        "checkpointed dataflow has " + std::to_string(instances) +
        " instances, job has " + std::to_string(options_.num_instances));
  }
  std::vector<std::vector<MrKeyValue>> restored(
      static_cast<std::size_t>(instances));
  for (auto& flow : restored) {
    INFERTURBO_RETURN_NOT_OK(DecodeRecords(&in, &flow));
  }
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after checkpointed dataflow");
  }
  dataflow_ = std::move(restored);
  return Status::OK();
}

std::vector<MrKeyValue> MapReduceJob::TakeOutputs() {
  std::vector<MrKeyValue> out;
  std::size_t total = 0;
  for (const auto& flow : dataflow_) total += flow.size();
  out.reserve(total);
  for (auto& flow : dataflow_) {
    for (MrKeyValue& kv : flow) out.push_back(std::move(kv));
    flow.clear();
  }
  return out;
}

}  // namespace inferturbo
