#include "src/mapreduce/mapreduce_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/common/binary_io.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {
namespace {

std::int64_t InstanceOfKey(std::int64_t key, std::int64_t num_instances) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::int64_t>(h %
                                   static_cast<std::uint64_t>(num_instances));
}

}  // namespace

namespace {

constexpr std::uint32_t kSpillMagic = 0x49545331;  // "ITS1"

/// Binary serialization of a key/value sequence. Format per record:
/// key, tag, src, #floats, floats..., #ids, ids... — little-endian,
/// no alignment padding (read back the same way it was written).
void EncodeRecords(const std::vector<MrKeyValue>& block, BinaryWriter* out) {
  out->PutU64(block.size());
  for (const MrKeyValue& kv : block) {
    out->PutI64(kv.first);
    out->PutI32(kv.second.tag);
    out->PutI64(kv.second.src);
    out->PutFloats(kv.second.floats);
    out->PutI64s(kv.second.ids);
  }
}

/// Inverse of EncodeRecords. Every length prefix is bounds-checked, so
/// a truncated or bit-flipped buffer becomes an IoError, never UB.
Status DecodeRecords(BinaryReader* in, std::vector<MrKeyValue>* block) {
  std::uint64_t count = 0;
  INFERTURBO_RETURN_NOT_OK(in->GetU64(&count));
  // A record is at least key + tag + src + two empty length prefixes.
  constexpr std::uint64_t kMinRecordBytes =
      sizeof(std::int64_t) * 2 + sizeof(std::int32_t) +
      sizeof(std::uint64_t) * 2;
  if (count > in->remaining() / kMinRecordBytes + 1) {
    return Status::IoError("corrupt record count " + std::to_string(count) +
                           " exceeds remaining " +
                           std::to_string(in->remaining()) + " bytes");
  }
  block->clear();
  block->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MrKeyValue kv;
    INFERTURBO_RETURN_NOT_OK(in->GetI64(&kv.first));
    INFERTURBO_RETURN_NOT_OK(in->GetI32(&kv.second.tag));
    INFERTURBO_RETURN_NOT_OK(in->GetI64(&kv.second.src));
    INFERTURBO_RETURN_NOT_OK(in->GetFloats(&kv.second.floats));
    INFERTURBO_RETURN_NOT_OK(in->GetI64s(&kv.second.ids));
    block->push_back(std::move(kv));
  }
  return Status::OK();
}

/// One spill block on disk: magic, records, trailing CRC32 over
/// everything before it — the end-to-end integrity check that turns
/// torn writes, short reads, and bit flips into detectable errors.
std::string EncodeBlock(const std::vector<MrKeyValue>& block) {
  BinaryWriter out;
  out.PutU32(kSpillMagic);
  EncodeRecords(block, &out);
  const std::uint32_t crc = Crc32(out.buffer());
  out.PutU32(crc);
  return out.Take();
}

Status DecodeBlock(const std::string& file, const std::string& path,
                   std::vector<MrKeyValue>* block) {
  if (file.size() < sizeof(std::uint32_t) * 2) {
    return Status::IoError("spill block too short (" +
                           std::to_string(file.size()) + " bytes): " + path);
  }
  const std::string_view body(file.data(),
                              file.size() - sizeof(std::uint32_t));
  std::uint32_t stored = 0;
  std::memcpy(&stored, file.data() + body.size(), sizeof(stored));
  const std::uint32_t actual = Crc32(body);
  if (stored != actual) {
    return Status::IoError("spill block checksum mismatch for " + path +
                           " (stored " + std::to_string(stored) +
                           ", computed " + std::to_string(actual) + ")");
  }
  BinaryReader in(body);
  std::uint32_t magic = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU32(&magic));
  if (magic != kSpillMagic) {
    return Status::IoError("bad spill block magic in " + path);
  }
  INFERTURBO_RETURN_NOT_OK(DecodeRecords(&in, block));
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after spill records in " + path);
  }
  return Status::OK();
}

}  // namespace

std::int64_t MapReduceJob::InstanceForKey(std::int64_t key,
                                          std::int64_t num_instances) {
  return InstanceOfKey(key, num_instances);
}

std::string MapReduceJob::SpillPath(std::int64_t stage,
                                    std::int64_t producer,
                                    std::int64_t reducer) const {
  return options_.spill_directory + "/stage" + std::to_string(stage) +
         "_p" + std::to_string(producer) + "_r" + std::to_string(reducer) +
         ".blk";
}

MapReduceJob::MapReduceJob(Options options) : options_(options) {
  INFERTURBO_CHECK(options_.num_instances > 0)
      << "MapReduceJob needs instances";
  dataflow_.resize(static_cast<std::size_t>(options_.num_instances));
  metrics_.cost_model = options_.cost_model;
  metrics_.workers.resize(static_cast<std::size_t>(options_.num_instances));
}

void MapReduceJob::RunMap(const MapFn& map_fn) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));
  TraceSpan stage_span("mr/map_stage");
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t i) {
    TraceSpan span("mr/map", static_cast<std::int64_t>(i));
    MrEmitter emitter;
    WallTimer timer;
    map_fn(static_cast<std::int64_t>(i), &emitter);
    step[i].busy_seconds = timer.ElapsedSeconds();
    step[i].records_out = static_cast<std::int64_t>(emitter.buffer().size());
    dataflow_[i] = std::move(emitter.buffer());
    if (MetricsEnabled()) {
      static Histogram* hist =
          GlobalMetrics().GetHistogram("mr.map_seconds");
      hist->Observe(step[i].busy_seconds);
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
}

Status MapReduceJob::RunReduce(const ReduceFn& reduce_fn,
                               const CombineFn* combiner) {
  // First error wins; the other tasks finish their current work and
  // the round is abandoned (ParallelFor has no cancellation).
  std::mutex error_mu;
  Status first_error = Status::OK();
  const auto record_error = [&error_mu, &first_error](const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok()) first_error = s;
  };
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));

  // --- producer side: partition by destination, combine, account ----
  // sorted_outgoing[p][r] = p's records for reducer r, key-grouped.
  std::vector<std::vector<std::vector<MrKeyValue>>> outgoing(
      static_cast<std::size_t>(n));
  TraceSpan stage_span("mr/reduce_stage");
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t p) {
    TraceSpan span("mr/shuffle_partition", static_cast<std::int64_t>(p));
    WallTimer timer;
    outgoing[p].resize(static_cast<std::size_t>(n));
    // Group this producer's pairs by destination reducer, preserving
    // emission order within each destination.
    for (MrKeyValue& kv : dataflow_[p]) {
      outgoing[p][static_cast<std::size_t>(InstanceOfKey(kv.first, n))]
          .push_back(std::move(kv));
    }
    dataflow_[p].clear();
    if (combiner != nullptr) {
      // Map-side combine: within one (producer, reducer) block, fold
      // same-key runs. Stable sort keeps values in emission order.
      for (auto& block : outgoing[p]) {
        std::stable_sort(block.begin(), block.end(),
                         [](const MrKeyValue& a, const MrKeyValue& b) {
                           return a.first < b.first;
                         });
        std::vector<MrKeyValue> combined;
        combined.reserve(block.size());
        std::vector<MrValue> run;
        for (std::size_t i = 0; i < block.size();) {
          const std::int64_t key = block[i].first;
          run.clear();
          while (i < block.size() && block[i].first == key) {
            run.push_back(std::move(block[i].second));
            ++i;
          }
          (*combiner)(key, &run);
          for (MrValue& v : run) combined.emplace_back(key, std::move(v));
        }
        block = std::move(combined);
      }
    }
    // Shuffle-write accounting: every record leaves through external
    // storage, local or not.
    for (const auto& block : outgoing[p]) {
      for (const MrKeyValue& kv : block) {
        step[p].bytes_out += kv.second.WireBytes();
        ++step[p].records_out;
      }
    }
    step[p].busy_seconds += timer.ElapsedSeconds();
  });

  // --- optional external-storage hop ---------------------------------
  const std::int64_t spill_stage = metrics_.num_steps();
  const bool spill = !options_.spill_directory.empty();
  if (spill) {
    // Producers write their blocks out and release the memory; the
    // reducer half reads them back — the dataflow never lives fully in
    // RAM, which is the MR backend's §IV-C2 selling point. Each block
    // is CRC-framed and lands atomically (temp + rename); transient
    // injected faults are retried with backoff and counted.
    std::atomic<std::uint64_t> written{0};
    std::atomic<std::int64_t> write_retries{0};
    pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t p) {
      TraceSpan span("mr/spill_write", static_cast<std::int64_t>(p));
      for (std::int64_t r = 0; r < n; ++r) {
        auto& block = outgoing[p][static_cast<std::size_t>(r)];
        if (block.empty()) continue;
        const std::string encoded = EncodeBlock(block);
        std::int64_t retries = 0;
        const Status status = WriteFileAtomic(
            SpillPath(spill_stage, static_cast<std::int64_t>(p), r), encoded,
            options_.fault_injector, options_.retry, &retries);
        write_retries.fetch_add(retries);
        if (!status.ok()) {
          record_error(status);
          return;
        }
        written.fetch_add(encoded.size());
        block.clear();
        block.shrink_to_fit();
      }
    });
    spill_bytes_written_ += written.load();
    metrics_.spill_write_retries += write_retries.load();
    if (MetricsEnabled()) {
      GlobalMetrics().GetCounter("mr.spill_bytes_written")
          ->Add(static_cast<std::int64_t>(written.load()));
    }
    if (!first_error.ok()) return first_error;
  }

  // --- reducer side: read, sort, reduce ------------------------------
  const std::int64_t stage = metrics_.num_steps();
  std::atomic<std::int64_t> failures{0};
  std::atomic<std::int64_t> read_retries{0};
  std::vector<std::vector<MrKeyValue>> next_dataflow(
      static_cast<std::size_t>(n));
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t r) {
    WallTimer timer;
    // Gather blocks from producers in id order, then a stable sort by
    // key: values for one key arrive in (producer, emission) order —
    // the determinism contract.
    std::vector<MrKeyValue> incoming;
    {
    TraceSpan shuffle_span("mr/shuffle_read", static_cast<std::int64_t>(r));
    std::size_t total = 0;
    for (std::int64_t p = 0; p < n; ++p) {
      total += outgoing[static_cast<std::size_t>(p)][r].size();
    }
    incoming.reserve(total);
    for (std::int64_t p = 0; p < n; ++p) {
      std::vector<MrKeyValue> from_disk;
      std::vector<MrKeyValue>* block =
          &outgoing[static_cast<std::size_t>(p)][r];
      if (spill) {
        const std::string path =
            SpillPath(spill_stage, p, static_cast<std::int64_t>(r));
        if (std::ifstream(path).good()) {
          // Read + length/checksum verify + decode as one retried unit:
          // a transient short read or bit flip fails validation and the
          // retry re-reads healthy bytes; a persistent fault surfaces
          // as a descriptive Status, never a crash or silent
          // corruption.
          std::int64_t retries = 0;
          const Status status = RetryWithBackoff(
              options_.retry,
              [&] {
                INFERTURBO_ASSIGN_OR_RETURN(
                    const std::string file,
                    ReadFileToString(path, options_.fault_injector));
                return DecodeBlock(file, path, &from_disk);
              },
              &retries);
          read_retries.fetch_add(retries);
          if (!status.ok()) {
            record_error(status);
            return;
          }
          std::remove(path.c_str());
          block = &from_disk;
        }
      }
      for (MrKeyValue& kv : *block) {
        step[r].bytes_in += kv.second.WireBytes();
        ++step[r].records_in;
        incoming.push_back(std::move(kv));
      }
    }
    std::stable_sort(incoming.begin(), incoming.end(),
                     [](const MrKeyValue& a, const MrKeyValue& b) {
                       return a.first < b.first;
                     });
    }
    // Shuffle inputs are durable: a failed task (injected) is simply
    // re-executed over the same inputs; the wasted attempt's time is
    // charged. Reduce functions are pure w.r.t. the dataflow, so
    // re-execution is exact — MapReduce's fault-tolerance model.
    std::int64_t attempts_left = 1;
    while (options_.failure_injector &&
           options_.failure_injector(stage, static_cast<std::int64_t>(r))) {
      ++attempts_left;
      failures.fetch_add(1);
      if (attempts_left > 10) {
        record_error(Status::Aborted(
            "failure injector never stopped firing for reduce task " +
            std::to_string(r) + " in stage " + std::to_string(stage) +
            " (gave up after 10 attempts)"));
        return;
      }
    }
    MrEmitter emitter;
    TraceSpan reduce_span("mr/reduce", static_cast<std::int64_t>(r));
    for (std::int64_t attempt = 0; attempt < attempts_left; ++attempt) {
      const bool last_attempt = attempt + 1 == attempts_left;
      emitter.buffer().clear();
      std::vector<MrValue> run;
      for (std::size_t i = 0; i < incoming.size();) {
        const std::int64_t key = incoming[i].first;
        run.clear();
        std::uint64_t run_bytes = 0;
        while (i < incoming.size() && incoming[i].first == key) {
          run_bytes += incoming[i].second.WireBytes();
          if (last_attempt) {
            run.push_back(std::move(incoming[i].second));
          } else {
            run.push_back(incoming[i].second);  // keep inputs durable
          }
          ++i;
        }
        // Streaming execution model: one key group resident at a time
        // (sort/merge spills to external storage on a real deployment),
        // which is the backend's low-memory selling point.
        step[r].peak_resident_bytes =
            std::max(step[r].peak_resident_bytes, run_bytes);
        reduce_fn(key, run, &emitter);
      }
    }
    next_dataflow[r] = std::move(emitter.buffer());
    step[r].busy_seconds += timer.ElapsedSeconds();
    if (MetricsEnabled()) {
      static Histogram* hist =
          GlobalMetrics().GetHistogram("mr.reduce_seconds");
      hist->Observe(step[r].busy_seconds);
    }
  });
  failures_recovered_ += failures.load();
  metrics_.spill_read_retries += read_retries.load();
  if (!first_error.ok()) return first_error;

  dataflow_ = std::move(next_dataflow);
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
  return Status::OK();
}

std::string MapReduceJob::SerializeDataflow() const {
  BinaryWriter out;
  out.PutI64(options_.num_instances);
  for (const auto& flow : dataflow_) EncodeRecords(flow, &out);
  return out.Take();
}

Status MapReduceJob::RestoreDataflow(std::string_view bytes) {
  BinaryReader in(bytes);
  std::int64_t instances = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetI64(&instances));
  if (instances != options_.num_instances) {
    return Status::IoError(
        "checkpointed dataflow has " + std::to_string(instances) +
        " instances, job has " + std::to_string(options_.num_instances));
  }
  std::vector<std::vector<MrKeyValue>> restored(
      static_cast<std::size_t>(instances));
  for (auto& flow : restored) {
    INFERTURBO_RETURN_NOT_OK(DecodeRecords(&in, &flow));
  }
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after checkpointed dataflow");
  }
  dataflow_ = std::move(restored);
  return Status::OK();
}

std::vector<MrKeyValue> MapReduceJob::TakeOutputs() {
  std::vector<MrKeyValue> out;
  std::size_t total = 0;
  for (const auto& flow : dataflow_) total += flow.size();
  out.reserve(total);
  for (auto& flow : dataflow_) {
    for (MrKeyValue& kv : flow) out.push_back(std::move(kv));
    flow.clear();
  }
  return out;
}

}  // namespace inferturbo
