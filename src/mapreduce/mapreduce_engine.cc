#include "src/mapreduce/mapreduce_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/common/timer.h"

namespace inferturbo {
namespace {

std::int64_t InstanceOfKey(std::int64_t key, std::int64_t num_instances) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::int64_t>(h %
                                   static_cast<std::uint64_t>(num_instances));
}

}  // namespace

namespace {

/// Binary (de)serialization of one shuffle block. Format per record:
/// key, tag, src, #floats, floats..., #ids, ids... — little-endian,
/// no alignment padding (read back the same way it was written).
void WriteBlock(const std::string& path,
                const std::vector<MrKeyValue>& block,
                std::uint64_t* bytes_written) {
  std::ofstream out(path, std::ios::binary);
  INFERTURBO_CHECK(out.good()) << "cannot open spill file " << path;
  const auto put = [&out](const void* data, std::size_t size) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  };
  const std::uint64_t count = block.size();
  put(&count, sizeof(count));
  for (const MrKeyValue& kv : block) {
    put(&kv.first, sizeof(kv.first));
    put(&kv.second.tag, sizeof(kv.second.tag));
    put(&kv.second.src, sizeof(kv.second.src));
    const std::uint64_t nf = kv.second.floats.size();
    put(&nf, sizeof(nf));
    put(kv.second.floats.data(), nf * sizeof(float));
    const std::uint64_t ni = kv.second.ids.size();
    put(&ni, sizeof(ni));
    put(kv.second.ids.data(), ni * sizeof(std::int64_t));
  }
  INFERTURBO_CHECK(out.good()) << "spill write failed for " << path;
  *bytes_written += static_cast<std::uint64_t>(out.tellp());
}

std::vector<MrKeyValue> ReadBlock(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  INFERTURBO_CHECK(in.good()) << "cannot open spill file " << path;
  const auto get = [&in, &path](void* data, std::size_t size) {
    in.read(reinterpret_cast<char*>(data),
            static_cast<std::streamsize>(size));
    INFERTURBO_CHECK(in.good()) << "truncated spill file " << path;
  };
  std::uint64_t count = 0;
  get(&count, sizeof(count));
  std::vector<MrKeyValue> block(count);
  for (MrKeyValue& kv : block) {
    get(&kv.first, sizeof(kv.first));
    get(&kv.second.tag, sizeof(kv.second.tag));
    get(&kv.second.src, sizeof(kv.second.src));
    std::uint64_t nf = 0;
    get(&nf, sizeof(nf));
    kv.second.floats.resize(nf);
    if (nf > 0) get(kv.second.floats.data(), nf * sizeof(float));
    std::uint64_t ni = 0;
    get(&ni, sizeof(ni));
    kv.second.ids.resize(ni);
    if (ni > 0) get(kv.second.ids.data(), ni * sizeof(std::int64_t));
  }
  return block;
}

}  // namespace

std::int64_t MapReduceJob::InstanceForKey(std::int64_t key,
                                          std::int64_t num_instances) {
  return InstanceOfKey(key, num_instances);
}

std::string MapReduceJob::SpillPath(std::int64_t stage,
                                    std::int64_t producer,
                                    std::int64_t reducer) const {
  return options_.spill_directory + "/stage" + std::to_string(stage) +
         "_p" + std::to_string(producer) + "_r" + std::to_string(reducer) +
         ".blk";
}

MapReduceJob::MapReduceJob(Options options) : options_(options) {
  INFERTURBO_CHECK(options_.num_instances > 0)
      << "MapReduceJob needs instances";
  dataflow_.resize(static_cast<std::size_t>(options_.num_instances));
  metrics_.cost_model = options_.cost_model;
  metrics_.workers.resize(static_cast<std::size_t>(options_.num_instances));
}

void MapReduceJob::RunMap(const MapFn& map_fn) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t i) {
    MrEmitter emitter;
    WallTimer timer;
    map_fn(static_cast<std::int64_t>(i), &emitter);
    step[i].busy_seconds = timer.ElapsedSeconds();
    step[i].records_out = static_cast<std::int64_t>(emitter.buffer().size());
    dataflow_[i] = std::move(emitter.buffer());
  });
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
}

void MapReduceJob::RunReduce(const ReduceFn& reduce_fn,
                             const CombineFn* combiner) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t n = options_.num_instances;
  std::vector<WorkerStepMetrics> step(static_cast<std::size_t>(n));

  // --- producer side: partition by destination, combine, account ----
  // sorted_outgoing[p][r] = p's records for reducer r, key-grouped.
  std::vector<std::vector<std::vector<MrKeyValue>>> outgoing(
      static_cast<std::size_t>(n));
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t p) {
    WallTimer timer;
    outgoing[p].resize(static_cast<std::size_t>(n));
    // Group this producer's pairs by destination reducer, preserving
    // emission order within each destination.
    for (MrKeyValue& kv : dataflow_[p]) {
      outgoing[p][static_cast<std::size_t>(InstanceOfKey(kv.first, n))]
          .push_back(std::move(kv));
    }
    dataflow_[p].clear();
    if (combiner != nullptr) {
      // Map-side combine: within one (producer, reducer) block, fold
      // same-key runs. Stable sort keeps values in emission order.
      for (auto& block : outgoing[p]) {
        std::stable_sort(block.begin(), block.end(),
                         [](const MrKeyValue& a, const MrKeyValue& b) {
                           return a.first < b.first;
                         });
        std::vector<MrKeyValue> combined;
        combined.reserve(block.size());
        std::vector<MrValue> run;
        for (std::size_t i = 0; i < block.size();) {
          const std::int64_t key = block[i].first;
          run.clear();
          while (i < block.size() && block[i].first == key) {
            run.push_back(std::move(block[i].second));
            ++i;
          }
          (*combiner)(key, &run);
          for (MrValue& v : run) combined.emplace_back(key, std::move(v));
        }
        block = std::move(combined);
      }
    }
    // Shuffle-write accounting: every record leaves through external
    // storage, local or not.
    for (const auto& block : outgoing[p]) {
      for (const MrKeyValue& kv : block) {
        step[p].bytes_out += kv.second.WireBytes();
        ++step[p].records_out;
      }
    }
    step[p].busy_seconds += timer.ElapsedSeconds();
  });

  // --- optional external-storage hop ---------------------------------
  const std::int64_t spill_stage = metrics_.num_steps();
  const bool spill = !options_.spill_directory.empty();
  if (spill) {
    // Producers write their blocks out and release the memory; the
    // reducer half reads them back — the dataflow never lives fully in
    // RAM, which is the MR backend's §IV-C2 selling point.
    std::atomic<std::uint64_t> written{0};
    pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t p) {
      for (std::int64_t r = 0; r < n; ++r) {
        auto& block = outgoing[p][static_cast<std::size_t>(r)];
        if (block.empty()) continue;
        std::uint64_t bytes = 0;
        WriteBlock(SpillPath(spill_stage, static_cast<std::int64_t>(p), r),
                   block, &bytes);
        written.fetch_add(bytes);
        block.clear();
        block.shrink_to_fit();
      }
    });
    spill_bytes_written_ += written.load();
  }

  // --- reducer side: read, sort, reduce ------------------------------
  const std::int64_t stage = metrics_.num_steps();
  std::atomic<std::int64_t> failures{0};
  std::vector<std::vector<MrKeyValue>> next_dataflow(
      static_cast<std::size_t>(n));
  pool.ParallelFor(static_cast<std::size_t>(n), [&](std::size_t r) {
    WallTimer timer;
    // Gather blocks from producers in id order, then a stable sort by
    // key: values for one key arrive in (producer, emission) order —
    // the determinism contract.
    std::vector<MrKeyValue> incoming;
    std::size_t total = 0;
    for (std::int64_t p = 0; p < n; ++p) {
      total += outgoing[static_cast<std::size_t>(p)][r].size();
    }
    incoming.reserve(total);
    for (std::int64_t p = 0; p < n; ++p) {
      std::vector<MrKeyValue> from_disk;
      std::vector<MrKeyValue>* block =
          &outgoing[static_cast<std::size_t>(p)][r];
      if (spill) {
        const std::string path =
            SpillPath(spill_stage, p, static_cast<std::int64_t>(r));
        if (std::ifstream(path).good()) {
          from_disk = ReadBlock(path);
          std::remove(path.c_str());
          block = &from_disk;
        }
      }
      for (MrKeyValue& kv : *block) {
        step[r].bytes_in += kv.second.WireBytes();
        ++step[r].records_in;
        incoming.push_back(std::move(kv));
      }
    }
    std::stable_sort(incoming.begin(), incoming.end(),
                     [](const MrKeyValue& a, const MrKeyValue& b) {
                       return a.first < b.first;
                     });
    // Shuffle inputs are durable: a failed task (injected) is simply
    // re-executed over the same inputs; the wasted attempt's time is
    // charged. Reduce functions are pure w.r.t. the dataflow, so
    // re-execution is exact — MapReduce's fault-tolerance model.
    std::int64_t attempts_left = 1;
    while (options_.failure_injector &&
           options_.failure_injector(stage, static_cast<std::int64_t>(r))) {
      ++attempts_left;
      failures.fetch_add(1);
      INFERTURBO_CHECK(attempts_left <= 10)
          << "failure injector never stopped firing";
    }
    MrEmitter emitter;
    for (std::int64_t attempt = 0; attempt < attempts_left; ++attempt) {
      const bool last_attempt = attempt + 1 == attempts_left;
      emitter.buffer().clear();
      std::vector<MrValue> run;
      for (std::size_t i = 0; i < incoming.size();) {
        const std::int64_t key = incoming[i].first;
        run.clear();
        std::uint64_t run_bytes = 0;
        while (i < incoming.size() && incoming[i].first == key) {
          run_bytes += incoming[i].second.WireBytes();
          if (last_attempt) {
            run.push_back(std::move(incoming[i].second));
          } else {
            run.push_back(incoming[i].second);  // keep inputs durable
          }
          ++i;
        }
        // Streaming execution model: one key group resident at a time
        // (sort/merge spills to external storage on a real deployment),
        // which is the backend's low-memory selling point.
        step[r].peak_resident_bytes =
            std::max(step[r].peak_resident_bytes, run_bytes);
        reduce_fn(key, run, &emitter);
      }
    }
    next_dataflow[r] = std::move(emitter.buffer());
    step[r].busy_seconds += timer.ElapsedSeconds();
  });
  failures_recovered_ += failures.load();

  dataflow_ = std::move(next_dataflow);
  for (std::int64_t i = 0; i < n; ++i) {
    metrics_.workers[static_cast<std::size_t>(i)].steps.push_back(
        step[static_cast<std::size_t>(i)]);
  }
}

std::vector<MrKeyValue> MapReduceJob::TakeOutputs() {
  std::vector<MrKeyValue> out;
  std::size_t total = 0;
  for (const auto& flow : dataflow_) total += flow.size();
  out.reserve(total);
  for (auto& flow : dataflow_) {
    for (MrKeyValue& kv : flow) out.push_back(std::move(kv));
    flow.clear();
  }
  return out;
}

}  // namespace inferturbo
