#ifndef INFERTURBO_MAPREDUCE_MAPREDUCE_ENGINE_H_
#define INFERTURBO_MAPREDUCE_MAPREDUCE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/io_fault.h"
#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/graph/graph.h"
#include "src/pregel/worker_metrics.h"
#include "src/runtime/task_supervisor.h"

namespace inferturbo {

/// A value in the simulated MapReduce dataflow: a tagged record wide
/// enough for everything the InferTurbo-on-MR pipeline ships between
/// rounds — self state, in-edge messages, out-edge adjacency, partial
/// aggregates (paper §IV-C2). The engine treats it as opaque bytes.
struct MrValue {
  /// Driver-defined discriminator (e.g. kSelfState / kInMessage /
  /// kOutEdges).
  std::int32_t tag = 0;
  /// Auxiliary id (message source, mirror origin, ...).
  NodeId src = -1;
  std::vector<float> floats;
  std::vector<std::int64_t> ids;

  /// Serialized size on the simulated shuffle path. Unlike the Pregel
  /// backend, *all* shuffle traffic is charged (MapReduce spills
  /// through external storage even for local destinations).
  std::uint64_t WireBytes() const {
    return kMessageHeaderBytes + sizeof(tag) + sizeof(src) +
           floats.size() * sizeof(float) + ids.size() * sizeof(std::int64_t);
  }
};

using MrKeyValue = std::pair<std::int64_t, MrValue>;

/// Collects emissions from map/reduce functions.
class MrEmitter {
 public:
  void Emit(std::int64_t key, MrValue value) {
    buffer_.emplace_back(key, std::move(value));
  }
  std::vector<MrKeyValue>& buffer() { return buffer_; }

 private:
  std::vector<MrKeyValue> buffer_;
};

/// A simulated elastic MapReduce job: I logical instances each act as
/// mapper and reducer; rounds alternate shuffle (sort by key, values
/// ordered by producing instance) and reduce. Combiners run on the
/// producing side per destination instance — the hook partial-gather
/// plugs into (paper §IV-D).
class MapReduceJob {
 public:
  struct Options {
    std::int64_t num_instances = 8;
    ClusterCostModel cost_model;
    ThreadPool* pool = nullptr;
    /// Simulated task failure: returns true when `instance`'s reduce
    /// task fails in stage `stage` (0 = the map stage, then one per
    /// reduce round). Shuffle inputs are durable, so the engine
    /// re-executes just that task — MapReduce's native fault-tolerance
    /// model — charging the wasted attempt. Fires once per attempt; a
    /// persistent true would retry forever (capped, then fatal).
    std::function<bool(std::int64_t stage, std::int64_t instance)>
        failure_injector;
    /// When non-empty, shuffle blocks are actually serialized to files
    /// under this directory between the producer and reducer halves of
    /// each round — the external-storage dataflow the paper's MR
    /// backend relies on for its low resident memory. Must exist and be
    /// writable. Results are bit-identical to the in-memory path.
    std::string spill_directory;
    /// Optional fault injection on the spill path (and checkpoint
    /// serialization); consulted once per physical attempt.
    IoFaultInjector* fault_injector = nullptr;
    /// Bounded retry + backoff for transient spill I/O faults. Retried
    /// reads/writes are counted in JobMetrics::spill_read_retries /
    /// spill_write_retries; a persistent fault surfaces as an IoError
    /// Status from RunReduce, never a crash or silent corruption.
    IoRetryPolicy retry;
    /// When set, every map/shuffle/reduce task runs under supervision:
    /// per-attempt deadlines, bounded retry with backoff, speculative
    /// backups, and executor quarantine. Tasks then compute into
    /// attempt-local buffers (the resident dataflow stays immutable
    /// until commit) and spill blocks are written under attempt-scoped
    /// names, promoted to their canonical path only for the winning
    /// attempt — any in-budget fault schedule yields bit-identical
    /// results. Not owned; one supervisor may span the whole job so
    /// quarantine decisions persist across rounds.
    TaskSupervisor* supervisor = nullptr;
  };

  /// Called once per instance; the driver reads its own input split.
  using MapFn = std::function<void(std::int64_t instance, MrEmitter*)>;
  /// Called per key with all values for that key (producer order).
  using ReduceFn =
      std::function<void(std::int64_t key, std::span<MrValue> values,
                         MrEmitter*)>;
  /// In-place shrink of same-key values on the producing side.
  using CombineFn =
      std::function<void(std::int64_t key, std::vector<MrValue>* values)>;

  explicit MapReduceJob(Options options);

  /// Stage 1: populate the dataflow from input splits. Always OK
  /// without supervision; under a supervisor it surfaces a retry-
  /// exhausted map task's error instead of crashing.
  Status RunMap(const MapFn& map_fn);

  /// One shuffle+reduce round over the current dataflow; emitted pairs
  /// become the next round's dataflow. `combiner` may be null. Returns
  /// non-OK — never crashes — when a spill block cannot be written or
  /// read back intact after bounded retries (IoError), or when the
  /// failure injector never stops firing (Aborted). On error the
  /// dataflow is left unspecified; the job must be abandoned or resumed
  /// from a durable checkpoint.
  Status RunReduce(const ReduceFn& reduce_fn, const CombineFn* combiner);

  /// Drains the final dataflow (concatenated in instance order).
  std::vector<MrKeyValue> TakeOutputs();

  /// Reduce-task re-executions triggered by the failure injector.
  std::int64_t failures_recovered() const { return failures_recovered_; }

  /// Bytes written to spill files so far (0 when spilling is off).
  std::uint64_t spill_bytes_written() const { return spill_bytes_written_; }

  const JobMetrics& metrics() const { return metrics_; }
  /// Drivers that move data outside the shuffle (e.g. the broadcast
  /// side channel, which models a Spark broadcast variable) account for
  /// it by adjusting the current stage's counters here.
  JobMetrics* mutable_metrics() { return &metrics_; }
  std::int64_t num_instances() const { return options_.num_instances; }

  /// The instance owning a key (stable across stages).
  static std::int64_t InstanceForKey(std::int64_t key,
                                     std::int64_t num_instances);

  /// Bit-exact serialization of the resident dataflow (the key/value
  /// pairs between rounds) for durable round checkpoints.
  std::string SerializeDataflow() const;
  /// Inverse of SerializeDataflow; every length is bounds-checked so
  /// truncated or corrupted bytes surface as IoError, never UB.
  Status RestoreDataflow(std::string_view bytes);

 private:
  /// Canonical spill block path for attempt < 0; attempt-scoped
  /// ("..._aN.blk") otherwise. Supervised producers write under their
  /// attempt's name and the winner's blocks are renamed to the
  /// canonical path at commit, so readers never observe a loser's (or
  /// a half-abandoned attempt's) output.
  std::string SpillPath(std::int64_t stage, std::int64_t producer,
                        std::int64_t reducer, int attempt = -1) const;
  /// Commit protocol for supervised spilling: promote the winning
  /// attempt's blocks to canonical names, delete every other attempt's.
  Status PromoteSpillBlocks(std::int64_t stage,
                            const std::vector<int>& winning_attempt);

  Options options_;
  /// dataflow_[i] = key/value pairs resident on instance i.
  std::vector<std::vector<MrKeyValue>> dataflow_;
  JobMetrics metrics_;
  std::int64_t failures_recovered_ = 0;
  std::uint64_t spill_bytes_written_ = 0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_MAPREDUCE_MAPREDUCE_ENGINE_H_
