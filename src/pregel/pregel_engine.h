#ifndef INFERTURBO_PREGEL_PREGEL_ENGINE_H_
#define INFERTURBO_PREGEL_PREGEL_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/checkpoint/checkpoint_store.h"
#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/gas/message.h"
#include "src/graph/partition.h"
#include "src/pregel/worker_metrics.h"
#include "src/runtime/task_supervisor.h"

namespace inferturbo {

/// A Pregel-like bulk-synchronous graph-processing engine (paper
/// §IV-C1), simulated in-process: N logical workers run a compute
/// function superstep by superstep, exchanging vectorized message
/// batches routed by destination node id through a shared partitioner.
///
/// The engine is model-agnostic — PageRank runs on it in the tests —
/// and provides the three mechanisms InferTurbo builds its strategies
/// on: message *combiners* (partial-gather), a keyed *broadcast board*
/// (the "aggregator" used by the broadcast strategy), and per-worker
/// byte/latency accounting (Figs. 9-13).
class PregelEngine;

/// Per-worker view handed to the compute function each superstep.
class PregelContext {
 public:
  std::int64_t superstep() const { return superstep_; }
  std::int64_t worker_id() const { return worker_id_; }
  std::int64_t num_workers() const;

  /// Message batches addressed to this worker's nodes, in deterministic
  /// (source worker, emission) order. Batches may have different
  /// payload widths (e.g. id-only broadcast references next to dense
  /// rows).
  const std::vector<MessageBatch>& inbox() const { return *inbox_; }

  /// Queues a batch for delivery next superstep; rows are routed to the
  /// workers owning their `dst` ids. Local deliveries are free;
  /// cross-worker rows are charged to both ends' byte counters.
  void SendBatch(MessageBatch batch);

  /// Queues a pre-pooled partial batch (its payload carries a trailing
  /// count column). Routed like SendBatch but flagged so receivers
  /// merge instead of folding count-1 rows.
  void SendPartialBatch(MessageBatch batch);

  /// Publishes a row on the broadcast board under `key`; every worker
  /// can look it up *next* superstep. Charged as one message to every
  /// other worker (the strategy's whole point: cost scales with
  /// #workers, not out-degree).
  void PublishBroadcast(NodeId key, const float* row, std::int64_t width);

  /// Row published under `key` in the previous superstep, or nullptr.
  const std::vector<float>* LookupBroadcast(NodeId key) const;

  /// True when `batch_index` in inbox() is a partial (pre-pooled)
  /// batch.
  bool IsPartialBatch(std::size_t batch_index) const;

  /// Asks to end the job after this superstep; the job stops when every
  /// worker voted in the same superstep.
  void VoteToHalt();

  /// Defers a publication of driver-visible state (node states, output
  /// rows) until the whole superstep's compute stage has committed.
  /// Under supervision this is mandatory for state the compute function
  /// would otherwise mutate in place: duplicate (speculative) attempts
  /// of one worker may run concurrently, and a failed stage re-executes
  /// the superstep from its immutable inputs — both are only safe when
  /// in-place mutation is postponed to the commit point. Callbacks run
  /// on the coordinator thread, in worker order, exactly once per
  /// committed superstep.
  void DeferToCommit(std::function<void()> fn);

  /// Extra accounting hooks (e.g. reading node state from a local
  /// store).
  void ChargeBusySeconds(double seconds);
  /// Reports memory the worker holds resident this superstep (node
  /// states, vectorized gather buffers); folded as a max. The engine
  /// itself already counts the inbox.
  void ChargeResidentBytes(std::uint64_t bytes);

 private:
  friend class PregelEngine;
  PregelEngine* engine_ = nullptr;
  std::int64_t worker_id_ = 0;
  std::int64_t superstep_ = 0;
  const std::vector<MessageBatch>* inbox_ = nullptr;
  std::vector<bool> inbox_partial_;
  // Outgoing, grouped by destination worker.
  struct Outgoing {
    MessageBatch batch;
    bool partial = false;
  };
  std::vector<std::vector<Outgoing>> outbox_;  // [dst_worker] -> batches
  std::vector<std::pair<NodeId, std::vector<float>>> broadcast_out_;
  std::vector<std::function<void()>> commit_callbacks_;
  bool halt_vote_ = false;
  double extra_busy_seconds_ = 0.0;
  std::uint64_t resident_bytes_ = 0;

  void RunCommitCallbacks() {
    for (const std::function<void()>& fn : commit_callbacks_) fn();
    commit_callbacks_.clear();
  }
};

class PregelEngine {
 public:
  struct Options {
    std::int64_t num_workers = 8;
    std::int64_t max_supersteps = 64;
    ClusterCostModel cost_model;
    /// Optional combiner applied to each (source worker, destination
    /// worker) merged batch before it leaves the source — where
    /// partial-gather's sender-side aggregation runs. Its runtime is
    /// charged to the source worker. Returns {batch, is_partial}.
    std::function<std::pair<MessageBatch, bool>(std::int64_t dst_worker,
                                                MessageBatch batch)>
        combiner;
    /// Runs logical workers on this pool (DefaultThreadPool() if null).
    ThreadPool* pool = nullptr;

    // --- fault tolerance (paper §IV: inherited from the substrate) --
    /// Snapshot the engine's in-flight state (plus the driver's, via
    /// the two hooks below) every N supersteps; 0 disables
    /// checkpointing.
    std::int64_t checkpoint_interval = 0;
    /// Captures the driver's mutable state at a checkpoint...
    std::function<std::shared_ptr<const void>()> snapshot_state;
    /// ...and restores it during recovery.
    std::function<void(const std::shared_ptr<const void>&)> restore_state;
    /// Simulated failure: returns true when `worker` crashes in `step`.
    /// The job rolls back to the last checkpoint and replays. The
    /// injector sees each (step, worker) once per execution attempt, so
    /// it must stop firing for the job to finish.
    std::function<bool(std::int64_t step, std::int64_t worker)>
        failure_injector;

    // --- durable checkpoints (cross-process resume) -----------------
    /// When set (with checkpoint_interval > 0), every checkpoint is
    /// also serialized to this store, so a killed *process* — not just
    /// a simulated worker — can resume. Not owned.
    CheckpointStore* checkpoint_store = nullptr;
    /// Serializes the driver's mutable state to bytes for durable
    /// checkpoints...
    std::function<std::string()> serialize_driver;
    /// ...and rebuilds it from bytes during a cross-process resume.
    std::function<Status(const std::string&)> deserialize_driver;
    /// Start Run from the store's newest valid checkpoint instead of
    /// superstep 0 (falls back to a fresh start when the store holds no
    /// loadable checkpoint — the job died before its first one).
    bool resume = false;
    /// Simulated whole-process death for tests: when it returns true
    /// for a superstep, Run aborts with Status::Aborted *after* the
    /// step's durable checkpoint (if due) was written and before its
    /// compute runs — in-memory state is discarded, exactly like a
    /// killed driver.
    std::function<bool(std::int64_t step)> kill_switch;

    // --- task supervision (src/runtime/) ----------------------------
    /// When set, every superstep's compute phase runs as a supervised
    /// stage: per-attempt deadlines, bounded retry with backoff,
    /// speculative backups, and executor quarantine. The compute
    /// function must then follow the deferred-commit contract
    /// (PregelContext::DeferToCommit) for any in-place state mutation.
    /// On per-task retry exhaustion the engine degrades in order:
    /// superstep re-execution from the superstep's immutable inputs
    /// (bounded by the supervisor's max_superstep_reexecutions), then
    /// checkpoint restore, then a clean non-OK Status. Not owned.
    TaskSupervisor* supervisor = nullptr;
  };

  /// `compute` is invoked once per worker per superstep.
  using ComputeFn = std::function<void(PregelContext*)>;

  PregelEngine(Options options, HashPartitioner partitioner);

  /// Runs supersteps until every worker votes to halt in the same step
  /// or max_supersteps is reached. Returns the per-worker accounting.
  /// Replayed supersteps (after an injected failure) appear as extra
  /// metric steps — recovery work is real work. Returns a non-OK
  /// Status — never crashes — when a worker fails with checkpointing
  /// disabled, when the failure injector never stops firing, when a
  /// durable checkpoint cannot be persisted, or when the kill switch
  /// fires (Aborted).
  Result<JobMetrics> Run(const ComputeFn& compute);

  /// Failures recovered during the last Run().
  std::int64_t failures_recovered() const { return failures_recovered_; }

  const HashPartitioner& partitioner() const { return partitioner_; }
  std::int64_t num_workers() const { return options_.num_workers; }

 private:
  friend class PregelContext;

  Options options_;
  HashPartitioner partitioner_;
  // Board published last superstep (read side) and this superstep
  // (write side, merged at the barrier).
  std::unordered_map<NodeId, std::vector<float>> board_current_;
  std::int64_t failures_recovered_ = 0;
};

/// Bit-exact serialization of the engine's in-flight state (inboxes,
/// partial flags, broadcast board) for durable checkpoints. The board
/// is written in sorted key order so the bytes are deterministic.
std::string EncodePregelEngineState(
    const std::vector<std::vector<MessageBatch>>& inboxes,
    const std::vector<std::vector<bool>>& inbox_partial,
    const std::unordered_map<NodeId, std::vector<float>>& board);

/// Inverse of EncodePregelEngineState; every length is bounds-checked
/// so truncated or corrupted bytes surface as IoError, never UB.
Status DecodePregelEngineState(
    std::string_view bytes, std::int64_t num_workers,
    std::vector<std::vector<MessageBatch>>* inboxes,
    std::vector<std::vector<bool>>* inbox_partial,
    std::unordered_map<NodeId, std::vector<float>>* board);

}  // namespace inferturbo

#endif  // INFERTURBO_PREGEL_PREGEL_ENGINE_H_
