#ifndef INFERTURBO_PREGEL_VERTEX_API_H_
#define INFERTURBO_PREGEL_VERTEX_API_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/pregel/pregel_engine.h"

namespace inferturbo {

/// The classic Pregel "think like a vertex" programming model
/// (Malewicz et al. 2010), layered on the vectorized per-partition
/// engine. InferTurbo itself uses the per-partition API (it vectorizes
/// whole partitions into tensors, §IV-C1); this adapter exists for
/// plain graph-processing programs and as executable documentation of
/// how the two models relate.
///
/// Usage:
///   class MyProgram : public VertexProgram {
///     void Compute(VertexContext* ctx) override {
///       if (ctx->superstep() > 0) { ... fold ctx->messages() ... }
///       ctx->SendToAllOutNeighbors(value);
///       ctx->VoteToHalt();
///     }
///   };
///   RunVertexProgram(graph, &program, options);
///
/// Vertex values are fixed-width float vectors (value_width()). A
/// halted vertex is skipped until a message reactivates it — classic
/// semantics, implemented on top of the engine's message-driven
/// termination.
class VertexContext {
 public:
  VertexContext(NodeId vertex, std::int64_t superstep, const Graph* graph,
                std::vector<float>* value,
                const std::vector<std::vector<float>>* messages)
      : vertex_(vertex),
        superstep_(superstep),
        graph_(graph),
        value_(value),
        messages_(messages) {}

  NodeId vertex() const { return vertex_; }
  std::int64_t superstep() const { return superstep_; }
  std::int64_t out_degree() const { return graph_->OutDegree(vertex_); }

  /// Mutable vertex value.
  std::vector<float>& value() { return *value_; }

  /// Messages delivered this superstep (empty at superstep 0).
  const std::vector<std::vector<float>>& messages() const {
    return *messages_;
  }

  /// Queues `payload` for one destination / all out-neighbors.
  void SendTo(NodeId dst, const std::vector<float>& payload) {
    outgoing_.emplace_back(dst, payload);
  }
  void SendToAllOutNeighbors(const std::vector<float>& payload) {
    for (EdgeId e : graph_->OutEdges(vertex_)) {
      outgoing_.emplace_back(graph_->EdgeDst(e), payload);
    }
  }

  /// Classic vote: the vertex becomes inactive until a message arrives.
  void VoteToHalt() { halt_ = true; }

 private:
  friend struct VertexProgramDriver;
  NodeId vertex_;
  std::int64_t superstep_;
  const Graph* graph_;
  std::vector<float>* value_;
  const std::vector<std::vector<float>>* messages_;
  std::vector<std::pair<NodeId, std::vector<float>>> outgoing_;
  bool halt_ = false;
};

class VertexProgram {
 public:
  virtual ~VertexProgram() = default;
  /// Width of the per-vertex value vector.
  virtual std::int64_t value_width() const = 0;
  /// Initial value of a vertex (called once at superstep 0, before the
  /// first Compute).
  virtual std::vector<float> InitialValue(NodeId vertex,
                                          const Graph& graph) const = 0;
  /// The vertex kernel, invoked per active vertex per superstep.
  virtual void Compute(VertexContext* ctx) = 0;
};

struct VertexProgramResult {
  /// Final value per vertex.
  std::vector<std::vector<float>> values;
  JobMetrics metrics;
};

struct VertexProgramOptions {
  std::int64_t num_workers = 8;
  std::int64_t max_supersteps = 50;
  ClusterCostModel cost_model;
};

/// Runs `program` to quiescence (all halted, no messages) or the
/// superstep cap.
VertexProgramResult RunVertexProgram(const Graph& graph,
                                     VertexProgram* program,
                                     const VertexProgramOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_PREGEL_VERTEX_API_H_
