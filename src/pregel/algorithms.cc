#include "src/pregel/algorithms.h"

#include <limits>
#include <mutex>
#include <utility>

#include "src/common/logging.h"
#include "src/pregel/pregel_engine.h"

namespace inferturbo {
namespace {

/// Shared boilerplate: partition assignment + engine construction.
struct AlgorithmRun {
  AlgorithmRun(const Graph& graph, const PregelAlgorithmOptions& options)
      : partitioner(options.num_workers),
        assignment(AssignPartitions(graph.num_nodes(), partitioner)) {
    engine_options.num_workers = options.num_workers;
    engine_options.max_supersteps = options.max_iterations;
    engine_options.cost_model = options.cost_model;
  }

  HashPartitioner partitioner;
  PartitionAssignment assignment;
  PregelEngine::Options engine_options;
};

}  // namespace

std::vector<double> PageRank(const Graph& graph,
                             const PregelAlgorithmOptions& options,
                             double damping, JobMetrics* metrics) {
  AlgorithmRun run(graph, options);
  const std::int64_t n = graph.num_nodes();
  std::vector<double> rank(static_cast<std::size_t>(n),
                           n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> incoming(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;

  // Sum-combine contributions headed to the same destination.
  run.engine_options.combiner = [](std::int64_t, MessageBatch batch) {
    PooledAccumulator acc(AggKind::kSum, batch.payload.cols());
    acc.AddBatch(batch, /*partial=*/false);
    return std::make_pair(acc.ToPartialBatch(-1), true);
  };
  PregelEngine engine(run.engine_options, run.partitioner);

  // No failure injection on the algorithm paths, so Run cannot fail.
  const JobMetrics job = std::move(engine.Run([&](PregelContext* ctx) {
    const auto& mine =
        run.assignment.members[static_cast<std::size_t>(ctx->worker_id())];
    if (ctx->superstep() > 0) {
      std::lock_guard<std::mutex> lock(mu);
      for (const MessageBatch& b : ctx->inbox()) {
        for (std::int64_t i = 0; i < b.size(); ++i) {
          incoming[static_cast<std::size_t>(
              b.dst[static_cast<std::size_t>(i)])] += b.payload.At(i, 0);
        }
      }
      for (NodeId v : mine) {
        rank[static_cast<std::size_t>(v)] =
            (1.0 - damping) / static_cast<double>(n) +
            damping * incoming[static_cast<std::size_t>(v)];
        incoming[static_cast<std::size_t>(v)] = 0.0;
      }
    }
    MessageBatch out;
    std::int64_t rows = 0;
    for (NodeId v : mine) rows += graph.OutDegree(v) > 0 ? graph.OutDegree(v)
                                                         : 0;
    out.Reserve(static_cast<std::size_t>(rows), 1);
    out.payload = Tensor(rows, 1);
    std::int64_t cursor = 0;
    for (NodeId v : mine) {
      const std::int64_t degree = graph.OutDegree(v);
      if (degree == 0) continue;
      const float share = static_cast<float>(
          rank[static_cast<std::size_t>(v)] / static_cast<double>(degree));
      for (EdgeId e : graph.OutEdges(v)) {
        out.dst.push_back(graph.EdgeDst(e));
        out.src.push_back(v);
        out.payload.At(cursor++, 0) = share;
      }
    }
    ctx->SendBatch(std::move(out));
  })).ValueOrDie();
  if (metrics != nullptr) *metrics = job;
  return rank;
}

std::vector<std::int64_t> ShortestPaths(const Graph& graph, NodeId source,
                                        const PregelAlgorithmOptions& options,
                                        JobMetrics* metrics) {
  INFERTURBO_CHECK(0 <= source && source < graph.num_nodes())
      << "SSSP source out of range";
  AlgorithmRun run(graph, options);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> distance(
      static_cast<std::size_t>(graph.num_nodes()), kInf);
  std::mutex mu;

  PregelEngine engine(run.engine_options, run.partitioner);
  // No failure injection on the algorithm paths, so Run cannot fail.
  const JobMetrics job = std::move(engine.Run([&](PregelContext* ctx) {
    const auto& mine =
        run.assignment.members[static_cast<std::size_t>(ctx->worker_id())];
    // Nodes whose distance improved this superstep re-scatter.
    std::vector<NodeId> improved;
    if (ctx->superstep() == 0) {
      if (run.partitioner.PartitionOf(source) == ctx->worker_id()) {
        std::lock_guard<std::mutex> lock(mu);
        distance[static_cast<std::size_t>(source)] = 0;
        improved.push_back(source);
      }
    } else {
      std::lock_guard<std::mutex> lock(mu);
      for (const MessageBatch& b : ctx->inbox()) {
        for (std::int64_t i = 0; i < b.size(); ++i) {
          const NodeId v = b.dst[static_cast<std::size_t>(i)];
          const auto candidate =
              static_cast<std::int64_t>(b.payload.At(i, 0));
          if (candidate < distance[static_cast<std::size_t>(v)]) {
            distance[static_cast<std::size_t>(v)] = candidate;
            improved.push_back(v);
          }
        }
      }
    }
    (void)mine;
    MessageBatch out;
    for (NodeId v : improved) {
      const float next = static_cast<float>(
          distance[static_cast<std::size_t>(v)] + 1);
      for (EdgeId e : graph.OutEdges(v)) {
        out.Push(graph.EdgeDst(e), v, &next, 1);
      }
    }
    ctx->SendBatch(std::move(out));
    ctx->VoteToHalt();  // reactivated by messages: classic SSSP halting
  })).ValueOrDie();
  if (metrics != nullptr) *metrics = job;
  std::vector<std::int64_t> result(distance.size());
  for (std::size_t i = 0; i < distance.size(); ++i) {
    result[i] = distance[i] == kInf ? -1 : distance[i];
  }
  return result;
}

std::vector<NodeId> ConnectedComponents(
    const Graph& graph, const PregelAlgorithmOptions& options,
    JobMetrics* metrics) {
  AlgorithmRun run(graph, options);
  std::vector<NodeId> label(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    label[static_cast<std::size_t>(v)] = v;
  }
  std::mutex mu;

  PregelEngine engine(run.engine_options, run.partitioner);
  // No failure injection on the algorithm paths, so Run cannot fail.
  const JobMetrics job = std::move(engine.Run([&](PregelContext* ctx) {
    const auto& mine =
        run.assignment.members[static_cast<std::size_t>(ctx->worker_id())];
    std::vector<NodeId> improved;
    if (ctx->superstep() == 0) {
      improved.assign(mine.begin(), mine.end());
    } else {
      std::lock_guard<std::mutex> lock(mu);
      for (const MessageBatch& b : ctx->inbox()) {
        for (std::int64_t i = 0; i < b.size(); ++i) {
          const NodeId v = b.dst[static_cast<std::size_t>(i)];
          const auto candidate = static_cast<NodeId>(b.payload.At(i, 0));
          if (candidate < label[static_cast<std::size_t>(v)]) {
            label[static_cast<std::size_t>(v)] = candidate;
            improved.push_back(v);
          }
        }
      }
    }
    MessageBatch out;
    for (NodeId v : improved) {
      const float value = static_cast<float>(
          label[static_cast<std::size_t>(v)]);
      // Weak connectivity: propagate along both directions.
      for (EdgeId e : graph.OutEdges(v)) {
        out.Push(graph.EdgeDst(e), v, &value, 1);
      }
      for (EdgeId e : graph.InEdges(v)) {
        out.Push(graph.EdgeSrc(e), v, &value, 1);
      }
    }
    ctx->SendBatch(std::move(out));
    ctx->VoteToHalt();
  })).ValueOrDie();
  if (metrics != nullptr) *metrics = job;
  return label;
}

}  // namespace inferturbo
