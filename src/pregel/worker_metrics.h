#ifndef INFERTURBO_PREGEL_WORKER_METRICS_H_
#define INFERTURBO_PREGEL_WORKER_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace inferturbo {

/// One worker's accounting for one superstep (or one MapReduce stage).
/// These counters are what the paper's cluster dashboards report and
/// what Figs. 9-13 plot: per-instance latency, input/output bytes and
/// records.
struct WorkerStepMetrics {
  /// Wall time the worker spent inside its compute function.
  double busy_seconds = 0.0;
  /// Non-CPU stall time (e.g. graph-store round trips in the baseline
  /// pipeline); contributes to latency but not to cpu·min.
  double wait_seconds = 0.0;
  /// Time spent in the routing + accounting barrier delivering this
  /// worker's inbox (and its share of the broadcast-board accounting).
  /// Previously charged to nobody; kept separate from busy_seconds so
  /// historical latency numbers stay comparable.
  double route_seconds = 0.0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::int64_t records_in = 0;
  std::int64_t records_out = 0;
  /// Peak bytes this worker had to hold in memory during the step —
  /// the axis on which the two backends trade off: Pregel keeps node
  /// state and the full inbox resident, MapReduce streams key groups
  /// from (simulated) external storage.
  std::uint64_t peak_resident_bytes = 0;

  void Accumulate(const WorkerStepMetrics& other) {
    busy_seconds += other.busy_seconds;
    wait_seconds += other.wait_seconds;
    route_seconds += other.route_seconds;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    records_in += other.records_in;
    records_out += other.records_out;
    peak_resident_bytes =
        std::max(peak_resident_bytes, other.peak_resident_bytes);
  }
};

/// A worker's full history across supersteps/stages.
struct WorkerMetrics {
  std::vector<WorkerStepMetrics> steps;

  WorkerStepMetrics Total() const {
    WorkerStepMetrics total;
    for (const WorkerStepMetrics& s : steps) total.Accumulate(s);
    return total;
  }
};

/// Cost model of the simulated cluster. Latency of a worker in a step
/// is busy time plus the time its traffic occupies the NIC.
struct ClusterCostModel {
  /// Per-worker network bandwidth. The paper's cluster has ~20 Gb/s per
  /// instance (2.5e9 B/s); the default assumes the same share.
  double network_bytes_per_second = 2.5e9;
  /// Fixed per-step overhead (barrier, scheduling).
  double per_step_overhead_seconds = 0.0;

  double StepLatencySeconds(const WorkerStepMetrics& m) const {
    return m.busy_seconds + m.wait_seconds +
           static_cast<double>(m.bytes_in + m.bytes_out) /
               network_bytes_per_second +
           per_step_overhead_seconds;
  }
};

/// Out-of-core storage accounting (src/storage/): how many bytes of
/// shard files a job had mapped, and how well the prefetcher hid the
/// map cost. A job that never touched the shard store reports zeros.
struct StorageMetrics {
  /// Shard bytes currently mapped (mmap or heap fallback).
  std::uint64_t bytes_mapped = 0;
  /// High-water mark of bytes_mapped over the store's lifetime — the
  /// number the memory-budget contract is checked against.
  std::uint64_t peak_bytes_mapped = 0;
  /// Physical shard loads (each maps one partition's file).
  std::int64_t map_calls = 0;
  /// Mappings released (eviction or last lease dropped).
  std::int64_t unmap_calls = 0;
  /// Map() requests satisfied by an already-mapped shard.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Async prefetches issued / finished loading.
  std::int64_t prefetch_issued = 0;
  std::int64_t prefetch_completed = 0;
  /// Map() requests whose shard was resident because a prefetch loaded
  /// it (subset of cache_hits).
  std::int64_t prefetch_hits = 0;
  /// Cache entries dropped to respect the memory budget.
  std::int64_t evictions = 0;
  /// Shards rejected on load because a page failed CRC/bounds checks.
  std::int64_t checksum_failures = 0;
  /// Bytes held by the pinned hub hot-set (gauge; pinned shards never
  /// cycle through the LRU). Zero when pinning is off.
  std::uint64_t pinned_bytes = 0;
  /// Partitions currently pinned resident (gauge).
  std::int64_t pinned_partitions = 0;
  /// Map() requests satisfied by a pinned shard (subset of cache_hits).
  std::int64_t pinned_hits = 0;
  /// I/O seconds the shard pipeline hid behind compute (ahead-scheduled
  /// load time that the consumer never waited for).
  double overlap_seconds = 0.0;
  /// Seconds consumers stalled in ShardPipeline::Acquire waiting for an
  /// in-flight load.
  double pipeline_wait_seconds = 0.0;
  /// How shard bytes were read: a ShardReadPath numeric code
  /// (0 auto / 1 mmap / 2 pread / 3 direct / 4 uring). Provenance for
  /// BENCH_storage.json and the run report.
  std::int64_t read_path = 0;
  /// Loads where the detected read tier failed mid-job and the store
  /// fell back to mmap for that shard.
  std::int64_t read_path_fallbacks = 0;

  /// Folds another stage's storage accounting into this one: activity
  /// counters sum, instantaneous/high-water byte gauges take the max
  /// (stages share one store, so peaks don't add).
  void Merge(const StorageMetrics& other) {
    bytes_mapped = std::max(bytes_mapped, other.bytes_mapped);
    peak_bytes_mapped = std::max(peak_bytes_mapped, other.peak_bytes_mapped);
    map_calls += other.map_calls;
    unmap_calls += other.unmap_calls;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    prefetch_issued += other.prefetch_issued;
    prefetch_completed += other.prefetch_completed;
    prefetch_hits += other.prefetch_hits;
    evictions += other.evictions;
    checksum_failures += other.checksum_failures;
    pinned_bytes = std::max(pinned_bytes, other.pinned_bytes);
    pinned_partitions = std::max(pinned_partitions, other.pinned_partitions);
    pinned_hits += other.pinned_hits;
    overlap_seconds += other.overlap_seconds;
    pipeline_wait_seconds += other.pipeline_wait_seconds;
    read_path = std::max(read_path, other.read_path);
    read_path_fallbacks += other.read_path_fallbacks;
  }
};

/// Task-supervision accounting (src/runtime/): every attempt, retry,
/// injected fault, speculative launch, and quarantine decision a job's
/// supervisor made. Feeds the run report's "faults" section, which must
/// account for every injected event.
struct SupervisionMetrics {
  /// Logical tasks supervised (one per partition per supervised stage).
  std::int64_t tasks = 0;
  /// Total attempts launched, including first attempts, retries, and
  /// speculative backups.
  std::int64_t attempts = 0;
  /// Re-attempts after a failed attempt (excludes speculative backups).
  std::int64_t retries = 0;
  /// Injected faults, by kind, as realized by the FaultPlan.
  std::int64_t injected_crashes = 0;
  std::int64_t injected_transients = 0;
  std::int64_t injected_delays = 0;
  /// Attempts cancelled because they overran the per-attempt deadline.
  std::int64_t deadline_exceeded = 0;
  /// Speculative backup attempts launched / backups that won the commit.
  std::int64_t speculative_launched = 0;
  std::int64_t speculative_commits = 0;
  /// Executors quarantined after repeated permanent failures, and tasks
  /// deterministically reassigned off quarantined executors.
  std::int64_t quarantined_workers = 0;
  std::int64_t reassigned_tasks = 0;
  /// Pregel degradation ladder: supersteps re-executed from immutable
  /// inputs after per-task retry exhaustion, and checkpoint restores
  /// when re-execution was also exhausted.
  std::int64_t superstep_reexecutions = 0;
  std::int64_t checkpoint_restores = 0;

  void Merge(const SupervisionMetrics& other) {
    tasks += other.tasks;
    attempts += other.attempts;
    retries += other.retries;
    injected_crashes += other.injected_crashes;
    injected_transients += other.injected_transients;
    injected_delays += other.injected_delays;
    deadline_exceeded += other.deadline_exceeded;
    speculative_launched += other.speculative_launched;
    speculative_commits += other.speculative_commits;
    quarantined_workers += other.quarantined_workers;
    reassigned_tasks += other.reassigned_tasks;
    superstep_reexecutions += other.superstep_reexecutions;
    checkpoint_restores += other.checkpoint_restores;
  }
};

/// Whole-job accounting: one WorkerMetrics per logical worker.
struct JobMetrics {
  std::vector<WorkerMetrics> workers;
  ClusterCostModel cost_model;
  /// Spill-path I/O attempts that failed transiently and were retried
  /// to success (MapReduce external-storage dataflow). Nonzero only
  /// when an I/O fault injector fired on the spill path.
  std::int64_t spill_read_retries = 0;
  std::int64_t spill_write_retries = 0;
  /// Shard-store counters for jobs that ran over an out-of-core
  /// GraphView (zeros for fully-resident runs).
  StorageMetrics storage;
  /// Task-supervision counters (zeros for unsupervised runs).
  SupervisionMetrics supervision;

  std::int64_t num_steps() const {
    return workers.empty() ? 0
                           : static_cast<std::int64_t>(workers[0].steps.size());
  }

  /// Simulated cluster makespan: per step, the slowest worker gates the
  /// barrier; steps are sequential. This is the "time cost" the paper
  /// reports (logical workers share physical cores here, so raw wall
  /// time would undercount stragglers).
  double SimulatedWallSeconds() const;

  /// Sum of busy time over all workers — the paper's cpu·min metric
  /// (divide by 60).
  double TotalCpuSeconds() const;
  double TotalCpuMinutes() const { return TotalCpuSeconds() / 60.0; }

  /// Per-worker totals, index = worker id.
  std::vector<WorkerStepMetrics> PerWorkerTotals() const;
  /// Per-worker simulated latency (all steps).
  std::vector<double> PerWorkerLatencySeconds() const;

  std::uint64_t TotalBytesIn() const;
  std::uint64_t TotalBytesOut() const;
  /// Highest per-worker resident footprint seen anywhere in the job.
  std::uint64_t PeakResidentBytes() const;

  /// Appends `other`'s steps to this job's workers (stage chaining for
  /// multi-round MapReduce jobs). Worker counts must match.
  void AppendStages(const JobMetrics& other);
};

/// Population variance of per-worker latency — the y-axis of Fig. 10.
double LatencyVariance(const JobMetrics& metrics);

}  // namespace inferturbo

#endif  // INFERTURBO_PREGEL_WORKER_METRICS_H_
