#include "src/pregel/pregel_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/binary_io.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace inferturbo {

std::int64_t PregelContext::num_workers() const {
  return engine_->num_workers();
}

void PregelContext::SendBatch(MessageBatch batch) {
  if (batch.empty()) return;
  std::vector<MessageBatch> slices = SplitByWorker(
      std::move(batch), engine_->partitioner(), num_workers());
  for (std::int64_t w = 0; w < num_workers(); ++w) {
    if (!slices[static_cast<std::size_t>(w)].empty()) {
      outbox_[static_cast<std::size_t>(w)].push_back(
          {std::move(slices[static_cast<std::size_t>(w)]), false});
    }
  }
}

void PregelContext::SendPartialBatch(MessageBatch batch) {
  if (batch.empty()) return;
  // Partial batches are produced per destination worker by the caller,
  // so this usually takes SplitByWorker's whole-batch move fast path.
  std::vector<MessageBatch> slices = SplitByWorker(
      std::move(batch), engine_->partitioner(), num_workers());
  for (std::int64_t w = 0; w < num_workers(); ++w) {
    if (!slices[static_cast<std::size_t>(w)].empty()) {
      outbox_[static_cast<std::size_t>(w)].push_back(
          {std::move(slices[static_cast<std::size_t>(w)]), true});
    }
  }
}

void PregelContext::PublishBroadcast(NodeId key, const float* row,
                                     std::int64_t width) {
  broadcast_out_.emplace_back(key, std::vector<float>(row, row + width));
}

const std::vector<float>* PregelContext::LookupBroadcast(NodeId key) const {
  const auto it = engine_->board_current_.find(key);
  return it == engine_->board_current_.end() ? nullptr : &it->second;
}

bool PregelContext::IsPartialBatch(std::size_t batch_index) const {
  return inbox_partial_[batch_index];
}

void PregelContext::VoteToHalt() { halt_vote_ = true; }

void PregelContext::DeferToCommit(std::function<void()> fn) {
  commit_callbacks_.push_back(std::move(fn));
}

void PregelContext::ChargeBusySeconds(double seconds) {
  extra_busy_seconds_ += seconds;
}

void PregelContext::ChargeResidentBytes(std::uint64_t bytes) {
  resident_bytes_ = std::max(resident_bytes_, bytes);
}

namespace {

void EncodeBatch(const MessageBatch& batch, BinaryWriter* out) {
  out->PutI64s(batch.dst);
  out->PutI64s(batch.src);
  out->PutI64(batch.payload.rows());
  out->PutI64(batch.payload.cols());
  out->PutBytes(batch.payload.data(),
                static_cast<std::size_t>(batch.payload.size()) *
                    sizeof(float));
}

Status DecodeBatch(BinaryReader* in, MessageBatch* batch) {
  INFERTURBO_RETURN_NOT_OK(in->GetI64s(&batch->dst));
  INFERTURBO_RETURN_NOT_OK(in->GetI64s(&batch->src));
  std::int64_t rows = 0, cols = 0;
  INFERTURBO_RETURN_NOT_OK(in->GetI64(&rows));
  INFERTURBO_RETURN_NOT_OK(in->GetI64(&cols));
  if (rows < 0 || cols < 0 ||
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
              sizeof(float) >
          in->remaining()) {
    return Status::IoError("corrupt message batch shape in checkpoint");
  }
  batch->payload = Tensor(rows, cols);
  return in->GetBytes(batch->payload.data(),
                      static_cast<std::size_t>(rows * cols) * sizeof(float));
}

}  // namespace

std::string EncodePregelEngineState(
    const std::vector<std::vector<MessageBatch>>& inboxes,
    const std::vector<std::vector<bool>>& inbox_partial,
    const std::unordered_map<NodeId, std::vector<float>>& board) {
  BinaryWriter out;
  out.PutU64(inboxes.size());
  for (std::size_t w = 0; w < inboxes.size(); ++w) {
    out.PutU64(inboxes[w].size());
    for (std::size_t b = 0; b < inboxes[w].size(); ++b) {
      out.PutU32(inbox_partial[w][b] ? 1 : 0);
      EncodeBatch(inboxes[w][b], &out);
    }
  }
  // Board entries sorted by key: a deterministic byte stream regardless
  // of hash-map iteration order.
  std::vector<NodeId> keys;
  keys.reserve(board.size());
  for (const auto& [key, row] : board) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  out.PutU64(keys.size());
  for (NodeId key : keys) {
    out.PutI64(key);
    out.PutFloats(board.at(key));
  }
  return out.Take();
}

Status DecodePregelEngineState(
    std::string_view bytes, std::int64_t num_workers,
    std::vector<std::vector<MessageBatch>>* inboxes,
    std::vector<std::vector<bool>>* inbox_partial,
    std::unordered_map<NodeId, std::vector<float>>* board) {
  BinaryReader in(bytes);
  std::uint64_t workers = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU64(&workers));
  if (workers != static_cast<std::uint64_t>(num_workers)) {
    return Status::IoError(
        "checkpoint worker count " + std::to_string(workers) +
        " does not match engine worker count " +
        std::to_string(num_workers));
  }
  inboxes->assign(static_cast<std::size_t>(num_workers), {});
  inbox_partial->assign(static_cast<std::size_t>(num_workers), {});
  for (std::size_t w = 0; w < workers; ++w) {
    std::uint64_t batches = 0;
    INFERTURBO_RETURN_NOT_OK(in.GetU64(&batches));
    for (std::uint64_t b = 0; b < batches; ++b) {
      std::uint32_t partial = 0;
      INFERTURBO_RETURN_NOT_OK(in.GetU32(&partial));
      MessageBatch batch;
      INFERTURBO_RETURN_NOT_OK(DecodeBatch(&in, &batch));
      (*inboxes)[w].push_back(std::move(batch));
      (*inbox_partial)[w].push_back(partial != 0);
    }
  }
  board->clear();
  std::uint64_t entries = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU64(&entries));
  for (std::uint64_t i = 0; i < entries; ++i) {
    NodeId key = 0;
    std::vector<float> row;
    INFERTURBO_RETURN_NOT_OK(in.GetI64(&key));
    INFERTURBO_RETURN_NOT_OK(in.GetFloats(&row));
    (*board)[key] = std::move(row);
  }
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after engine checkpoint state");
  }
  return Status::OK();
}

PregelEngine::PregelEngine(Options options, HashPartitioner partitioner)
    : options_(options), partitioner_(partitioner) {
  INFERTURBO_CHECK(options_.num_workers == partitioner_.num_partitions())
      << "worker count must match partitioner";
}

Result<JobMetrics> PregelEngine::Run(const ComputeFn& compute) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  const std::int64_t num_workers = options_.num_workers;
  failures_recovered_ = 0;

  JobMetrics metrics;
  metrics.cost_model = options_.cost_model;
  metrics.workers.resize(static_cast<std::size_t>(num_workers));

  // inboxes[w] = batches delivered this superstep, with partial flags.
  std::vector<std::vector<MessageBatch>> inboxes(
      static_cast<std::size_t>(num_workers));
  std::vector<std::vector<bool>> inbox_partial(
      static_cast<std::size_t>(num_workers));
  board_current_.clear();

  // Cross-process resume: rebuild in-flight state from the newest valid
  // durable checkpoint and continue at its superstep. A store with no
  // loadable checkpoint means the job died before its first one — start
  // fresh.
  std::int64_t start_step = 0;
  if (options_.resume && options_.checkpoint_store != nullptr) {
    Result<CheckpointData> latest = options_.checkpoint_store->LoadLatest();
    if (latest.ok()) {
      RecordFlightEvent(FlightEventKind::kCheckpointRestore,
                        "pregel/resume", latest->step);
      INFERTURBO_RETURN_NOT_OK(DecodePregelEngineState(
          latest->engine_state, num_workers, &inboxes, &inbox_partial,
          &board_current_));
      if (options_.deserialize_driver) {
        INFERTURBO_RETURN_NOT_OK(
            options_.deserialize_driver(latest->driver_state));
      }
      start_step = latest->step;
    } else if (!latest.status().IsNotFound()) {
      return latest.status();
    }
  }

  // Checkpointing: in-flight messages + board + (via hooks) driver
  // state, every checkpoint_interval supersteps. A failed superstep
  // rolls back here and replays. With a durable store configured the
  // state is serialized exactly once and those encoded bytes back both
  // the durable write and the in-memory rollback — no deep copy of
  // inboxes/board, no second encoding pass. Without a store the deep
  // copy is kept (cheaper than encode+decode for a purely local
  // rollback).
  struct Checkpoint {
    std::int64_t step = 0;
    // Deep-copy form (no durable store).
    std::vector<std::vector<MessageBatch>> inboxes;
    std::vector<std::vector<bool>> inbox_partial;
    std::unordered_map<NodeId, std::vector<float>> board;
    std::shared_ptr<const void> driver_state;
    // Encoded form (durable store): shared with the store's write.
    std::shared_ptr<const std::string> engine_bytes;
    std::shared_ptr<const std::string> driver_bytes;
  };
  Checkpoint checkpoint;
  bool has_checkpoint = false;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = options_.max_supersteps * 10 + 10;

  // Degradation-ladder bookkeeping (supervised runs only).
  std::int64_t reexec_step = -1;
  std::int64_t reexecs_this_step = 0;
  std::int64_t superstep_reexecutions_total = 0;
  std::int64_t supervised_restores = 0;

  for (std::int64_t step = start_step; step < options_.max_supersteps;
       ++step) {
    if (++attempts > max_attempts) {
      return Status::Aborted(
          "failure injector never stopped firing (gave up after " +
          std::to_string(max_attempts) + " superstep attempts)");
    }
    if (options_.checkpoint_interval > 0 &&
        step % options_.checkpoint_interval == 0) {
      checkpoint = Checkpoint();
      checkpoint.step = step;
      if (options_.checkpoint_store != nullptr) {
        TraceSpan span("pregel/checkpoint");
        checkpoint.engine_bytes = std::make_shared<const std::string>(
            EncodePregelEngineState(inboxes, inbox_partial, board_current_));
        // The driver state rolls back through the encoded bytes only
        // when the driver can decode them again; otherwise fall back to
        // its in-memory snapshot hooks.
        const bool encoded_driver =
            options_.serialize_driver && options_.deserialize_driver;
        if (options_.serialize_driver) {
          checkpoint.driver_bytes = std::make_shared<const std::string>(
              options_.serialize_driver());
        }
        if (!encoded_driver && options_.snapshot_state) {
          checkpoint.driver_state = options_.snapshot_state();
        }
        CheckpointData durable;
        durable.step = step;
        durable.engine_state = *checkpoint.engine_bytes;
        if (checkpoint.driver_bytes != nullptr) {
          durable.driver_state = *checkpoint.driver_bytes;
        }
        INFERTURBO_RETURN_NOT_OK(options_.checkpoint_store->Save(durable));
      } else {
        checkpoint.inboxes = inboxes;
        checkpoint.inbox_partial = inbox_partial;
        checkpoint.board = board_current_;
        checkpoint.driver_state =
            options_.snapshot_state ? options_.snapshot_state() : nullptr;
      }
      has_checkpoint = true;
      RecordFlightEvent(FlightEventKind::kCheckpointSave, "pregel/checkpoint",
                        step);
    }
    if (options_.kill_switch && options_.kill_switch(step)) {
      return Status::Aborted("job killed at superstep " +
                             std::to_string(step) +
                             " (simulated process death)");
    }
    std::vector<PregelContext> contexts(
        static_cast<std::size_t>(num_workers));
    std::vector<WorkerStepMetrics> step_metrics(
        static_cast<std::size_t>(num_workers));

    // One worker's compute attempt, writing into caller-owned context
    // and metrics slots. Under supervision those slots are
    // attempt-local, so duplicate attempts never share state.
    const auto run_worker = [&](std::size_t w, PregelContext* ctx,
                                WorkerStepMetrics* m) {
      ctx->engine_ = this;
      ctx->worker_id_ = static_cast<std::int64_t>(w);
      ctx->superstep_ = step;
      ctx->inbox_ = &inboxes[w];
      ctx->inbox_partial_ = inbox_partial[w];
      ctx->outbox_.resize(static_cast<std::size_t>(num_workers));
      std::uint64_t inbox_bytes = 0;
      for (const MessageBatch& b : inboxes[w]) {
        m->records_in += b.size();
        inbox_bytes += b.WireBytes();
      }
      WallTimer timer;
      {
        TraceSpan span("pregel/compute", static_cast<std::int64_t>(w));
        compute(ctx);
      }
      m->busy_seconds = timer.ElapsedSeconds() + ctx->extra_busy_seconds_;
      if (MetricsEnabled()) {
        static Histogram* hist =
            GlobalMetrics().GetHistogram("pregel.compute_seconds");
        hist->Observe(m->busy_seconds);
      }
      // The whole vectorized inbox is resident during compute, plus
      // whatever state the driver reported.
      m->peak_resident_bytes =
          std::max(inbox_bytes + ctx->resident_bytes_,
                   m->peak_resident_bytes);
    };

    // --- compute phase (parallel over logical workers) --------------
    if (options_.supervisor != nullptr) {
      // Supervised: each worker's compute runs as one task with
      // deadlines/retry/speculation. The compute is read-only against
      // the superstep's inputs (inboxes, board, driver state via
      // DeferToCommit), so any attempt — first, retry, or speculative
      // backup — produces identical bytes, and a failed stage can
      // re-execute the whole superstep from those same inputs.
      const TaskStage task_stage{TaskStageKind::kPregelCompute, step};
      const Result<StageResult> stage = options_.supervisor->RunStage(
          task_stage, static_cast<std::size_t>(num_workers),
          [&](TaskAttempt* attempt) -> Status {
            const std::size_t w = attempt->task();
            PregelContext local;
            WorkerStepMetrics local_metrics;
            run_worker(w, &local, &local_metrics);
            if (attempt->TryCommit()) {
              // Winner owns the slot; losers discard their copies.
              contexts[w] = std::move(local);
              step_metrics[w] = local_metrics;
            }
            return Status::OK();
          });
      if (!stage.ok()) {
        // The attempted work is still real cost, and appending one row
        // per worker keeps the per-worker step vectors aligned.
        for (std::int64_t w = 0; w < num_workers; ++w) {
          metrics.workers[static_cast<std::size_t>(w)].steps.push_back(
              step_metrics[static_cast<std::size_t>(w)]);
        }
        if (reexec_step != step) {
          reexec_step = step;
          reexecs_this_step = 0;
        }
        const int max_reexecs =
            options_.supervisor->options().max_superstep_reexecutions;
        if (reexecs_this_step < max_reexecs) {
          // Rung 2 of the ladder: nothing was published (commit
          // callbacks never ran, next inboxes were never built), so
          // the superstep's inputs are intact — just run it again.
          ++reexecs_this_step;
          ++superstep_reexecutions_total;
          RecordFlightEvent(FlightEventKind::kSuperstepReexec,
                            "pregel/reexec", step, reexecs_this_step);
          INFERTURBO_LOG(Warning)
              << "re-executing superstep " << step << " ("
              << reexecs_this_step << "/" << max_reexecs
              << ") after stage failure: " << stage.status().ToString();
          --step;  // loop increment replays it
          continue;
        }
        if (has_checkpoint) {
          // Rung 3: roll back to the last checkpoint.
          ++supervised_restores;
          ++failures_recovered_;
          RecordFlightEvent(FlightEventKind::kCheckpointRestore,
                            "pregel/restore", step, checkpoint.step);
          INFERTURBO_LOG(Warning)
              << "superstep " << step
              << " re-execution budget exhausted; restoring checkpoint of "
              << "step " << checkpoint.step;
          if (checkpoint.engine_bytes != nullptr) {
            INFERTURBO_RETURN_NOT_OK(DecodePregelEngineState(
                *checkpoint.engine_bytes, num_workers, &inboxes,
                &inbox_partial, &board_current_));
          } else {
            inboxes = checkpoint.inboxes;
            inbox_partial = checkpoint.inbox_partial;
            board_current_ = checkpoint.board;
          }
          if (checkpoint.driver_bytes != nullptr &&
              options_.deserialize_driver) {
            INFERTURBO_RETURN_NOT_OK(
                options_.deserialize_driver(*checkpoint.driver_bytes));
          } else if (options_.restore_state) {
            options_.restore_state(checkpoint.driver_state);
          }
          step = checkpoint.step - 1;
          continue;
        }
        // Rung 4: no checkpoint to fall back to — surface the stage
        // error as a clean Status.
        return stage.status();
      }
    } else {
      pool.ParallelFor(static_cast<std::size_t>(num_workers),
                       [&](std::size_t w) {
        run_worker(w, &contexts[w], &step_metrics[w]);
      });
    }

    // Commit point: publish every worker's deferred state mutations,
    // in worker order — deterministic regardless of which attempt of
    // each task won, and only reached when the whole stage committed.
    for (PregelContext& ctx : contexts) ctx.RunCommitCallbacks();

    // --- failure check: a crashed worker aborts the superstep --------
    if (options_.failure_injector) {
      bool failed = false;
      for (std::int64_t w = 0; w < num_workers; ++w) {
        failed = options_.failure_injector(step, w) || failed;
      }
      if (failed) {
        if (!has_checkpoint) {
          return Status::Aborted(
              "worker failed in superstep " + std::to_string(step) +
              " but checkpointing is disabled (set checkpoint_interval)");
        }
        ++failures_recovered_;
        RecordFlightEvent(FlightEventKind::kCheckpointRestore,
                          "pregel/restore", step, checkpoint.step);
        // The aborted attempt's work is still real cost.
        for (std::int64_t w = 0; w < num_workers; ++w) {
          metrics.workers[static_cast<std::size_t>(w)].steps.push_back(
              step_metrics[static_cast<std::size_t>(w)]);
        }
        if (checkpoint.engine_bytes != nullptr) {
          INFERTURBO_RETURN_NOT_OK(DecodePregelEngineState(
              *checkpoint.engine_bytes, num_workers, &inboxes,
              &inbox_partial, &board_current_));
        } else {
          inboxes = checkpoint.inboxes;
          inbox_partial = checkpoint.inbox_partial;
          board_current_ = checkpoint.board;
        }
        if (checkpoint.driver_bytes != nullptr &&
            options_.deserialize_driver) {
          INFERTURBO_RETURN_NOT_OK(
              options_.deserialize_driver(*checkpoint.driver_bytes));
        } else if (options_.restore_state) {
          options_.restore_state(checkpoint.driver_state);
        }
        step = checkpoint.step - 1;  // loop increment replays it
        continue;
      }
    }

    // --- combiner phase (charged to the sending worker) -------------
    if (options_.combiner) {
      pool.ParallelFor(static_cast<std::size_t>(num_workers),
                       [&](std::size_t w) {
        TraceSpan span("pregel/combine", static_cast<std::int64_t>(w));
        WallTimer timer;
        for (std::int64_t d = 0; d < num_workers; ++d) {
          auto& outgoing = contexts[w].outbox_[static_cast<std::size_t>(d)];
          for (auto& out : outgoing) {
            if (out.partial) continue;  // already pooled by the driver
            auto [combined, partial] =
                options_.combiner(d, std::move(out.batch));
            out.batch = std::move(combined);
            out.partial = partial;
          }
        }
        step_metrics[w].busy_seconds += timer.ElapsedSeconds();
      });
    }

    // --- routing + accounting barrier (parallel over destinations) --
    // Each destination worker exclusively owns its next inbox, its
    // bytes_in/records_in counters, and one column of the sender-side
    // scratch, so the fan-out is data-race-free. A task scans source
    // workers in ascending order, preserving the deterministic (source
    // worker, emission) inbox order of the old serial loop; sender-side
    // totals are folded from the scratch afterwards (integer sums, so
    // the fold order cannot change them).
    const auto W = static_cast<std::size_t>(num_workers);
    std::vector<std::vector<MessageBatch>> next_inboxes(W);
    std::vector<std::vector<bool>> next_partial(W);
    std::vector<std::uint64_t> route_bytes_out(W * W, 0);
    std::vector<std::int64_t> route_records_out(W * W, 0);
    std::vector<std::uint8_t> dest_any(W, 0);
    pool.ParallelFor(W, [&](std::size_t d) {
      TraceSpan span("pregel/route", static_cast<std::int64_t>(d));
      WallTimer route_timer;
      WorkerStepMetrics& dm = step_metrics[d];
      for (std::size_t w = 0; w < W; ++w) {
        for (auto& out : contexts[w].outbox_[d]) {
          if (out.batch.empty()) continue;
          dest_any[d] = 1;
          const std::uint64_t wire = out.batch.WireBytes();
          route_records_out[d * W + w] += out.batch.size();
          if (w != d) {
            // Only cross-worker traffic pays network bytes.
            route_bytes_out[d * W + w] += wire;
            dm.bytes_in += wire;
          }
          next_partial[d].push_back(out.partial);
          next_inboxes[d].push_back(std::move(out.batch));
        }
      }
      // Receive side of the broadcast board: one copy of every other
      // worker's published rows arrives here.
      for (std::size_t w = 0; w < W; ++w) {
        if (w == d) continue;
        for (const auto& entry : contexts[w].broadcast_out_) {
          dm.bytes_in += MessageBytes(entry.second.size());
          ++dm.records_in;
        }
      }
      dm.route_seconds += route_timer.ElapsedSeconds();
    });
    TraceSpan barrier_span("pregel/barrier");
    if (MetricsEnabled()) {
      GlobalMetrics().GetCounter("pregel.supersteps")->Increment();
      static Histogram* hist =
          GlobalMetrics().GetHistogram("pregel.route_seconds");
      for (std::size_t d = 0; d < W; ++d) {
        hist->Observe(step_metrics[d].route_seconds);
      }
    }
    bool any_messages = false;
    for (std::size_t d = 0; d < W; ++d) {
      any_messages = any_messages || dest_any[d] != 0;
      for (std::size_t w = 0; w < W; ++w) {
        step_metrics[w].records_out += route_records_out[d * W + w];
        step_metrics[w].bytes_out += route_bytes_out[d * W + w];
      }
    }

    // --- broadcast board: sender accounting + last-writer merge ------
    std::unordered_map<NodeId, std::vector<float>> board_next;
    for (std::size_t w = 0; w < W; ++w) {
      for (auto& [key, row] : contexts[w].broadcast_out_) {
        const std::uint64_t wire = MessageBytes(row.size());
        // One copy to every other machine.
        step_metrics[w].bytes_out +=
            wire * static_cast<std::uint64_t>(num_workers - 1);
        step_metrics[w].records_out += num_workers - 1;
        any_messages = true;
        board_next[key] = std::move(row);
      }
    }

    bool all_halted = true;
    for (const PregelContext& ctx : contexts) {
      all_halted = all_halted && ctx.halt_vote_;
    }

    for (std::int64_t w = 0; w < num_workers; ++w) {
      metrics.workers[static_cast<std::size_t>(w)].steps.push_back(
          step_metrics[static_cast<std::size_t>(w)]);
    }

    inboxes = std::move(next_inboxes);
    inbox_partial = std::move(next_partial);
    board_current_ = std::move(board_next);

    // Classic Pregel termination: messages in flight reactivate halted
    // vertices, so votes alone never end the job while anything is in
    // transit — and with no messages in transit no future superstep
    // can observe new input, so the job is done either way. (The
    // all_halted flag is tracked for documentation/debugging; the
    // message condition subsumes it.)
    (void)all_halted;
    if (!any_messages) break;
  }
  if (options_.supervisor != nullptr) {
    metrics.supervision = options_.supervisor->metrics();
    metrics.supervision.superstep_reexecutions = superstep_reexecutions_total;
    metrics.supervision.checkpoint_restores = supervised_restores;
  }
  return metrics;
}

}  // namespace inferturbo
