#ifndef INFERTURBO_PREGEL_ALGORITHMS_H_
#define INFERTURBO_PREGEL_ALGORITHMS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/pregel/worker_metrics.h"

namespace inferturbo {

/// Classic graph-processing algorithms expressed as vertex programs on
/// the Pregel engine — the workloads the engine's lineage (Pregel,
/// PowerGraph) was built for (paper §III-A). They double as engine
/// conformance tests: each has an obvious single-machine reference.
struct PregelAlgorithmOptions {
  std::int64_t num_workers = 8;
  std::int64_t max_iterations = 30;
  ClusterCostModel cost_model;
};

/// Damped PageRank over out-edges; returns one score per node
/// (sums to ~1). Uses the engine's sum combiner, so it also exercises
/// the partial-gather machinery on a non-GNN workload.
std::vector<double> PageRank(const Graph& graph,
                             const PregelAlgorithmOptions& options,
                             double damping = 0.85,
                             JobMetrics* metrics = nullptr);

/// Single-source shortest paths with unit edge weights (hop counts);
/// unreachable nodes get -1.
std::vector<std::int64_t> ShortestPaths(const Graph& graph, NodeId source,
                                        const PregelAlgorithmOptions& options,
                                        JobMetrics* metrics = nullptr);

/// Weakly connected components via min-label propagation over both
/// edge directions; returns the smallest node id in each node's
/// component.
std::vector<NodeId> ConnectedComponents(
    const Graph& graph, const PregelAlgorithmOptions& options,
    JobMetrics* metrics = nullptr);

}  // namespace inferturbo

#endif  // INFERTURBO_PREGEL_ALGORITHMS_H_
