#include "src/pregel/vertex_api.h"

#include <mutex>

#include "src/common/logging.h"

namespace inferturbo {

/// Bridges per-vertex programs onto the per-partition engine: each
/// partition walks its active vertices, runs Compute, and forwards the
/// queued sends as one vectorized batch.
struct VertexProgramDriver {
  const Graph* graph;
  VertexProgram* program;
  const PartitionAssignment* assignment;
  std::vector<std::vector<float>> values;        // per vertex
  std::vector<bool> halted;                      // per vertex
  std::vector<std::vector<std::vector<float>>> inbox;  // per vertex

  void Compute(PregelContext* ctx) {
    const auto& mine =
        assignment->members[static_cast<std::size_t>(ctx->worker_id())];
    // Deliver this superstep's messages; arrival reactivates.
    for (const MessageBatch& b : ctx->inbox()) {
      for (std::int64_t i = 0; i < b.size(); ++i) {
        const NodeId v = b.dst[static_cast<std::size_t>(i)];
        inbox[static_cast<std::size_t>(v)].push_back(
            std::vector<float>(b.payload.RowPtr(i),
                               b.payload.RowPtr(i) + b.payload.cols()));
        halted[static_cast<std::size_t>(v)] = false;
      }
    }
    MessageBatch out;
    std::int64_t width = -1;
    bool all_halted = true;
    for (NodeId v : mine) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      VertexContext vctx(v, ctx->superstep(), graph,
                         &values[static_cast<std::size_t>(v)],
                         &inbox[static_cast<std::size_t>(v)]);
      program->Compute(&vctx);
      inbox[static_cast<std::size_t>(v)].clear();
      halted[static_cast<std::size_t>(v)] = vctx.halt_;
      all_halted = all_halted && vctx.halt_;
      for (const auto& [dst, row] : vctx.outgoing_) {
        if (width < 0) width = static_cast<std::int64_t>(row.size());
        INFERTURBO_CHECK(static_cast<std::int64_t>(row.size()) == width)
            << "vertex programs must send fixed-width messages";
        out.Push(dst, v, row.data(), width);
      }
    }
    if (!out.empty()) ctx->SendBatch(std::move(out));
    if (all_halted) ctx->VoteToHalt();
  }
};

VertexProgramResult RunVertexProgram(const Graph& graph,
                                     VertexProgram* program,
                                     const VertexProgramOptions& options) {
  HashPartitioner partitioner(options.num_workers);
  const PartitionAssignment assignment =
      AssignPartitions(graph.num_nodes(), partitioner);

  VertexProgramDriver driver;
  driver.graph = &graph;
  driver.program = program;
  driver.assignment = &assignment;
  driver.values.resize(static_cast<std::size_t>(graph.num_nodes()));
  driver.halted.assign(static_cast<std::size_t>(graph.num_nodes()), false);
  driver.inbox.resize(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    driver.values[static_cast<std::size_t>(v)] =
        program->InitialValue(v, graph);
    INFERTURBO_CHECK(
        static_cast<std::int64_t>(
            driver.values[static_cast<std::size_t>(v)].size()) ==
        program->value_width())
        << "InitialValue width mismatch for vertex " << v;
  }

  PregelEngine::Options engine_options;
  engine_options.num_workers = options.num_workers;
  engine_options.max_supersteps = options.max_supersteps;
  engine_options.cost_model = options.cost_model;
  PregelEngine engine(engine_options, partitioner);
  VertexProgramResult result;
  // No failure injection on the vertex-API path, so Run cannot fail.
  result.metrics =
      engine.Run([&driver](PregelContext* ctx) { driver.Compute(ctx); })
          .ValueOrDie();
  result.values = std::move(driver.values);
  return result;
}

}  // namespace inferturbo
