#include "src/pregel/vertex_api.h"

#include <mutex>

#include "src/common/logging.h"

namespace inferturbo {

/// Bridges per-vertex programs onto the per-partition engine: each
/// partition walks its active vertices, runs Compute, and forwards the
/// queued sends as one vectorized batch.
struct VertexProgramDriver {
  const Graph* graph;
  VertexProgram* program;
  const PartitionAssignment* assignment;
  std::vector<std::vector<float>> values;        // per vertex
  std::vector<bool> halted;                      // per vertex
  std::vector<std::vector<std::vector<float>>> inbox;  // per vertex

  void Compute(PregelContext* ctx) {
    const auto& mine =
        assignment->members[static_cast<std::size_t>(ctx->worker_id())];
    // Deliver this superstep's messages; arrival reactivates.
    for (const MessageBatch& b : ctx->inbox()) {
      for (std::int64_t i = 0; i < b.size(); ++i) {
        const NodeId v = b.dst[static_cast<std::size_t>(i)];
        inbox[static_cast<std::size_t>(v)].push_back(
            std::vector<float>(b.payload.RowPtr(i),
                               b.payload.RowPtr(i) + b.payload.cols()));
        halted[static_cast<std::size_t>(v)] = false;
      }
    }
    // Two passes so the batch tensor is allocated once (MessageBatch::
    // Push is O(rows) per call and would make this quadratic).
    std::vector<std::pair<NodeId, std::vector<float>>> queued;
    std::vector<NodeId> queued_src;
    bool all_halted = true;
    for (NodeId v : mine) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      VertexContext vctx(v, ctx->superstep(), graph,
                         &values[static_cast<std::size_t>(v)],
                         &inbox[static_cast<std::size_t>(v)]);
      program->Compute(&vctx);
      inbox[static_cast<std::size_t>(v)].clear();
      halted[static_cast<std::size_t>(v)] = vctx.halt_;
      all_halted = all_halted && vctx.halt_;
      for (auto& entry : vctx.outgoing_) {
        queued.push_back(std::move(entry));
        queued_src.push_back(v);
      }
    }
    if (!queued.empty()) {
      MessageBatch out;
      const auto width =
          static_cast<std::int64_t>(queued.front().second.size());
      out.dst.reserve(queued.size());
      out.src = std::move(queued_src);
      out.payload = Tensor(static_cast<std::int64_t>(queued.size()), width);
      for (std::size_t i = 0; i < queued.size(); ++i) {
        INFERTURBO_CHECK(static_cast<std::int64_t>(queued[i].second.size()) ==
                         width)
            << "vertex programs must send fixed-width messages";
        out.dst.push_back(queued[i].first);
        out.payload.SetRow(static_cast<std::int64_t>(i),
                           queued[i].second.data());
      }
      ctx->SendBatch(std::move(out));
    }
    if (all_halted) ctx->VoteToHalt();
  }
};

VertexProgramResult RunVertexProgram(const Graph& graph,
                                     VertexProgram* program,
                                     const VertexProgramOptions& options) {
  HashPartitioner partitioner(options.num_workers);
  const PartitionAssignment assignment =
      AssignPartitions(graph.num_nodes(), partitioner);

  VertexProgramDriver driver;
  driver.graph = &graph;
  driver.program = program;
  driver.assignment = &assignment;
  driver.values.resize(static_cast<std::size_t>(graph.num_nodes()));
  driver.halted.assign(static_cast<std::size_t>(graph.num_nodes()), false);
  driver.inbox.resize(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    driver.values[static_cast<std::size_t>(v)] =
        program->InitialValue(v, graph);
    INFERTURBO_CHECK(
        static_cast<std::int64_t>(
            driver.values[static_cast<std::size_t>(v)].size()) ==
        program->value_width())
        << "InitialValue width mismatch for vertex " << v;
  }

  PregelEngine::Options engine_options;
  engine_options.num_workers = options.num_workers;
  engine_options.max_supersteps = options.max_supersteps;
  engine_options.cost_model = options.cost_model;
  PregelEngine engine(engine_options, partitioner);
  VertexProgramResult result;
  // No failure injection on the vertex-API path, so Run cannot fail.
  result.metrics =
      engine.Run([&driver](PregelContext* ctx) { driver.Compute(ctx); })
          .ValueOrDie();
  result.values = std::move(driver.values);
  return result;
}

}  // namespace inferturbo
