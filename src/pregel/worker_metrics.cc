#include "src/pregel/worker_metrics.h"

#include <algorithm>

#include "src/common/logging.h"

namespace inferturbo {

double JobMetrics::SimulatedWallSeconds() const {
  double total = 0.0;
  const std::int64_t steps = num_steps();
  for (std::int64_t s = 0; s < steps; ++s) {
    double slowest = 0.0;
    for (const WorkerMetrics& w : workers) {
      slowest = std::max(
          slowest,
          cost_model.StepLatencySeconds(w.steps[static_cast<std::size_t>(s)]));
    }
    total += slowest;
  }
  return total;
}

double JobMetrics::TotalCpuSeconds() const {
  double total = 0.0;
  for (const WorkerMetrics& w : workers) total += w.Total().busy_seconds;
  return total;
}

std::vector<WorkerStepMetrics> JobMetrics::PerWorkerTotals() const {
  std::vector<WorkerStepMetrics> totals;
  totals.reserve(workers.size());
  for (const WorkerMetrics& w : workers) totals.push_back(w.Total());
  return totals;
}

std::vector<double> JobMetrics::PerWorkerLatencySeconds() const {
  std::vector<double> latency;
  latency.reserve(workers.size());
  for (const WorkerMetrics& w : workers) {
    double sum = 0.0;
    for (const WorkerStepMetrics& s : w.steps) {
      sum += cost_model.StepLatencySeconds(s);
    }
    latency.push_back(sum);
  }
  return latency;
}

std::uint64_t JobMetrics::TotalBytesIn() const {
  std::uint64_t total = 0;
  for (const WorkerMetrics& w : workers) total += w.Total().bytes_in;
  return total;
}

std::uint64_t JobMetrics::TotalBytesOut() const {
  std::uint64_t total = 0;
  for (const WorkerMetrics& w : workers) total += w.Total().bytes_out;
  return total;
}

std::uint64_t JobMetrics::PeakResidentBytes() const {
  std::uint64_t peak = 0;
  for (const WorkerMetrics& w : workers) {
    peak = std::max(peak, w.Total().peak_resident_bytes);
  }
  return peak;
}

void JobMetrics::AppendStages(const JobMetrics& other) {
  spill_read_retries += other.spill_read_retries;
  spill_write_retries += other.spill_write_retries;
  storage.Merge(other.storage);
  supervision.Merge(other.supervision);
  if (workers.empty()) {
    workers = other.workers;
    return;
  }
  INFERTURBO_CHECK(workers.size() == other.workers.size())
      << "AppendStages worker count mismatch";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].steps.insert(workers[i].steps.end(),
                            other.workers[i].steps.begin(),
                            other.workers[i].steps.end());
  }
}

double LatencyVariance(const JobMetrics& metrics) {
  const std::vector<double> latency = metrics.PerWorkerLatencySeconds();
  if (latency.empty()) return 0.0;
  double mean = 0.0;
  for (double v : latency) mean += v;
  mean /= static_cast<double>(latency.size());
  double var = 0.0;
  for (double v : latency) var += (v - mean) * (v - mean);
  return var / static_cast<double>(latency.size());
}

}  // namespace inferturbo
