#include "src/serving/workload.h"

namespace inferturbo {

namespace {

/// Odd stride coprime with most sizes; spreads Zipf ranks over ids.
constexpr std::int64_t kStride = 2654435761;

std::int64_t RankToNode(std::int64_t rank, std::int64_t n) {
  return static_cast<std::int64_t>(
      (static_cast<unsigned __int128>(rank) * kStride) %
      static_cast<unsigned __int128>(n));
}

}  // namespace

ZipfQueryStream::ZipfQueryStream(std::int64_t num_nodes, double alpha,
                                 std::uint64_t seed)
    : sampler_(num_nodes, alpha), rng_(seed), num_nodes_(num_nodes) {}

std::vector<NodeId> ZipfQueryStream::Next(std::int64_t nodes_per_query) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(nodes_per_query));
  for (std::int64_t i = 0; i < nodes_per_query; ++i) {
    nodes.push_back(RankToNode(sampler_.Sample(&rng_), num_nodes_));
  }
  return nodes;
}

DeltaStream::DeltaStream(const Graph& initial_graph, const Options& options)
    : options_(options),
      sampler_(initial_graph.num_nodes(), options.zipf_alpha),
      rng_(options.seed),
      num_nodes_(initial_graph.num_nodes()),
      feature_dim_(initial_graph.feature_dim()),
      edge_feature_dim_(initial_graph.has_edge_features()
                            ? initial_graph.edge_features().cols()
                            : 0) {}

GraphMutation DeltaStream::Next() {
  GraphMutation mutation;
  // Feature refreshes hit Zipf-popular nodes of the *initial* id range
  // (the sampler's domain); the resulting update cones overlap the
  // query stream's hot set, which is the interesting stress case.
  for (std::int64_t i = 0; i < options_.feature_updates; ++i) {
    const NodeId v = RankToNode(sampler_.Sample(&rng_), num_nodes_);
    std::vector<float> row(static_cast<std::size_t>(feature_dim_));
    for (float& x : row) x = rng_.NextFloat(-1.0f, 1.0f);
    mutation.feature_updates.emplace_back(v, std::move(row));
  }

  const bool grow = options_.new_node_every > 0 &&
                    (calls_ + 1) % options_.new_node_every == 0;
  std::int64_t new_edge_count = options_.new_edges;
  if (grow) {
    std::vector<float> row(static_cast<std::size_t>(feature_dim_));
    for (float& x : row) x = rng_.NextFloat(-1.0f, 1.0f);
    mutation.new_node_features.push_back(std::move(row));
    // Wire the newcomer into the graph in both directions so its state
    // depends on neighbors and it influences existing nodes.
    const NodeId fresh = num_nodes_;
    const NodeId in_peer = static_cast<NodeId>(
        rng_.NextBounded(static_cast<std::uint64_t>(num_nodes_)));
    const NodeId out_peer = static_cast<NodeId>(
        rng_.NextBounded(static_cast<std::uint64_t>(num_nodes_)));
    mutation.new_edges.emplace_back(in_peer, fresh);
    mutation.new_edges.emplace_back(fresh, out_peer);
    new_edge_count += 2;
    ++num_nodes_;
  }
  for (std::int64_t i = 0; i < options_.new_edges; ++i) {
    const NodeId src = static_cast<NodeId>(
        rng_.NextBounded(static_cast<std::uint64_t>(num_nodes_)));
    const NodeId dst = static_cast<NodeId>(
        rng_.NextBounded(static_cast<std::uint64_t>(num_nodes_)));
    mutation.new_edges.emplace_back(src, dst);
  }

  if (edge_feature_dim_ > 0) {
    mutation.new_edge_features = Tensor(new_edge_count, edge_feature_dim_);
    for (std::int64_t e = 0; e < new_edge_count; ++e) {
      for (std::int64_t c = 0; c < edge_feature_dim_; ++c) {
        *(mutation.new_edge_features.RowPtr(e) + c) =
            rng_.NextFloat(-1.0f, 1.0f);
      }
    }
  }

  ++calls_;
  return mutation;
}

}  // namespace inferturbo
