#ifndef INFERTURBO_SERVING_SERVING_ENGINE_H_
#define INFERTURBO_SERVING_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/inference/incremental.h"
#include "src/nn/model.h"
#include "src/serving/request_batcher.h"

namespace inferturbo {

class Histogram;

/// Options for the always-on serving front-end.
struct ServingOptions {
  /// How long the request batcher holds a mini-batch open for
  /// stragglers (CLI: --serve_batch_window, in milliseconds).
  double batch_window_seconds = 0.001;
  /// Queries per coalesced mini-batch (CLI: --serve_max_batch).
  std::int64_t max_batch = 64;
  /// Cache computed logits rows per generation; deltas invalidate only
  /// the rows whose final-layer state actually changed.
  bool cache_logits = true;
};

/// A small live update to the served graph: refreshed node features,
/// new edges, and/or new nodes appended at the end of the id range.
/// The engine rebuilds the (immutable) Graph, derives the exact
/// GraphDelta, and runs change propagation — callers cannot get the
/// delta wrong.
struct GraphMutation {
  /// (node, new feature row); row length must equal feature_dim.
  std::vector<std::pair<NodeId, std::vector<float>>> feature_updates;
  /// Appended directed edges; endpoints may name new nodes.
  std::vector<std::pair<NodeId, NodeId>> new_edges;
  /// Feature rows for nodes appended after the current id range.
  std::vector<std::vector<float>> new_node_features;
  /// Required iff the graph carries edge features: one row per entry
  /// of new_edges, in the same order.
  Tensor new_edge_features;
};

/// What one applied delta did, for callers and telemetry.
struct DeltaApplied {
  /// The generation the delta produced (old epoch + 1).
  std::int64_t epoch = 0;
  /// Change-propagation cone: node-state recomputations, total and per
  /// layer (a full batch pass would be layers * N).
  std::int64_t recomputed_nodes = 0;
  std::vector<std::int64_t> recomputed_per_layer;
  /// Logits-cache rows dropped (0 when the cache is off).
  std::int64_t invalidated_cache_rows = 0;
  double seconds = 0.0;
};

/// Point-in-time serving counters (always on, independent of the
/// telemetry master switch). Percentile fields are filled from the
/// metric registry's histograms and are 0 unless SetMetricsEnabled
/// was called — serving entry points (CLI serve mode, bench_serving)
/// enable metrics.
struct ServingStats {
  std::int64_t queries = 0;
  std::int64_t batches = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t deltas = 0;
  std::int64_t epoch = 0;
  std::int64_t recomputed_nodes = 0;
  std::int64_t invalidated_cache_rows = 0;
  double query_p50_seconds = 0.0;
  double query_p95_seconds = 0.0;
  double query_p99_seconds = 0.0;
  double mean_batch_occupancy = 0.0;

  double cache_hit_rate() const {
    const std::int64_t lookups = cache_hits + cache_misses;
    return lookups > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(lookups)
               : 0.0;
  }
};

/// An always-on serving front-end over incremental delta inference.
///
/// The engine keeps a warm store — the current graph plus all
/// per-layer states of a full forward (LayerStates) — behind an
/// epoch/snapshot scheme: every query batch pins one immutable
/// generation via shared_ptr and serves from it, while ApplyMutation/
/// ApplyDelta computes the next generation off to the side (exact
/// change propagation through IncrementalInference) and publishes it
/// with a pointer swap. In-flight queries are never torn between
/// generations; the epoch each response carries names the exact graph
/// its logits are bit-identical to a from-scratch batch run on.
///
/// Concurrent Query() calls coalesce through a RequestBatcher into
/// one head pass over the batch's cache-missing nodes. Cached logits
/// rows survive across generations except for the rows the delta's
/// final-layer cone actually touched.
///
/// Thread-safe: any number of Query threads against concurrent
/// ApplyMutation/ApplyDelta callers (deltas serialize internally).
class ServingEngine {
 public:
  /// Builds the warm store with a full layer-wise forward.
  ServingEngine(const GnnModel* model, Graph graph,
                const ServingOptions& options = {});
  /// Adopts precomputed per-layer states (must come from
  /// ComputeLayerStates on `graph` with `model`).
  ServingEngine(const GnnModel* model, Graph graph, LayerStates states,
                const ServingOptions& options = {});

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Point lookup: logits row per node id, served from the generation
  /// current when the coalesced batch executes. Blocks for at most
  /// roughly the batch window plus one head pass. An out-of-range id
  /// fails only this query, not its batch.
  Result<QueryResponse> Query(std::vector<NodeId> nodes);

  /// Applies a live update: rebuilds the graph, derives the delta,
  /// recomputes the affected cone, publishes the next generation.
  Result<DeltaApplied> ApplyMutation(const GraphMutation& mutation);

  /// Lower-level form for callers that already hold the post-delta
  /// graph and know what changed (see GraphDelta's contract).
  Result<DeltaApplied> ApplyDelta(Graph new_graph, const GraphDelta& delta);

  /// Current generation id (0 = the warm store the engine started on).
  std::int64_t epoch() const;
  /// Snapshot of the currently served graph (stays valid while held,
  /// even across later deltas).
  std::shared_ptr<const Graph> graph_snapshot() const;

  ServingStats stats() const;

  const GnnModel& model() const { return *model_; }

 private:
  struct Generation;

  std::shared_ptr<Generation> Snapshot() const;
  void Publish(std::shared_ptr<Generation> next);
  /// The batch execute callback: one mini-superstep over the union of
  /// the batch's nodes against one pinned generation.
  void ExecuteBatch(const std::vector<BatchedQuery*>& batch);
  /// Shared delta path; caller holds delta_mu_ and passes the
  /// generation the delta was computed against.
  Result<DeltaApplied> ApplyDeltaLocked(
      Graph new_graph, const GraphDelta& delta,
      const std::shared_ptr<Generation>& current);
  Result<std::pair<Graph, GraphDelta>> BuildMutatedGraph(
      const Graph& old_graph, const GraphMutation& mutation) const;

  const GnnModel* model_;
  const ServingOptions options_;

  mutable std::mutex generation_mu_;
  std::shared_ptr<Generation> generation_;

  /// Serializes delta application (queries stay concurrent).
  std::mutex delta_mu_;

  std::unique_ptr<RequestBatcher> batcher_;

  std::atomic<std::int64_t> queries_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> cache_misses_{0};
  std::atomic<std::int64_t> deltas_{0};
  std::atomic<std::int64_t> recomputed_nodes_{0};
  std::atomic<std::int64_t> invalidated_rows_{0};

  // Registry instruments (stable pointers; recording is gated on the
  // telemetry master switch inside the instruments themselves).
  Histogram* query_seconds_;
  Histogram* batch_occupancy_;
  Histogram* batch_unique_nodes_;
  Histogram* delta_seconds_;
  Histogram* delta_cone_nodes_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_SERVING_SERVING_ENGINE_H_
