#ifndef INFERTURBO_SERVING_WORKLOAD_H_
#define INFERTURBO_SERVING_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/graph/power_law.h"
#include "src/serving/serving_engine.h"

namespace inferturbo {

/// Deterministic query-id stream with a heavy-tailed popularity
/// profile: node ids are drawn Zipf(alpha), the regime online feature
/// stores actually see (a few hot entities dominate lookups), which is
/// also what makes the per-generation logits cache earn its keep.
/// Rank r maps to node id (r * kStride) mod n so hot ranks are spread
/// across the id space instead of clustering at low ids.
class ZipfQueryStream {
 public:
  ZipfQueryStream(std::int64_t num_nodes, double alpha, std::uint64_t seed);

  /// The next query: `nodes_per_query` ids (repeats possible, as in
  /// real lookup traffic).
  std::vector<NodeId> Next(std::int64_t nodes_per_query);

 private:
  ZipfSampler sampler_;
  Rng rng_;
  std::int64_t num_nodes_;
};

/// Deterministic stream of live graph updates for benchmarks and
/// tests: each Next() perturbs features of a few (Zipf-popular) nodes
/// and occasionally attaches a new node with edges into the existing
/// graph. Mutations depend only on (seed, call index, graph sizes), so
/// replaying the stream against equal starting graphs yields equal
/// mutation sequences.
class DeltaStream {
 public:
  struct Options {
    /// Feature rows refreshed per mutation.
    std::int64_t feature_updates = 4;
    /// New edges added per mutation (between existing nodes).
    std::int64_t new_edges = 2;
    /// Every `new_node_every`-th mutation appends one new node wired
    /// to `new_edges` existing nodes (0 = never grow).
    std::int64_t new_node_every = 4;
    double zipf_alpha = 1.1;
    std::uint64_t seed = 19;
  };

  DeltaStream(const Graph& initial_graph, const Options& options);

  /// The next mutation, valid against the graph as evolved by all
  /// previous Next() results (tracks node growth internally).
  GraphMutation Next();

  std::int64_t mutations_generated() const { return calls_; }

 private:
  Options options_;
  ZipfSampler sampler_;
  Rng rng_;
  std::int64_t num_nodes_;
  std::int64_t feature_dim_;
  std::int64_t edge_feature_dim_;  // 0 when the graph has none
  std::int64_t calls_ = 0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_SERVING_WORKLOAD_H_
