#ifndef INFERTURBO_SERVING_REQUEST_BATCHER_H_
#define INFERTURBO_SERVING_REQUEST_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// One served query's answer: a logits row per requested node (row i
/// corresponds to node_ids[i] of the request) plus the generation it
/// was computed against, so callers can pin exactness claims to a
/// graph snapshot.
struct QueryResponse {
  Tensor logits;
  std::int64_t epoch = 0;
};

/// A query in flight through the batcher. Stack-allocated inside
/// Submit(); pointers to it are only ever shared with the executing
/// batch under the batcher's protocol.
struct BatchedQuery {
  std::vector<NodeId> nodes;
  Result<QueryResponse> response = Status::Internal("query never executed");
};

/// Coalesces concurrent point-lookup queries into one mini-batch.
///
/// Protocol (leader/follower): the first thread to find no active
/// leader becomes the batch leader. It waits up to `window_seconds`
/// for more queries to arrive — or returns early the moment
/// `max_batch` queries are pending — then takes (at most `max_batch`
/// of) the pending queries, runs the execute callback ONCE for the
/// whole batch outside the lock, and wakes the followers whose
/// queries it served. Followers block until their own query is done,
/// or promote themselves to leader of the *next* batch if theirs was
/// not taken. Several batches may therefore execute concurrently
/// (leader N+1 can start while leader N's execute is still running);
/// the execute callback must be thread-safe.
///
/// With window_seconds == 0 and an idle batcher this degrades to a
/// direct call on the submitting thread — single-client latency never
/// pays the coalescing window.
class RequestBatcher {
 public:
  struct Options {
    /// How long a leader holds the batch open for stragglers.
    double window_seconds = 0.001;
    /// Fire as soon as this many queries are pending (also the hard
    /// cap on queries per executed batch).
    std::int64_t max_batch = 64;
  };

  /// Fills every query's `response`; must be thread-safe (see above).
  using ExecuteFn = std::function<void(const std::vector<BatchedQuery*>&)>;

  RequestBatcher(ExecuteFn execute, const Options& options);

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Blocks until a batch containing this query has executed. Safe to
  /// call from any number of threads concurrently.
  Result<QueryResponse> Submit(std::vector<NodeId> nodes);

  std::int64_t batches_executed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::int64_t queries_submitted() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    BatchedQuery* query = nullptr;
    bool taken = false;
    bool done = false;
  };

  /// Runs one batch with `self` as leader. Called with `lock` held;
  /// returns with it held and self->done == true.
  void LeadBatch(std::unique_lock<std::mutex>& lock, Slot* self);

  const ExecuteFn execute_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot*> pending_;
  bool leader_active_ = false;

  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> queries_{0};
};

}  // namespace inferturbo

#endif  // INFERTURBO_SERVING_REQUEST_BATCHER_H_
