#include "src/serving/serving_engine.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/common/timer.h"
#include "src/graph/graph_builder.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/tensor/ops.h"

namespace inferturbo {

/// One immutable snapshot the front-end serves from. Queries pin a
/// generation via shared_ptr; only the logits cache inside it mutates
/// (under cache_mu), and cached bytes are a pure function of
/// (graph, states, model), so concurrent fills write identical rows.
struct ServingEngine::Generation {
  std::int64_t epoch = 0;
  Graph graph;
  LayerStates states;

  std::mutex cache_mu;
  Tensor cached_logits;                  // num_nodes × num_classes
  std::vector<std::uint8_t> cache_valid; // 1 = row is live
};

ServingEngine::ServingEngine(const GnnModel* model, Graph graph,
                             const ServingOptions& options)
    : ServingEngine(model,
                    Graph(graph),  // copy: ComputeLayerStates needs it too
                    ComputeLayerStates(*model, graph), options) {}

ServingEngine::ServingEngine(const GnnModel* model, Graph graph,
                             LayerStates states,
                             const ServingOptions& options)
    : model_(model), options_(options) {
  auto gen = std::make_shared<Generation>();
  gen->epoch = 0;
  gen->graph = std::move(graph);
  gen->states = std::move(states);
  if (options_.cache_logits) {
    gen->cached_logits =
        Tensor(gen->graph.num_nodes(), model_->num_classes());
    gen->cache_valid.assign(
        static_cast<std::size_t>(gen->graph.num_nodes()), 0);
  }
  generation_ = std::move(gen);

  MetricRegistry& registry = GlobalMetrics();
  query_seconds_ = registry.GetHistogram("serving/query_seconds");
  batch_occupancy_ = registry.GetHistogram("serving/batch_occupancy");
  batch_unique_nodes_ = registry.GetHistogram("serving/batch_unique_nodes");
  delta_seconds_ = registry.GetHistogram("serving/delta_seconds");
  delta_cone_nodes_ = registry.GetHistogram("serving/delta_cone_nodes");

  RequestBatcher::Options batcher_options;
  batcher_options.window_seconds = options_.batch_window_seconds;
  batcher_options.max_batch = options_.max_batch;
  batcher_ = std::make_unique<RequestBatcher>(
      [this](const std::vector<BatchedQuery*>& batch) {
        ExecuteBatch(batch);
      },
      batcher_options);
}

std::shared_ptr<ServingEngine::Generation> ServingEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(generation_mu_);
  return generation_;
}

void ServingEngine::Publish(std::shared_ptr<Generation> next) {
  RecordFlightEvent(FlightEventKind::kGenerationSwap, "serving/publish",
                    next->epoch);
  std::lock_guard<std::mutex> lock(generation_mu_);
  generation_ = std::move(next);
}

std::int64_t ServingEngine::epoch() const { return Snapshot()->epoch; }

std::shared_ptr<const Graph> ServingEngine::graph_snapshot() const {
  std::shared_ptr<Generation> gen = Snapshot();
  const Graph* graph = &gen->graph;
  return std::shared_ptr<const Graph>(std::move(gen), graph);
}

Result<QueryResponse> ServingEngine::Query(std::vector<NodeId> nodes) {
  WallTimer timer;
  Result<QueryResponse> response = batcher_->Submit(std::move(nodes));
  queries_.fetch_add(1, std::memory_order_relaxed);
  query_seconds_->Observe(timer.ElapsedSeconds());
  return response;
}

void ServingEngine::ExecuteBatch(const std::vector<BatchedQuery*>& batch) {
  const std::shared_ptr<Generation> gen = Snapshot();
  const std::int64_t num_nodes = gen->graph.num_nodes();
  const std::int64_t num_classes = model_->num_classes();

  // Validate per query; an out-of-range id fails only its own query.
  // The union of valid queries' nodes is the mini-superstep's frontier.
  std::vector<char> valid(batch.size(), 1);
  std::vector<std::int64_t> unique_nodes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (NodeId v : batch[i]->nodes) {
      if (v < 0 || v >= num_nodes) {
        batch[i]->response = Status::InvalidArgument(
            "queried node " + std::to_string(v) + " outside [0," +
            std::to_string(num_nodes) + ") at epoch " +
            std::to_string(gen->epoch));
        valid[i] = 0;
        break;
      }
    }
    if (valid[i]) {
      unique_nodes.insert(unique_nodes.end(), batch[i]->nodes.begin(),
                          batch[i]->nodes.end());
    }
  }
  std::sort(unique_nodes.begin(), unique_nodes.end());
  unique_nodes.erase(std::unique(unique_nodes.begin(), unique_nodes.end()),
                     unique_nodes.end());

  batch_occupancy_->Observe(static_cast<double>(batch.size()));
  batch_unique_nodes_->Observe(static_cast<double>(unique_nodes.size()));

  // The head pass covers only the cache-missing frontier rows; each
  // logits row depends only on its own final-state row, so subset
  // computation stays bit-identical to a full-matrix pass.
  std::vector<std::int64_t> misses;
  if (options_.cache_logits) {
    std::lock_guard<std::mutex> lock(gen->cache_mu);
    for (std::int64_t v : unique_nodes) {
      if (!gen->cache_valid[static_cast<std::size_t>(v)]) misses.push_back(v);
    }
  } else {
    misses = unique_nodes;
  }
  Tensor computed;
  if (!misses.empty()) {
    const Tensor final_rows = GatherRows(gen->states.states.back(), misses);
    computed = model_->PredictLogits(final_rows);
  }
  cache_hits_.fetch_add(
      static_cast<std::int64_t>(unique_nodes.size() - misses.size()),
      std::memory_order_relaxed);
  cache_misses_.fetch_add(static_cast<std::int64_t>(misses.size()),
                          std::memory_order_relaxed);

  const auto computed_row = [&](std::int64_t v) -> const float* {
    const auto it = std::lower_bound(misses.begin(), misses.end(), v);
    return computed.RowPtr(
        static_cast<std::int64_t>(it - misses.begin()));
  };

  const auto fill_response = [&](BatchedQuery* query,
                                 const auto& row_for_node) {
    QueryResponse response;
    response.epoch = gen->epoch;
    response.logits =
        Tensor(static_cast<std::int64_t>(query->nodes.size()), num_classes);
    for (std::size_t i = 0; i < query->nodes.size(); ++i) {
      response.logits.SetRow(static_cast<std::int64_t>(i),
                             row_for_node(query->nodes[i]));
    }
    query->response = std::move(response);
  };

  if (options_.cache_logits) {
    std::lock_guard<std::mutex> lock(gen->cache_mu);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      gen->cached_logits.SetRow(misses[i],
                                computed.RowPtr(static_cast<std::int64_t>(i)));
      gen->cache_valid[static_cast<std::size_t>(misses[i])] = 1;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!valid[i]) continue;
      fill_response(batch[i], [&](NodeId v) {
        return gen->cached_logits.RowPtr(v);
      });
    }
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!valid[i]) continue;
      fill_response(batch[i], computed_row);
    }
  }
}

Result<DeltaApplied> ServingEngine::ApplyMutation(
    const GraphMutation& mutation) {
  // Deltas serialize: the mutated graph must build against the graph
  // that is still current when the new generation publishes.
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  const std::shared_ptr<Generation> current = Snapshot();
  Result<std::pair<Graph, GraphDelta>> built =
      BuildMutatedGraph(current->graph, mutation);
  if (!built.ok()) return built.status();
  return ApplyDeltaLocked(std::move(built->first), built->second, current);
}

Result<DeltaApplied> ServingEngine::ApplyDelta(Graph new_graph,
                                               const GraphDelta& delta) {
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  return ApplyDeltaLocked(std::move(new_graph), delta, Snapshot());
}

Result<DeltaApplied> ServingEngine::ApplyDeltaLocked(
    Graph new_graph, const GraphDelta& delta,
    const std::shared_ptr<Generation>& current) {
  WallTimer timer;
  IncrementalOptions inc_options;
  inc_options.compute_logits = false;  // logits materialize lazily per query
  Result<IncrementalResult> inc = IncrementalInference(
      *model_, new_graph, current->states, delta, inc_options);
  if (!inc.ok()) return inc.status();

  auto next = std::make_shared<Generation>();
  next->epoch = current->epoch + 1;
  next->graph = std::move(new_graph);
  next->states = std::move(inc->states);

  std::int64_t invalidated = 0;
  if (options_.cache_logits) {
    const std::int64_t new_n = next->graph.num_nodes();
    next->cached_logits = Tensor(new_n, model_->num_classes());
    next->cache_valid.assign(static_cast<std::size_t>(new_n), 0);
    {
      // Carry every cached row forward — unchanged final states mean
      // bit-identical logits — then drop exactly the delta's
      // final-layer cone (new nodes start invalid by construction).
      std::lock_guard<std::mutex> cache_lock(current->cache_mu);
      const std::int64_t old_n = current->graph.num_nodes();
      for (std::int64_t v = 0; v < old_n; ++v) {
        if (!current->cache_valid[static_cast<std::size_t>(v)]) continue;
        next->cached_logits.SetRow(v, current->cached_logits.RowPtr(v));
        next->cache_valid[static_cast<std::size_t>(v)] = 1;
      }
    }
    for (NodeId v : inc->final_changed_nodes) {
      if (next->cache_valid[static_cast<std::size_t>(v)]) {
        next->cache_valid[static_cast<std::size_t>(v)] = 0;
        ++invalidated;
      }
    }
  }

  Publish(next);

  DeltaApplied applied;
  applied.epoch = next->epoch;
  applied.recomputed_per_layer = std::move(inc->recomputed_per_layer);
  for (std::int64_t count : applied.recomputed_per_layer) {
    applied.recomputed_nodes += count;
  }
  applied.invalidated_cache_rows = invalidated;
  applied.seconds = timer.ElapsedSeconds();

  deltas_.fetch_add(1, std::memory_order_relaxed);
  recomputed_nodes_.fetch_add(applied.recomputed_nodes,
                              std::memory_order_relaxed);
  invalidated_rows_.fetch_add(invalidated, std::memory_order_relaxed);
  delta_seconds_->Observe(applied.seconds);
  delta_cone_nodes_->Observe(static_cast<double>(applied.recomputed_nodes));
  return applied;
}

Result<std::pair<Graph, GraphDelta>> ServingEngine::BuildMutatedGraph(
    const Graph& old_graph, const GraphMutation& mutation) const {
  const std::int64_t old_n = old_graph.num_nodes();
  const std::int64_t dim = old_graph.feature_dim();
  const std::int64_t new_n =
      old_n + static_cast<std::int64_t>(mutation.new_node_features.size());

  for (const auto& [v, row] : mutation.feature_updates) {
    if (v < 0 || v >= old_n) {
      return Status::InvalidArgument("feature update for node " +
                                     std::to_string(v) + " outside [0," +
                                     std::to_string(old_n) + ")");
    }
    if (static_cast<std::int64_t>(row.size()) != dim) {
      return Status::InvalidArgument("feature update row has " +
                                     std::to_string(row.size()) +
                                     " entries; feature_dim is " +
                                     std::to_string(dim));
    }
  }
  for (const std::vector<float>& row : mutation.new_node_features) {
    if (static_cast<std::int64_t>(row.size()) != dim) {
      return Status::InvalidArgument("new node feature row has " +
                                     std::to_string(row.size()) +
                                     " entries; feature_dim is " +
                                     std::to_string(dim));
    }
  }
  for (const auto& [src, dst] : mutation.new_edges) {
    if (src < 0 || src >= new_n || dst < 0 || dst >= new_n) {
      return Status::InvalidArgument(
          "new edge " + std::to_string(src) + " -> " + std::to_string(dst) +
          " references a node outside [0," + std::to_string(new_n) + ")");
    }
  }
  const std::int64_t new_edge_count =
      static_cast<std::int64_t>(mutation.new_edges.size());
  if (old_graph.has_edge_features()) {
    if (mutation.new_edge_features.rows() != new_edge_count ||
        mutation.new_edge_features.cols() !=
            old_graph.edge_features().cols()) {
      return Status::InvalidArgument(
          "graph carries edge features; the mutation must supply one row "
          "per new edge with matching width");
    }
  } else if (!mutation.new_edge_features.empty()) {
    return Status::InvalidArgument(
        "edge features supplied for a graph without them");
  }

  GraphBuilder builder(new_n);
  builder.ReserveEdges(static_cast<std::size_t>(old_graph.num_edges()) +
                       mutation.new_edges.size());
  for (EdgeId e = 0; e < old_graph.num_edges(); ++e) {
    builder.AddEdge(old_graph.EdgeSrc(e), old_graph.EdgeDst(e));
  }
  for (const auto& [src, dst] : mutation.new_edges) {
    builder.AddEdge(src, dst);
  }

  Tensor features(new_n, dim);
  if (old_n > 0) {
    std::memcpy(features.RowPtr(0), old_graph.node_features().RowPtr(0),
                static_cast<std::size_t>(old_n * dim) * sizeof(float));
  }
  for (const auto& [v, row] : mutation.feature_updates) {
    features.SetRow(v, row.data());
  }
  for (std::size_t i = 0; i < mutation.new_node_features.size(); ++i) {
    features.SetRow(old_n + static_cast<std::int64_t>(i),
                    mutation.new_node_features[i].data());
  }
  builder.SetNodeFeatures(std::move(features));

  if (old_graph.has_edge_features()) {
    const Tensor& old_ef = old_graph.edge_features();
    Tensor edge_features(old_ef.rows() + new_edge_count, old_ef.cols());
    if (old_ef.rows() > 0) {
      std::memcpy(edge_features.RowPtr(0), old_ef.RowPtr(0),
                  static_cast<std::size_t>(old_ef.rows() * old_ef.cols()) *
                      sizeof(float));
    }
    for (std::int64_t i = 0; i < new_edge_count; ++i) {
      edge_features.SetRow(old_ef.rows() + i,
                           mutation.new_edge_features.RowPtr(i));
    }
    builder.SetEdgeFeatures(std::move(edge_features));
  }

  if (!old_graph.labels().empty()) {
    std::vector<std::int64_t> labels = old_graph.labels();
    labels.resize(static_cast<std::size_t>(new_n), 0);
    builder.SetLabels(std::move(labels), old_graph.num_classes());
  }
  if (old_graph.is_multi_label()) {
    const Tensor& old_ml = old_graph.multi_labels();
    Tensor multi(new_n, old_ml.cols());
    if (old_n > 0) {
      std::memcpy(multi.RowPtr(0), old_ml.RowPtr(0),
                  static_cast<std::size_t>(old_n * old_ml.cols()) *
                      sizeof(float));
    }
    builder.SetMultiLabels(std::move(multi));
  }
  builder.SetSplits(old_graph.train_nodes(), old_graph.val_nodes(),
                    old_graph.test_nodes());

  Result<Graph> graph = std::move(builder).Finish();
  if (!graph.ok()) return graph.status();

  GraphDelta delta;
  delta.changed_nodes.reserve(mutation.feature_updates.size() +
                              mutation.new_node_features.size());
  for (const auto& [v, row] : mutation.feature_updates) {
    delta.changed_nodes.push_back(v);
  }
  for (std::int64_t v = old_n; v < new_n; ++v) {
    delta.changed_nodes.push_back(v);
  }
  for (const auto& [src, dst] : mutation.new_edges) {
    delta.changed_in_edges.push_back(dst);
  }
  return std::make_pair(std::move(graph).ValueOrDie(), std::move(delta));
}

ServingStats ServingEngine::stats() const {
  ServingStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.batches = batcher_->batches_executed();
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.deltas = deltas_.load(std::memory_order_relaxed);
  stats.epoch = epoch();
  stats.recomputed_nodes = recomputed_nodes_.load(std::memory_order_relaxed);
  stats.invalidated_cache_rows =
      invalidated_rows_.load(std::memory_order_relaxed);
  stats.query_p50_seconds = query_seconds_->Percentile(0.50);
  stats.query_p95_seconds = query_seconds_->Percentile(0.95);
  stats.query_p99_seconds = query_seconds_->Percentile(0.99);
  stats.mean_batch_occupancy =
      batch_occupancy_->count() > 0
          ? batch_occupancy_->sum() /
                static_cast<double>(batch_occupancy_->count())
          : 0.0;
  return stats;
}

}  // namespace inferturbo
