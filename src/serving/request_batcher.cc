#include "src/serving/request_batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace inferturbo {

RequestBatcher::RequestBatcher(ExecuteFn execute, const Options& options)
    : execute_(std::move(execute)), options_(options) {}

Result<QueryResponse> RequestBatcher::Submit(std::vector<NodeId> nodes) {
  BatchedQuery query;
  query.nodes = std::move(nodes);
  Slot slot;
  slot.query = &query;
  queries_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mu_);
  pending_.push_back(&slot);
  // A leader waiting for max_batch counts pending sizes; wake it.
  cv_.notify_all();
  for (;;) {
    if (slot.done) return std::move(query.response);
    if (!slot.taken && !leader_active_) {
      LeadBatch(lock, &slot);
      return std::move(query.response);
    }
    cv_.wait(lock);
  }
}

void RequestBatcher::LeadBatch(std::unique_lock<std::mutex>& lock,
                               Slot* self) {
  leader_active_ = true;
  const std::int64_t max_batch = std::max<std::int64_t>(1, options_.max_batch);
  if (options_.window_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.window_seconds));
    while (static_cast<std::int64_t>(pending_.size()) < max_batch &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }
  }

  // The leader always serves its own query (it must not return before
  // its response is filled) plus the oldest pending others up to the
  // cap. Anything beyond the cap stays pending for the next leader.
  pending_.erase(std::find(pending_.begin(), pending_.end(), self));
  const std::size_t take_others = std::min(
      pending_.size(), static_cast<std::size_t>(max_batch - 1));
  std::vector<Slot*> batch;
  batch.reserve(take_others + 1);
  batch.push_back(self);
  batch.insert(batch.end(), pending_.begin(),
               pending_.begin() + static_cast<std::ptrdiff_t>(take_others));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take_others));
  for (Slot* s : batch) s->taken = true;
  leader_active_ = false;
  // Untaken waiters can promote themselves to leader of the next batch
  // while this one executes.
  cv_.notify_all();
  lock.unlock();

  std::vector<BatchedQuery*> queries;
  queries.reserve(batch.size());
  for (Slot* s : batch) queries.push_back(s->query);
  execute_(queries);
  batches_.fetch_add(1, std::memory_order_relaxed);

  lock.lock();
  for (Slot* s : batch) s->done = true;
  cv_.notify_all();
}

}  // namespace inferturbo
