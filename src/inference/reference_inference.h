#ifndef INFERTURBO_INFERENCE_REFERENCE_INFERENCE_H_
#define INFERTURBO_INFERENCE_REFERENCE_INFERENCE_H_

#include <span>

#include "src/graph/graph.h"
#include "src/nn/model.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// Single-machine layer-wise forward over an arbitrary edge list in
/// local index space: the mathematical definition of full-graph
/// inference that both distributed backends must match bit-for-bit
/// (their integration tests assert exactly this), and the per-batch
/// forward of the traditional-pipeline baseline.
///
/// Returns the final node states (num_nodes × embedding_dim).
/// `edge_features` (nullable) has one row per edge for layers whose
/// signature declares uses_edge_features.
Tensor LayerStackForward(const GnnModel& model, const Tensor& features,
                         std::span<const std::int64_t> src_index,
                         std::span<const std::int64_t> dst_index,
                         const Tensor* edge_features = nullptr);

/// LayerStackForward over a Graph's full edge set, plus the prediction
/// head: (num_nodes × num_classes) logits.
Tensor FullGraphReferenceLogits(const GnnModel& model, const Graph& graph);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_REFERENCE_INFERENCE_H_
