#include "src/inference/reference_inference.h"

#include "src/common/logging.h"
#include "src/gas/gas_conv.h"
#include "src/tensor/ops.h"

namespace inferturbo {

Tensor LayerStackForward(const GnnModel& model, const Tensor& features,
                         std::span<const std::int64_t> src_index,
                         std::span<const std::int64_t> dst_index,
                         const Tensor* edge_features) {
  INFERTURBO_CHECK(src_index.size() == dst_index.size())
      << "edge index length mismatch";
  const std::int64_t num_nodes = features.rows();
  Tensor h = features;
  for (std::int64_t l = 0; l < model.num_layers(); ++l) {
    const GasConv& layer = model.layer(l);
    const AggKind kind = layer.signature().agg_kind;
    // scatter: per-node message content, then per-edge rows merged with
    // edge features by apply_edge.
    const Tensor node_messages = layer.ComputeMessage(h);
    Tensor edge_messages = GatherRows(node_messages, src_index);
    if (layer.signature().uses_edge_features) {
      INFERTURBO_CHECK(edge_features != nullptr &&
                       edge_features->rows() ==
                           static_cast<std::int64_t>(src_index.size()))
          << "layer " << l << " requires per-edge features";
      edge_messages = layer.ApplyEdge(edge_messages, edge_features);
    } else {
      edge_messages = layer.ApplyEdge(edge_messages, nullptr);
    }
    // gather + apply_node.
    const GatherResult gathered = GatherIntoResult(
        kind, edge_messages, dst_index, num_nodes, /*is_partial=*/false);
    h = layer.ApplyNode(h, gathered);
  }
  return h;
}

Tensor FullGraphReferenceLogits(const GnnModel& model, const Graph& graph) {
  const Tensor states = LayerStackForward(
      model, graph.node_features(), graph.edge_src(), graph.edge_dst(),
      graph.has_edge_features() ? &graph.edge_features() : nullptr);
  return model.PredictLogits(states);
}

}  // namespace inferturbo
