#include "src/inference/inferturbo_mapreduce.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/checkpoint/checkpoint_store.h"
#include "src/common/binary_io.h"
#include "src/common/logging.h"
#include "src/gas/gas_conv.h"
#include "src/gas/superstep_gather.h"
#include "src/mapreduce/mapreduce_engine.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_pipeline.h"
#include "src/telemetry/flight_recorder.h"
#include "src/tensor/kernels/row_fold.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

/// The MR driver's only cross-round mutable state outside the dataflow
/// is the broadcast table. Keys are written sorted so the bytes are
/// deterministic (bit-identical resume contract).
std::string EncodeBroadcastTable(
    const std::unordered_map<NodeId, std::vector<float>>& table) {
  std::vector<NodeId> keys;
  keys.reserve(table.size());
  for (const auto& [key, row] : table) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  BinaryWriter out;
  out.PutU64(keys.size());
  for (const NodeId key : keys) {
    out.PutI64(key);
    out.PutFloats(table.at(key));
  }
  return out.Take();
}

Status DecodeBroadcastTable(
    std::string_view bytes,
    std::unordered_map<NodeId, std::vector<float>>* table) {
  BinaryReader in(bytes);
  std::uint64_t count = 0;
  INFERTURBO_RETURN_NOT_OK(in.GetU64(&count));
  constexpr std::uint64_t kMinEntryBytes =
      sizeof(NodeId) + sizeof(std::uint64_t);
  if (count > bytes.size() / kMinEntryBytes + 1) {
    return Status::IoError("corrupt broadcast table count " +
                           std::to_string(count));
  }
  table->clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    NodeId key = 0;
    std::vector<float> row;
    INFERTURBO_RETURN_NOT_OK(in.GetI64(&key));
    INFERTURBO_RETURN_NOT_OK(in.GetFloats(&row));
    (*table)[key] = std::move(row);
  }
  if (!in.AtEnd()) {
    return Status::IoError("trailing bytes after broadcast table");
  }
  return Status::OK();
}

/// Record tags on the MapReduce dataflow.
enum RecordTag : std::int32_t {
  kSelfState = 1,   ///< floats = node's current embedding
  kOutEdges = 2,    ///< ids = out-neighbor node ids
  kInMessage = 3,   ///< floats = one in-edge message row, src = sender
  kPartialAgg = 4,  ///< floats = pooled sums, ids = {count}
  kRef = 5,         ///< broadcast reference, src = hub id
  kPrediction = 6,  ///< floats = logits row (final round output)
  kEmbedding = 7,   ///< floats = final-layer state (optional output)
};

/// Orchestrates the Map + k-Reduce pipeline. Reads the graph solely
/// through a GraphView, one partition per map instance — the driver
/// never needs the whole graph resident, which is what lets the same
/// code run in-memory and out-of-core with bit-identical output.
class MrInferenceDriver {
 public:
  MrInferenceDriver(const GraphView& view, const GnnModel& model,
                    const InferTurboOptions& options,
                    std::int64_t hub_threshold)
      : view_(view),
        model_(model),
        options_(options),
        hub_threshold_(hub_threshold) {
    for (std::int64_t l = 0; l < model.num_layers(); ++l) {
      ships_edge_features_ =
          ships_edge_features_ || model.layer(l).signature().uses_edge_features;
    }
    INFERTURBO_CHECK(!ships_edge_features_ || view.edge_feature_dim() > 0)
        << "model needs edge features the graph does not have";
    INFERTURBO_CHECK(view.num_partitions() == options.num_workers)
        << "view partitioning must match the worker count";
  }

  Result<Tensor> Run() {
    MapReduceJob::Options job_options;
    job_options.num_instances = options_.num_workers;
    job_options.cost_model = options_.cost_model;
    job_options.pool = options_.pool;
    job_options.failure_injector = options_.failure_injector;
    job_options.spill_directory = options_.mr_spill_directory;
    job_options.fault_injector = options_.io_fault_injector;
    job_options.retry = options_.io_retry;
    // One supervisor for the whole job: quarantine decisions and
    // supervision counters span the map stage and every reduce round.
    std::optional<TaskSupervisor> supervisor;
    if (options_.supervise_tasks || options_.fault_plan != nullptr) {
      TaskSupervisionOptions supervision = options_.supervision;
      supervision.pool = options_.pool;
      supervision.fault_plan = options_.fault_plan;
      supervisor.emplace(supervision);
      job_options.supervisor = &*supervisor;
    }
    MapReduceJob job(job_options);

    // Durable round checkpoints: stage 0 is the map, stage l+1 is
    // reduce round l; a checkpoint at stage s means stages <= s are
    // durable and a resumed process re-enters at stage s+1.
    std::optional<CheckpointStore> store;
    if (!options_.checkpoint_directory.empty()) {
      CheckpointStoreOptions store_options;
      store_options.directory = options_.checkpoint_directory;
      store_options.keep_last = options_.checkpoint_keep_last;
      store_options.fault_injector = options_.io_fault_injector;
      store_options.retry = options_.io_retry;
      Result<CheckpointStore> opened =
          CheckpointStore::Open(std::move(store_options));
      if (!opened.ok()) return opened.status();
      store.emplace(std::move(opened).ValueOrDie());
    }
    std::int64_t completed_stage = -1;  // nothing durable yet
    if (store && options_.resume_from) {
      Result<CheckpointData> latest = store->LoadLatest();
      if (latest.ok()) {
        RecordFlightEvent(FlightEventKind::kCheckpointRestore,
                          "mapreduce/resume", latest->step);
        INFERTURBO_RETURN_NOT_OK(job.RestoreDataflow(latest->engine_state));
        // The table is restored directly — not via FlushBroadcastStaging,
        // which would charge the side channel a second time (and touch
        // metrics steps a resumed job does not have yet).
        INFERTURBO_RETURN_NOT_OK(
            DecodeBroadcastTable(latest->driver_state, &broadcast_table_));
        completed_stage = latest->step;
      } else if (!latest.status().IsNotFound()) {
        return latest.status();
      }
      // NotFound: the job died before its first checkpoint — fresh run.
    }
    const auto save_checkpoint = [&](std::int64_t stage) {
      if (!store) return Status::OK();
      RecordFlightEvent(FlightEventKind::kCheckpointSave,
                        "mapreduce/checkpoint", stage);
      CheckpointData data;
      data.step = stage;
      data.engine_state = job.SerializeDataflow();
      data.driver_state = EncodeBroadcastTable(broadcast_table_);
      return store->Save(data);
    };
    const auto killed = [this](std::int64_t stage) {
      return options_.kill_switch && options_.kill_switch(stage)
                 ? Status::Aborted("job killed before stage " +
                                   std::to_string(stage) +
                                   " (simulated process death)")
                 : Status::OK();
    };

    if (completed_stage < 0) {
      INFERTURBO_RETURN_NOT_OK(killed(0));
      {
        // Double-buffered streaming for the map stage: the dedicated
        // loader thread fills partition p+1 while instance p computes,
        // handing off through an explicit ready-future (passthrough —
        // no thread — for in-memory views).
        ShardPipeline pipeline(
            view_, ShardPipelineOptions{options_.storage_pipeline_slots});
        pipeline_ = &pipeline;
        const Status map_status =
            job.RunMap([this](std::int64_t instance, MrEmitter* emitter) {
              MapStage(instance, emitter);
            });
        pipeline_ = nullptr;
        pipeline_stats_.Merge(pipeline.stats());
        INFERTURBO_RETURN_NOT_OK(map_status);
      }
      // MapFn cannot return a Status; partition-acquire failures (e.g.
      // a corrupt shard) land here instead of crashing the pool.
      {
        std::lock_guard<std::mutex> lock(map_error_mutex_);
        INFERTURBO_RETURN_NOT_OK(map_error_);
      }
      FlushBroadcastStaging(&job);
      INFERTURBO_RETURN_NOT_OK(save_checkpoint(0));
    }

    const std::int64_t num_layers = model_.num_layers();
    for (std::int64_t l = 0; l < num_layers; ++l) {
      const std::int64_t stage = l + 1;
      if (stage <= completed_stage) continue;  // already durable
      INFERTURBO_RETURN_NOT_OK(killed(stage));
      MapReduceJob::CombineFn combiner;
      const LayerSignature& sig = model_.layer(l).signature();
      const bool use_partial = options_.strategies.partial_gather &&
                               sig.partial_gather &&
                               PartialGatherReduces(sig.agg_kind);
      if (use_partial) {
        const AggKind kind = sig.agg_kind;
        const std::int64_t msg_dim = sig.message_dim;
        combiner = [kind, msg_dim](std::int64_t key,
                                   std::vector<MrValue>* values) {
          CombineInMessages(kind, msg_dim, key, values);
        };
      }
      INFERTURBO_RETURN_NOT_OK(job.RunReduce(
          [this, l](std::int64_t key, std::span<MrValue> values,
                    MrEmitter* emitter) { ReduceStage(l, key, values,
                                                      emitter); },
          combiner ? &combiner : nullptr));
      FlushBroadcastStaging(&job);
      INFERTURBO_RETURN_NOT_OK(save_checkpoint(stage));
    }

    // Collect kPrediction (and optional kEmbedding) rows.
    const std::int64_t num_nodes = view_.num_nodes();
    Tensor logits(num_nodes, model_.num_classes());
    if (options_.export_embeddings) {
      embeddings_ = Tensor(num_nodes, model_.embedding_dim());
    }
    std::vector<bool> seen(static_cast<std::size_t>(num_nodes), false);
    for (MrKeyValue& kv : job.TakeOutputs()) {
      if (kv.second.tag == kEmbedding) {
        embeddings_.SetRow(kv.first, kv.second.floats.data());
        continue;
      }
      if (kv.second.tag != kPrediction) continue;
      const NodeId v = kv.first;
      logits.SetRow(v, kv.second.floats.data());
      seen[static_cast<std::size_t>(v)] = true;
    }
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (!seen[static_cast<std::size_t>(v)]) {
        return Status::Internal("node " + std::to_string(v) +
                                " produced no prediction");
      }
    }
    metrics_ = job.metrics();
    if (supervisor) metrics_.supervision = supervisor->metrics();
    failures_recovered_ = job.failures_recovered();
    return logits;
  }

  std::int64_t failures_recovered() const { return failures_recovered_; }
  Tensor TakeEmbeddings() { return std::move(embeddings_); }

  JobMetrics TakeMetrics() { return std::move(metrics_); }
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

 private:
  /// Map-side combine: fold this producer's kInMessage rows for `key`
  /// into a single kPartialAgg record; other tags pass through.
  static void CombineInMessages(AggKind kind, std::int64_t msg_dim,
                                std::int64_t key,
                                std::vector<MrValue>* values) {
    (void)key;
    INFERTURBO_CHECK(kind != AggKind::kUnion) << "union is not combinable";
    // Dispatched SIMD row fold instead of a scalar loop per value: the
    // max/min selects match std::max/std::min exactly (see row_fold.h),
    // so the combine stays bit-identical to the old scalar switch.
    const kernels::detail::RowFoldFn fold =
        kind == AggKind::kMax   ? kernels::detail::RowMax()
        : kind == AggKind::kMin ? kernels::detail::RowMin()
                                : kernels::detail::RowAdd();
    std::vector<MrValue> kept;
    std::vector<float> acc;
    std::int64_t count = 0;
    for (MrValue& v : *values) {
      const bool foldable =
          (v.tag == kInMessage &&
           static_cast<std::int64_t>(v.floats.size()) == msg_dim) ||
          v.tag == kPartialAgg;
      if (!foldable) {
        kept.push_back(std::move(v));
        continue;
      }
      const std::int64_t v_count = v.tag == kPartialAgg ? v.ids[0] : 1;
      if (acc.empty()) {
        acc = std::move(v.floats);
        count = v_count;
        continue;
      }
      fold(acc.data(), v.floats.data(),
           static_cast<std::int64_t>(acc.size()));
      count += v_count;
    }
    if (!acc.empty()) {
      MrValue partial;
      partial.tag = kPartialAgg;
      partial.floats = std::move(acc);
      partial.ids = {count};
      kept.push_back(std::move(partial));
    }
    *values = std::move(kept);
  }

  /// The initialization stage: map instance p streams partition p of
  /// the view through the shard pipeline, whose loader thread is
  /// already filling p+1 while this instance computes. Raw features
  /// become layer-0 states; self-state, out-edge info, and layer-0
  /// messages enter the dataflow.
  void MapStage(std::int64_t instance, MrEmitter* emitter) {
    Result<PartitionSlice> acquired =
        pipeline_ != nullptr ? pipeline_->Acquire(instance)
                             : view_.AcquirePartition(instance);
    if (!acquired.ok()) {
      RecordMapError(acquired.status());
      return;
    }
    const PartitionSlice& slice = *acquired;
    const std::size_t n = slice.nodes.size();
    if (n == 0) return;
    const std::size_t fd =
        static_cast<std::size_t>(view_.feature_dim());
    const std::size_t efd =
        static_cast<std::size_t>(view_.edge_feature_dim());
    Tensor states(static_cast<std::int64_t>(n),
                  static_cast<std::int64_t>(fd));
    for (std::size_t i = 0; i < n; ++i) {
      states.SetRow(static_cast<std::int64_t>(i),
                    slice.node_features + i * fd);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = slice.nodes[i];
      MrValue self;
      self.tag = kSelfState;
      self.floats = states.RowVector(static_cast<std::int64_t>(i));
      emitter->Emit(v, std::move(self));

      MrValue out_edges;
      out_edges.tag = kOutEdges;
      for (std::int64_t k = slice.out_offsets[i];
           k < slice.out_offsets[i + 1]; ++k) {
        out_edges.ids.push_back(slice.out_dst[static_cast<std::size_t>(k)]);
        if (ships_edge_features_) {
          const float* feat =
              slice.edge_features + static_cast<std::size_t>(k) * efd;
          out_edges.floats.insert(out_edges.floats.end(), feat, feat + efd);
        }
      }
      emitter->Emit(v, std::move(out_edges));
    }
    ScatterMessages(/*layer_index=*/0, slice, states, emitter);
  }

  void RecordMapError(const Status& status) {
    std::lock_guard<std::mutex> lock(map_error_mutex_);
    if (map_error_.ok()) map_error_ = status;
  }

  /// One GNN layer for one key. `values` hold the node's previous
  /// state, its out-edges, and its gathered in-messages.
  void ReduceStage(std::int64_t layer_index, std::int64_t key,
                   std::span<MrValue> values, MrEmitter* emitter) {
    const GasConv& layer = model_.layer(layer_index);
    const LayerSignature& sig = layer.signature();
    const AggKind kind = sig.agg_kind;
    const std::int64_t msg_dim = sig.message_dim;

    Tensor state;
    std::vector<std::int64_t> out_neighbors;
    std::vector<float> out_edge_feats;

    // First pass: locate state/out-edges, count message rows.
    std::int64_t msg_rows = 0;
    bool any_partial = false;
    for (const MrValue& v : values) {
      if (v.tag == kInMessage || v.tag == kRef || v.tag == kPartialAgg) {
        ++msg_rows;
        any_partial = any_partial || v.tag == kPartialAgg;
      }
    }
    INFERTURBO_CHECK(kind != AggKind::kUnion || !any_partial)
        << "union layer received a partial aggregate";

    // Flatten this key group into the shared bucketed form (all rows in
    // segment 0) in MrValue ARRIVAL order — the fold order both
    // backends' bit-identity contract pins — then reduce through the
    // same kernel path the Pregel gather uses.
    BucketedInbox inbox;
    inbox.rows = Tensor(msg_rows, msg_dim);
    inbox.dst.assign(static_cast<std::size_t>(msg_rows), 0);
    if (any_partial) {
      inbox.counts.assign(static_cast<std::size_t>(msg_rows), 1);
    }
    std::int64_t row_cursor = 0;
    for (MrValue& v : values) {
      switch (v.tag) {
        case kSelfState: {
          state = Tensor(1, static_cast<std::int64_t>(v.floats.size()));
          state.SetRow(0, v.floats.data());
          break;
        }
        case kOutEdges:
          out_neighbors = std::move(v.ids);
          out_edge_feats = std::move(v.floats);
          break;
        case kInMessage:
        case kRef:
        case kPartialAgg: {
          const float* row = nullptr;
          if (v.tag == kRef) {
            const std::vector<float>* value = LookupBroadcast(v.src);
            INFERTURBO_CHECK(value != nullptr)
                << "missing broadcast value for hub " << v.src;
            row = value->data();
          } else {
            row = v.floats.data();
            if (v.tag == kPartialAgg) {
              inbox.counts[static_cast<std::size_t>(row_cursor)] = v.ids[0];
            }
          }
          inbox.rows.SetRow(row_cursor, row);
          ++row_cursor;
          break;
        }
        case kPrediction:
          INFERTURBO_CHECK(false) << "prediction record in a reduce round";
      }
    }
    INFERTURBO_CHECK(!state.empty())
        << "node " << key << " lost its self-state record";

    const GatherResult gathered =
        ReduceBucketedInbox(kind, std::move(inbox), /*num_nodes=*/1);

    const Tensor new_state = layer.ApplyNode(state, gathered);

    if (layer_index + 1 == model_.num_layers()) {
      const Tensor logits = model_.PredictLogits(new_state);
      MrValue prediction;
      prediction.tag = kPrediction;
      prediction.floats = logits.RowVector(0);
      emitter->Emit(key, std::move(prediction));
      if (options_.export_embeddings) {
        MrValue embedding;
        embedding.tag = kEmbedding;
        embedding.floats = new_state.RowVector(0);
        emitter->Emit(key, std::move(embedding));
      }
      return;
    }

    // Re-emit persistent records and the next layer's messages.
    MrValue self;
    self.tag = kSelfState;
    self.floats = new_state.RowVector(0);
    emitter->Emit(key, std::move(self));
    MrValue out_edges;
    out_edges.tag = kOutEdges;
    out_edges.ids = out_neighbors;
    out_edges.floats = out_edge_feats;
    emitter->Emit(key, std::move(out_edges));

    ScatterSingle(layer_index + 1, key, new_state, out_neighbors,
                  out_edge_feats, emitter);
  }

  /// Scatter for a batch of nodes (Map stage): dense rows, or broadcast
  /// refs for hubs. Map-side partial aggregation is the engine
  /// combiner's job, so dense rows are emitted as-is here.
  void ScatterMessages(std::int64_t layer_index, const PartitionSlice& slice,
                       const Tensor& states, MrEmitter* emitter) {
    const GasConv& layer = model_.layer(layer_index);
    const Tensor messages = layer.ComputeMessage(states);
    const std::size_t efd =
        static_cast<std::size_t>(view_.edge_feature_dim());
    for (std::size_t i = 0; i < slice.nodes.size(); ++i) {
      std::vector<NodeId> out_neighbors;
      std::vector<float> out_edge_feats;
      for (std::int64_t k = slice.out_offsets[i];
           k < slice.out_offsets[i + 1]; ++k) {
        out_neighbors.push_back(slice.out_dst[static_cast<std::size_t>(k)]);
        if (ships_edge_features_) {
          const float* feat =
              slice.edge_features + static_cast<std::size_t>(k) * efd;
          out_edge_feats.insert(out_edge_feats.end(), feat, feat + efd);
        }
      }
      EmitNodeMessages(layer_index, slice.nodes[i],
                       messages.RowVector(static_cast<std::int64_t>(i)),
                       out_neighbors, out_edge_feats, emitter);
    }
  }

  /// Scatter for one node (Reduce rounds).
  void ScatterSingle(std::int64_t layer_index, NodeId v,
                     const Tensor& new_state,
                     const std::vector<std::int64_t>& out_neighbors,
                     const std::vector<float>& out_edge_feats,
                     MrEmitter* emitter) {
    const GasConv& layer = model_.layer(layer_index);
    const Tensor message = layer.ComputeMessage(new_state);
    EmitNodeMessages(layer_index, v, message.RowVector(0), out_neighbors,
                     out_edge_feats, emitter);
  }

  void EmitNodeMessages(std::int64_t layer_index, NodeId v,
                        std::vector<float> row,
                        const std::vector<std::int64_t>& out_neighbors,
                        const std::vector<float>& out_edge_feats,
                        MrEmitter* emitter) {
    const GasConv& layer = model_.layer(layer_index);
    const LayerSignature& sig = layer.signature();
    if (sig.uses_edge_features) {
      // apply_edge varies per out-edge: materialize the merged rows in
      // one batched call, then emit each.
      const std::int64_t degree =
          static_cast<std::int64_t>(out_neighbors.size());
      if (degree == 0) return;
      const std::int64_t edge_dim =
          static_cast<std::int64_t>(out_edge_feats.size()) / degree;
      Tensor base(degree, static_cast<std::int64_t>(row.size()));
      Tensor feats(degree, edge_dim);
      for (std::int64_t i = 0; i < degree; ++i) {
        base.SetRow(i, row.data());
        feats.SetRow(i, out_edge_feats.data() + i * edge_dim);
      }
      const Tensor merged = layer.ApplyEdge(base, &feats);
      for (std::int64_t i = 0; i < degree; ++i) {
        MrValue msg;
        msg.tag = kInMessage;
        msg.src = v;
        msg.floats = merged.RowVector(i);
        emitter->Emit(out_neighbors[static_cast<std::size_t>(i)],
                      std::move(msg));
      }
      return;
    }
    const bool hub = options_.strategies.broadcast &&
                     sig.broadcastable_messages && hub_threshold_ > 0 &&
                     static_cast<std::int64_t>(out_neighbors.size()) >
                         hub_threshold_;
    if (hub) {
      {
        // Idempotent under supervised duplicate attempts: both write
        // the same deterministic bytes for v, so last-write-wins is
        // byte-identical to exactly-once.
        std::lock_guard<std::mutex> lock(broadcast_mutex_);
        broadcast_staging_[v] = row;
      }
      for (NodeId d : out_neighbors) {
        MrValue ref;
        ref.tag = kRef;
        ref.src = v;
        emitter->Emit(d, std::move(ref));
      }
      return;
    }
    for (NodeId d : out_neighbors) {
      MrValue msg;
      msg.tag = kInMessage;
      msg.src = v;
      msg.floats = row;
      emitter->Emit(d, std::move(msg));
    }
  }

  const std::vector<float>* LookupBroadcast(NodeId key) const {
    const auto it = broadcast_table_.find(key);
    return it == broadcast_table_.end() ? nullptr : &it->second;
  }

  /// Promotes this round's staged hub payloads to the readable table
  /// and charges the side channel: one copy to every other instance
  /// (the Spark-broadcast cost model).
  void FlushBroadcastStaging(MapReduceJob* job) {
    broadcast_table_ = std::move(broadcast_staging_);
    broadcast_staging_.clear();
    if (broadcast_table_.empty()) return;
    JobMetrics* metrics = job->mutable_metrics();
    const std::int64_t instances = job->num_instances();
    for (const auto& [key, row] : broadcast_table_) {
      const std::uint64_t wire = MessageBytes(row.size());
      const std::int64_t owner =
          MapReduceJob::InstanceForKey(key, instances);
      WorkerMetrics& w = metrics->workers[static_cast<std::size_t>(owner)];
      w.steps.back().bytes_out +=
          wire * static_cast<std::uint64_t>(instances - 1);
      w.steps.back().records_out += instances - 1;
      for (std::int64_t d = 0; d < instances; ++d) {
        if (d == owner) continue;
        WorkerMetrics& r = metrics->workers[static_cast<std::size_t>(d)];
        r.steps.back().bytes_in += wire;
        ++r.steps.back().records_in;
      }
    }
  }

  const GraphView& view_;
  const GnnModel& model_;
  const InferTurboOptions& options_;
  std::int64_t hub_threshold_;
  /// True when some layer's apply_edge consumes edge features, so the
  /// out-edge records must ship them between rounds.
  bool ships_edge_features_ = false;
  std::mutex map_error_mutex_;
  /// First failure from a map instance (MapFn cannot return Status).
  Status map_error_ = Status::OK();
  /// Live only while RunMap executes; MapStage acquires through it.
  ShardPipeline* pipeline_ = nullptr;
  PipelineStats pipeline_stats_;
  JobMetrics metrics_;
  Tensor embeddings_;
  std::int64_t failures_recovered_ = 0;

  std::mutex broadcast_mutex_;
  std::unordered_map<NodeId, std::vector<float>> broadcast_staging_;
  std::unordered_map<NodeId, std::vector<float>> broadcast_table_;
};

/// Runs the driver over `view` and packages the raw outputs (no
/// shadow-node remapping — callers that rewrote the graph trim after).
Result<InferenceResult> DriveView(const GraphView& view,
                                  const GnnModel& model,
                                  const InferTurboOptions& options,
                                  std::int64_t hub_threshold,
                                  PipelineStats* pipeline_stats = nullptr) {
  MrInferenceDriver driver(view, model, options, hub_threshold);
  Result<Tensor> logits = driver.Run();
  if (!logits.ok()) {
    // Unrecoverable dataflow failure: freeze the flight ring now, while
    // the retry/restore events leading here are still in it.
    DumpFlightRecordOnError("mapreduce: " + logits.status().ToString());
    return logits.status();
  }
  Tensor all_logits = std::move(*logits);
  options.failures_recovered = driver.failures_recovered();
  InferenceResult result;
  result.logits = std::move(all_logits);
  result.embeddings = driver.TakeEmbeddings();
  result.predictions = ArgmaxRows(result.logits);
  result.metrics = driver.TakeMetrics();
  if (pipeline_stats != nullptr) {
    pipeline_stats->Merge(driver.pipeline_stats());
  }
  return result;
}

}  // namespace

Result<InferenceResult> RunInferTurboMapReduce(
    const Graph& graph, const GnnModel& model,
    const InferTurboOptions& options) {
  if (graph.feature_dim() != model.input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  const Graph* active = &graph;
  ShadowGraph shadow;
  const std::int64_t threshold = options.strategies.HubThreshold(
      graph.num_edges(), options.num_workers);
  if (options.strategies.shadow_nodes) {
    INFERTURBO_ASSIGN_OR_RETURN(shadow, ApplyShadowNodes(graph, threshold));
    active = &shadow.graph;
  }

  InMemoryGraphView view(*active, options.num_workers);
  INFERTURBO_ASSIGN_OR_RETURN(InferenceResult result,
                              DriveView(view, model, options, threshold));

  if (options.strategies.shadow_nodes) {
    // Shadow nodes are appended past the original id range: trim their
    // rows off the outputs.
    Tensor trimmed(graph.num_nodes(), result.logits.cols());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      trimmed.SetRow(v, result.logits.RowPtr(v));
    }
    result.logits = std::move(trimmed);
    if (!result.embeddings.empty()) {
      Tensor emb(graph.num_nodes(), result.embeddings.cols());
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        emb.SetRow(v, result.embeddings.RowPtr(v));
      }
      result.embeddings = std::move(emb);
    }
    result.predictions = ArgmaxRows(result.logits);
  }
  return result;
}

Result<InferenceResult> RunInferTurboMapReduce(
    const GraphView& view, const GnnModel& model,
    const InferTurboOptions& options) {
  // A view that is just a window onto a resident graph gains nothing
  // from the streaming path; reuse the Graph entry (which also keeps
  // shadow_nodes free of a materialize round trip).
  if (const Graph* resident = view.resident_graph()) {
    return RunInferTurboMapReduce(*resident, model, options);
  }
  if (view.feature_dim() != model.input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.num_workers != view.num_partitions()) {
    return Status::InvalidArgument(
        "num_workers (" + std::to_string(options.num_workers) +
        ") must equal the view's partition count (" +
        std::to_string(view.num_partitions()) +
        "): the shard partitioning is the worker assignment");
  }
  const std::int64_t threshold = options.strategies.HubThreshold(
      view.num_edges(), options.num_workers);
  if (options.pin_hub_shards) {
    // Pin the hub-heavy hot-set before any streaming so it survives
    // every LRU cycle of the sweep (no-op without a pinned budget).
    INFERTURBO_RETURN_NOT_OK(view.PinHotSet(threshold).status());
  }
  if (options.strategies.shadow_nodes) {
    // The shadow rewrite restructures topology globally; rebuild the
    // graph (bounded mapped bytes while building, pipelined so shard
    // I/O overlaps the rebuild), run the resident path, and still
    // report the storage work done.
    PipelineStats stats;
    MaterializeOptions materialize;
    materialize.pipeline_slots = options.storage_pipeline_slots;
    materialize.stats = &stats;
    INFERTURBO_ASSIGN_OR_RETURN(Graph graph,
                                MaterializeGraph(view, materialize));
    INFERTURBO_ASSIGN_OR_RETURN(
        InferenceResult result,
        RunInferTurboMapReduce(graph, model, options));
    result.metrics.storage = view.storage_metrics();
    stats.FoldInto(&result.metrics.storage);
    return result;
  }
  PipelineStats stats;
  INFERTURBO_ASSIGN_OR_RETURN(
      InferenceResult result,
      DriveView(view, model, options, threshold, &stats));
  result.metrics.storage = view.storage_metrics();
  stats.FoldInto(&result.metrics.storage);
  return result;
}

}  // namespace inferturbo
