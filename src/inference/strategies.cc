#include "src/inference/strategies.h"

#include <cmath>

#include "src/graph/degree_stats.h"
#include "src/graph/graph_builder.h"
#include "src/tensor/ops.h"

namespace inferturbo {

std::int64_t StrategyConfig::HubThreshold(std::int64_t total_edges,
                                          std::int64_t total_workers) const {
  if (threshold_override >= 0) return threshold_override;
  return HubDegreeThreshold(total_edges, total_workers, lambda);
}

Result<ShadowGraph> ApplyShadowNodes(const Graph& graph,
                                     std::int64_t out_degree_threshold) {
  if (out_degree_threshold <= 0) {
    return Status::InvalidArgument("shadow-nodes threshold must be positive");
  }
  ShadowGraph out;
  out.num_original = graph.num_nodes();

  // Pass 1: decide the mirror count of each hub and assign mirror ids
  // after the original range.
  std::vector<std::int64_t> groups_of(
      static_cast<std::size_t>(graph.num_nodes()), 1);
  std::vector<NodeId> first_mirror_id(
      static_cast<std::size_t>(graph.num_nodes()), -1);
  NodeId next_id = graph.num_nodes();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::int64_t degree = graph.OutDegree(v);
    if (degree > out_degree_threshold) {
      const std::int64_t groups =
          (degree + out_degree_threshold - 1) / out_degree_threshold;
      groups_of[static_cast<std::size_t>(v)] = groups;
      first_mirror_id[static_cast<std::size_t>(v)] = next_id;
      next_id += groups - 1;  // mirror 0 is the original node itself
    }
  }
  const std::int64_t total_nodes = next_id;
  out.num_mirrors = total_nodes - graph.num_nodes();
  out.origin.resize(static_cast<std::size_t>(total_nodes));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out.origin[static_cast<std::size_t>(v)] = v;
    if (first_mirror_id[static_cast<std::size_t>(v)] >= 0) {
      for (std::int64_t g = 1; g < groups_of[static_cast<std::size_t>(v)];
           ++g) {
        out.origin[static_cast<std::size_t>(
            first_mirror_id[static_cast<std::size_t>(v)] + g - 1)] = v;
      }
    }
  }

  // The mirror hosting out-edge group g of node v.
  const auto mirror_for_group = [&](NodeId v, std::int64_t g) -> NodeId {
    if (g == 0) return v;
    return first_mirror_id[static_cast<std::size_t>(v)] + g - 1;
  };

  GraphBuilder builder(total_nodes);
  builder.ReserveEdges(static_cast<std::size_t>(graph.num_edges()));
  // Pass 2: re-home out-edges to mirrors (round-robin across groups so
  // groups stay even) and duplicate in-edges onto every mirror. Edge
  // features follow their edge (and are copied onto duplicates).
  std::vector<EdgeId> feature_origin;
  if (graph.has_edge_features()) {
    feature_origin.reserve(static_cast<std::size_t>(graph.num_edges()));
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::int64_t groups = groups_of[static_cast<std::size_t>(v)];
    std::int64_t position = 0;
    for (EdgeId e : graph.OutEdges(v)) {
      const NodeId dst = graph.EdgeDst(e);
      // Destination may itself be a hub: its in-edges must reach every
      // one of its mirrors.
      const NodeId src_mirror = mirror_for_group(v, position % groups);
      const std::int64_t dst_groups =
          groups_of[static_cast<std::size_t>(dst)];
      for (std::int64_t g = 0; g < dst_groups; ++g) {
        builder.AddEdge(src_mirror, mirror_for_group(dst, g));
        if (graph.has_edge_features()) feature_origin.push_back(e);
      }
      ++position;
    }
  }
  if (graph.has_edge_features()) {
    Tensor edge_feats = GatherRows(graph.edge_features(), feature_origin);
    builder.SetEdgeFeatures(std::move(edge_feats));
  }

  // Attributes: mirrors copy the original's feature row and label.
  Tensor features(total_nodes, graph.feature_dim());
  for (NodeId v = 0; v < total_nodes; ++v) {
    features.SetRow(v, graph.node_features().RowPtr(
                           out.origin[static_cast<std::size_t>(v)]));
  }
  builder.SetNodeFeatures(std::move(features));
  if (!graph.labels().empty()) {
    std::vector<std::int64_t> labels(static_cast<std::size_t>(total_nodes));
    for (NodeId v = 0; v < total_nodes; ++v) {
      labels[static_cast<std::size_t>(v)] =
          graph.labels()[static_cast<std::size_t>(
              out.origin[static_cast<std::size_t>(v)])];
    }
    builder.SetLabels(std::move(labels), graph.num_classes());
  }
  if (graph.is_multi_label()) {
    Tensor targets(total_nodes, graph.multi_labels().cols());
    for (NodeId v = 0; v < total_nodes; ++v) {
      targets.SetRow(v, graph.multi_labels().RowPtr(
                            out.origin[static_cast<std::size_t>(v)]));
    }
    builder.SetMultiLabels(std::move(targets));
  }
  builder.SetSplits(graph.train_nodes(), graph.val_nodes(),
                    graph.test_nodes());

  INFERTURBO_ASSIGN_OR_RETURN(out.graph, std::move(builder).Finish());
  return out;
}

}  // namespace inferturbo
