#ifndef INFERTURBO_INFERENCE_STRATEGIES_H_
#define INFERTURBO_INFERENCE_STRATEGIES_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"

namespace inferturbo {

/// Which of the paper's §IV-D load-balancing strategies an inference
/// job enables. All three are exact — no sampling, no information
/// dropped — so enabling any combination never changes predictions
/// (property-tested in tests/strategies_test.cc).
struct StrategyConfig {
  /// Sender-side aggregation of lawful (commutative+associative)
  /// aggregates; shrinks a hub's in-traffic to <= one message per
  /// worker and moves Gather compute onto senders. Applies to all
  /// nodes; nearly free.
  bool partial_gather = false;
  /// Deduplicate identical out-messages of high-out-degree nodes to one
  /// payload per worker plus id-only references along edges.
  bool broadcast = false;
  /// Split high-out-degree nodes into mirrors (preprocessing), each
  /// carrying all in-edges and an even share of out-edges.
  bool shadow_nodes = false;

  /// Hub-activation heuristic threshold = lambda * edges / workers.
  double lambda = 0.1;
  /// When >= 0, overrides the heuristic (the §V-B.2 threshold sweep).
  std::int64_t threshold_override = -1;

  /// The out-degree above which broadcast/shadow-nodes treat a node as
  /// a hub for this graph/worker-count.
  std::int64_t HubThreshold(std::int64_t total_edges,
                            std::int64_t total_workers) const;

  static StrategyConfig None() { return {}; }
  static StrategyConfig All() {
    StrategyConfig c;
    c.partial_gather = c.broadcast = c.shadow_nodes = true;
    return c;
  }
};

/// A graph preprocessed by the shadow-nodes strategy: mirrors of hub
/// nodes are appended after the original id range; `origin[v]` maps any
/// node (original or mirror) back to its original id. Running an
/// unchanged inference pipeline over `graph` and keeping rows
/// [0, num_original) of the output reproduces the original answers
/// exactly, because every mirror receives all of the original's
/// in-edges and the union of mirror out-edge groups equals the original
/// out-edge set.
struct ShadowGraph {
  Graph graph;
  std::vector<NodeId> origin;
  std::int64_t num_original = 0;
  std::int64_t num_mirrors = 0;
};

/// Splits every node with out-degree > `out_degree_threshold` into
/// ceil(out_degree / threshold) mirrors. Labels/features/multi-labels
/// are copied onto mirrors; splits are preserved on originals.
Result<ShadowGraph> ApplyShadowNodes(const Graph& graph,
                                     std::int64_t out_degree_threshold);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_STRATEGIES_H_
