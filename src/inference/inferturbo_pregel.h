#ifndef INFERTURBO_INFERENCE_INFERTURBO_PREGEL_H_
#define INFERTURBO_INFERENCE_INFERTURBO_PREGEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/io_fault.h"
#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/runtime/fault_plan.h"
#include "src/runtime/task_supervisor.h"
#include "src/graph/graph.h"
#include "src/inference/result.h"
#include "src/inference/strategies.h"
#include "src/nn/model.h"

namespace inferturbo {

/// Configuration shared by both InferTurbo backends.
struct InferTurboOptions {
  /// Logical cluster size (paper: ~1000 Pregel instances / ~5000
  /// MapReduce instances).
  std::int64_t num_workers = 8;
  StrategyConfig strategies;
  ClusterCostModel cost_model;
  /// Physical pool the logical workers run on (DefaultThreadPool() if
  /// null).
  ThreadPool* pool = nullptr;

  // --- fault tolerance --------------------------------------------
  /// Pregel backend: checkpoint driver + engine state every N
  /// supersteps (0 = off). The MapReduce backend needs no
  /// checkpointing — its shuffle inputs are durable and failed tasks
  /// re-execute.
  std::int64_t checkpoint_interval = 0;
  /// Simulated failures for tests/benches: (superstep-or-stage,
  /// worker) -> crashed? See the engines' Options for semantics.
  std::function<bool(std::int64_t, std::int64_t)> failure_injector;
  /// Filled on return: how many injected failures were recovered.
  mutable std::int64_t failures_recovered = 0;

  /// MapReduce backend only: when non-empty, shuffle blocks round-trip
  /// through files under this directory (must exist) instead of
  /// staying in memory — the backend's external-storage dataflow.
  std::string mr_spill_directory;

  // --- durable checkpoints (cross-process resume) ------------------
  /// When non-empty, job state is also serialized to versioned,
  /// CRC-checksummed files under this directory (must exist), so a
  /// killed *process* can resume. Pregel: every checkpoint_interval
  /// supersteps (interval defaults to 1 when left at 0); MapReduce:
  /// after the map stage and after each reduce round.
  std::string checkpoint_directory;
  /// Retention: only the newest K durable checkpoints are kept.
  std::int64_t checkpoint_keep_last = 2;
  /// Start from the newest valid checkpoint under
  /// checkpoint_directory instead of superstep/round 0 (falls back to
  /// a fresh start when the store holds none). Resumed jobs produce
  /// logits bit-identical to an uninterrupted run.
  bool resume_from = false;
  /// Simulated whole-process death for tests: when it returns true for
  /// a superstep (Pregel) or stage index (MapReduce; 0 = map, l+1 =
  /// reduce round l), the job aborts with Status::Aborted before that
  /// unit's compute runs — after prior units' durable checkpoints.
  std::function<bool(std::int64_t)> kill_switch;
  /// Optional fault injection on every durable I/O path (checkpoint
  /// store, MR spill blocks, output writer), plus the bounded
  /// retry/backoff policy for transient faults.
  IoFaultInjector* io_fault_injector = nullptr;
  IoRetryPolicy io_retry;

  /// Also return final-layer node embeddings (InferenceResult::
  /// embeddings) — the output mode embedding-production jobs use.
  bool export_embeddings = false;

  // --- out-of-core streaming (src/storage/) ------------------------
  /// In-flight window of the ShardPipeline that streams partitions to
  /// the map stage / materialize sweep when the job runs over an
  /// out-of-core GraphView: the load for partition p+1 starts the
  /// moment compute on p begins. 2 = double buffering; <= 0 falls back
  /// to demand loads. Irrelevant for in-memory runs.
  int storage_pipeline_slots = 2;
  /// Pin the hub-heavy shard hot-set resident before streaming
  /// (GraphView::PinHotSet with the job's activation threshold). Takes
  /// effect only when the view's store was opened with a
  /// pinned_budget_bytes.
  bool pin_hub_shards = false;

  // --- task supervision (src/runtime/) -----------------------------
  /// Run every per-partition unit of work (Pregel compute tasks,
  /// MapReduce map/shuffle/reduce tasks) under a TaskSupervisor:
  /// per-attempt deadlines, bounded retry with exponential backoff,
  /// speculative backup execution, and executor quarantine. Any fault
  /// schedule within the retry budgets yields logits bit-identical to
  /// a fault-free run. Supervision is also enabled implicitly when
  /// `fault_plan` is set.
  bool supervise_tasks = false;
  /// Supervision policy; `pool` and `fault_plan` inside it are
  /// overridden from this struct's fields.
  TaskSupervisionOptions supervision;
  /// Optional compute-side chaos schedule (crash/transient/straggle
  /// per task attempt). Not owned.
  FaultPlan* fault_plan = nullptr;
};

/// Full-graph layer-wise GNN inference on the Pregel backend (paper
/// §IV-C1): nodes are hash-partitioned with their out-edges and state;
/// superstep 0 initializes states from raw features and scatters layer-0
/// messages; superstep s applies layer s-1 and scatters layer-s
/// messages; the prediction head is fused into the last superstep. A
/// k-layer model finishes in k+1 supersteps with no k-hop redundancy —
/// each node's state is computed exactly once per layer.
Result<InferenceResult> RunInferTurboPregel(const Graph& graph,
                                            const GnnModel& model,
                                            const InferTurboOptions& options);

class GraphView;

/// Pregel over a GraphView. The Pregel backend keeps all state
/// resident by design (that is its side of the paper's trade-off), so
/// an out-of-core view is materialized back into a Graph first —
/// MaterializeGraph reproduces the exact original edge ordering, so
/// logits stay bit-identical to running on the graph that was packed.
/// Views over a resident graph run on it directly. In either case
/// result.metrics.storage carries the view's storage counters.
Result<InferenceResult> RunInferTurboPregel(const GraphView& view,
                                            const GnnModel& model,
                                            const InferTurboOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_INFERTURBO_PREGEL_H_
