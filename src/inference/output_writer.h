#ifndef INFERTURBO_INFERENCE_OUTPUT_WRITER_H_
#define INFERTURBO_INFERENCE_OUTPUT_WRITER_H_

#include <string>

#include "src/common/io_fault.h"
#include "src/common/result.h"
#include "src/inference/result.h"

namespace inferturbo {

/// Sharded result export: production inference jobs end by writing one
/// output file per instance plus a manifest (downstream consumers —
/// feature stores, ANN indexers, rule engines — read shards in
/// parallel). Shards are assigned by node id hash, matching the
/// workers' partitioning.
struct OutputWriterOptions {
  /// Files written: scores_<shard>.tsv (+ embeddings_<shard>.tsv when
  /// the result carries embeddings), MANIFEST.tsv.
  std::int64_t num_shards = 4;
  /// Include the full logits row after the prediction column.
  bool write_logits = true;
  /// Optional fault injection on the export path, plus the bounded
  /// retry/backoff policy for transient faults.
  IoFaultInjector* fault_injector = nullptr;
  IoRetryPolicy retry;
};

/// Writes `result` under `directory` (which must exist). Score rows:
/// `node_id \t prediction [\t logit0,logit1,...]`; embedding rows:
/// `node_id \t e0,e1,...`. Deterministic: same result -> same files.
///
/// Crash-safe: every shard lands via temp-file + rename, and the
/// manifest — the export's commit record, carrying each score shard's
/// row count and CRC32 — is written last. An interrupted export leaves
/// either a complete readable directory or no manifest, never a torn
/// mix; no temp files are left behind.
Status WriteInferenceOutput(const InferenceResult& result,
                            const std::string& directory,
                            const OutputWriterOptions& options);

/// Reads back every score shard listed in the manifest and returns the
/// predictions indexed by node id (round-trip used by tests and
/// downstream loaders). Each shard's bytes are verified against the
/// manifest's CRC32 and row count; mismatches are retried per `retry`
/// (transient read faults) and then surface as IoError.
Result<std::vector<std::int64_t>> ReadPredictions(
    const std::string& directory, IoFaultInjector* injector = nullptr,
    const IoRetryPolicy& retry = IoRetryPolicy());

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_OUTPUT_WRITER_H_
