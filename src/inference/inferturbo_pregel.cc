#include "src/inference/inferturbo_pregel.h"

#include <memory>
#include <optional>
#include <utility>

#include "src/checkpoint/checkpoint_store.h"
#include "src/common/binary_io.h"
#include "src/common/logging.h"
#include "src/gas/gas_conv.h"
#include "src/gas/superstep_gather.h"
#include "src/pregel/pregel_engine.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_pipeline.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

/// Bit-exact tensor framing for durable checkpoints: shape + raw IEEE
/// float bytes.
void PutTensor(BinaryWriter* out, const Tensor& t) {
  out->PutI64(t.rows());
  out->PutI64(t.cols());
  out->PutBytes(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
}

Status GetTensor(BinaryReader* in, Tensor* t) {
  std::int64_t rows = 0, cols = 0;
  INFERTURBO_RETURN_NOT_OK(in->GetI64(&rows));
  INFERTURBO_RETURN_NOT_OK(in->GetI64(&cols));
  if (rows < 0 || cols < 0 ||
      (rows > 0 && cols > 0 &&
       static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
               sizeof(float) >
           in->remaining())) {
    return Status::IoError("corrupt tensor shape in checkpoint: " +
                           std::to_string(rows) + "x" + std::to_string(cols));
  }
  Tensor loaded(rows, cols);
  INFERTURBO_RETURN_NOT_OK(in->GetBytes(
      loaded.data(), static_cast<std::size_t>(loaded.size()) * sizeof(float)));
  *t = std::move(loaded);
  return Status::OK();
}

/// Per-worker resident state: the partition's node ids, their current
/// embeddings, and scratch for the gather stage.
struct WorkerState {
  std::vector<NodeId> nodes;  // global ids owned, ascending
  Tensor states;              // (nodes.size() × current_dim)
};

/// The vertex program closure. One instance shared by all workers; all
/// mutable state lives in per-worker slots.
class PregelInferenceDriver {
 public:
  PregelInferenceDriver(const Graph& graph, const GnnModel& model,
                        const InferTurboOptions& options,
                        const PartitionAssignment& assignment,
                        std::int64_t hub_threshold)
      : graph_(graph),
        model_(model),
        options_(options),
        assignment_(assignment),
        hub_threshold_(hub_threshold),
        logits_(graph.num_nodes(), model.num_classes()) {
    if (options.export_embeddings) {
      embeddings_ = Tensor(graph.num_nodes(), model.embedding_dim());
    }
    workers_.resize(static_cast<std::size_t>(options.num_workers));
    for (std::int64_t w = 0; w < options.num_workers; ++w) {
      workers_[static_cast<std::size_t>(w)].nodes =
          assignment.members[static_cast<std::size_t>(w)];
    }
  }

  void Compute(PregelContext* ctx) {
    WorkerState& worker = workers_[static_cast<std::size_t>(
        ctx->worker_id())];
    const std::int64_t step = ctx->superstep();
    const std::int64_t num_layers = model_.num_layers();

    // Deferred-commit contract: the compute below reads the superstep's
    // immutable inputs (inbox, board, worker.states as left by the
    // previous superstep) and computes into attempt-local tensors; the
    // writes into shared driver state (worker.states, logits_,
    // embeddings_) happen inside DeferToCommit callbacks, which the
    // engine runs only once the whole superstep's stage has committed.
    // That makes duplicate (speculative) attempts and superstep
    // re-execution safe: no attempt ever mutates what another reads.
    if (step == 0) {
      // Initialization superstep: raw features become layer-0 input
      // states, then scatter layer 0's messages.
      TraceSpan span("pregel/scatter", ctx->worker_id());
      auto states = std::make_shared<Tensor>(
          GatherRows(graph_.node_features(), worker.nodes));
      ctx->ChargeResidentBytes(states->ByteSize());
      ScatterLayer(ctx, worker.nodes, *states, 0);
      ctx->DeferToCommit(
          [&worker, states] { worker.states = std::move(*states); });
      return;
    }

    const std::int64_t layer_index = step - 1;
    const GasConv& layer = model_.layer(layer_index);
    GatherResult gathered;
    {
      TraceSpan span("pregel/gather", ctx->worker_id());
      gathered = GatherInbox(ctx, worker, layer);
    }
    const std::uint64_t gathered_bytes =
        gathered.pooled.ByteSize() + gathered.messages.ByteSize();
    const std::uint64_t old_state_bytes = worker.states.ByteSize();
    auto new_states = std::make_shared<Tensor>();
    {
      TraceSpan span("pregel/apply", ctx->worker_id());
      *new_states = layer.ApplyNode(worker.states, gathered);
    }
    // Old state, vectorized gather result, and new state coexist at
    // the apply_node boundary — the Pregel backend's resident cost.
    ctx->ChargeResidentBytes(old_state_bytes + gathered_bytes +
                             new_states->ByteSize());

    if (layer_index + 1 < num_layers) {
      TraceSpan span("pregel/scatter", ctx->worker_id());
      ScatterLayer(ctx, worker.nodes, *new_states, layer_index + 1);
      ctx->DeferToCommit(
          [&worker, new_states] { worker.states = std::move(*new_states); });
    } else {
      // Last superstep: fuse the prediction slice and emit results.
      TraceSpan span("pregel/scatter", ctx->worker_id());
      auto logits = std::make_shared<Tensor>(
          model_.PredictLogits(*new_states));
      ctx->DeferToCommit([this, &worker, new_states, logits] {
        for (std::size_t i = 0; i < worker.nodes.size(); ++i) {
          logits_.SetRow(worker.nodes[i],
                         logits->RowPtr(static_cast<std::int64_t>(i)));
          if (!embeddings_.empty()) {
            embeddings_.SetRow(
                worker.nodes[i],
                new_states->RowPtr(static_cast<std::int64_t>(i)));
          }
        }
        worker.states = std::move(*new_states);
      });
      ctx->VoteToHalt();
    }
  }

  Tensor TakeLogits() { return std::move(logits_); }
  Tensor TakeEmbeddings() { return std::move(embeddings_); }

  /// Checkpoint hooks: the driver's entire mutable state is the
  /// per-worker embeddings plus the result buffer.
  struct Snapshot {
    std::vector<WorkerState> workers;
    Tensor logits;
    Tensor embeddings;
  };
  std::shared_ptr<const void> SnapshotState() const {
    auto snap = std::make_shared<Snapshot>();
    snap->workers = workers_;
    snap->logits = logits_;
    snap->embeddings = embeddings_;
    return snap;
  }
  void RestoreState(const std::shared_ptr<const void>& state) {
    const auto* snap = static_cast<const Snapshot*>(state.get());
    workers_ = snap->workers;
    logits_ = snap->logits;
    embeddings_ = snap->embeddings;
  }

  /// Durable variants of the hooks above: the same mutable state,
  /// serialized bit-exactly for the checkpoint store.
  std::string SerializeState() const {
    BinaryWriter out;
    out.PutI64(static_cast<std::int64_t>(workers_.size()));
    for (const WorkerState& w : workers_) {
      out.PutI64s(w.nodes);
      PutTensor(&out, w.states);
    }
    PutTensor(&out, logits_);
    PutTensor(&out, embeddings_);
    return out.Take();
  }
  Status DeserializeState(const std::string& bytes) {
    BinaryReader in(bytes);
    std::int64_t num_workers = 0;
    INFERTURBO_RETURN_NOT_OK(in.GetI64(&num_workers));
    if (num_workers != static_cast<std::int64_t>(workers_.size())) {
      return Status::IoError(
          "checkpointed driver state has " + std::to_string(num_workers) +
          " workers, job has " + std::to_string(workers_.size()));
    }
    for (WorkerState& w : workers_) {
      INFERTURBO_RETURN_NOT_OK(in.GetI64s(&w.nodes));
      INFERTURBO_RETURN_NOT_OK(GetTensor(&in, &w.states));
    }
    INFERTURBO_RETURN_NOT_OK(GetTensor(&in, &logits_));
    INFERTURBO_RETURN_NOT_OK(GetTensor(&in, &embeddings_));
    if (!in.AtEnd()) {
      return Status::IoError("trailing bytes after driver checkpoint state");
    }
    return Status::OK();
  }

 private:
  /// Local index of a global node id owned by this worker.
  std::int64_t LocalIndex(NodeId v) const {
    return assignment_.local_index[static_cast<std::size_t>(v)];
  }

  /// gather_nbrs + aggregate: vectorize the inbox into a GatherResult
  /// in this worker's local index space via the shared kernel-backed
  /// data plane (bucket into dst-segmented flat arrays, then segment-
  /// reduce). Id-only rows (broadcast references) are resolved against
  /// the board during bucketing. Bit-identical to the retained scalar
  /// oracle (GatherSuperstepInboxScalar) at any thread count.
  GatherResult GatherInbox(PregelContext* ctx, const WorkerState& worker,
                           const GasConv& layer) const {
    const std::int64_t local_n =
        static_cast<std::int64_t>(worker.nodes.size());
    std::vector<bool> partial(ctx->inbox().size());
    for (std::size_t bi = 0; bi < partial.size(); ++bi) {
      partial[bi] = ctx->IsPartialBatch(bi);
    }
    return GatherSuperstepInbox(
        layer.signature().agg_kind, layer.signature().message_dim,
        ctx->inbox(), partial, assignment_.local_index, local_n,
        [ctx](NodeId key) { return ctx->LookupBroadcast(key); });
  }

  /// apply_edge + scatter_nbrs for `layer_index`, from the worker's
  /// freshly-computed states (passed explicitly — under the
  /// deferred-commit contract they are attempt-local, not yet published
  /// to WorkerState). Routes per strategy:
  ///   - hubs (out-degree > threshold, broadcast on, broadcastable
  ///     messages): one payload on the board + id-only rows per edge;
  ///   - lawful aggregates with partial-gather on: fold into per-worker
  ///     accumulators, send one partial row per (worker, destination);
  ///   - otherwise: one dense row per out-edge.
  void ScatterLayer(PregelContext* ctx, const std::vector<NodeId>& nodes,
                    const Tensor& states, std::int64_t layer_index) const {
    const GasConv& layer = model_.layer(layer_index);
    const LayerSignature& sig = layer.signature();
    const Tensor messages = layer.ComputeMessage(states);
    const std::int64_t msg_dim = sig.message_dim;
    const std::int64_t num_workers = ctx->num_workers();

    const bool use_partial = options_.strategies.partial_gather &&
                             sig.partial_gather &&
                             PartialGatherReduces(sig.agg_kind);
    const bool use_broadcast = options_.strategies.broadcast &&
                               sig.broadcastable_messages &&
                               hub_threshold_ > 0;

    if (sig.uses_edge_features) {
      ScatterWithEdgeFeatures(ctx, nodes, layer, messages, use_partial);
      return;
    }

    // Partial path: per destination worker, the edges' destination ids
    // and the message-row index each edge carries, collected in (node,
    // edge) order; batched into the accumulators below.
    std::vector<std::vector<NodeId>> part_dst;
    std::vector<std::vector<std::int64_t>> part_row;
    if (use_partial) {
      part_dst.resize(static_cast<std::size_t>(num_workers));
      part_row.resize(static_cast<std::size_t>(num_workers));
    }
    // Dense per-edge rows (non-partial path), sized in a first pass.
    MessageBatch dense;
    // Id-only rows for hub out-edges.
    MessageBatch refs;
    refs.payload = Tensor(0, 0);

    std::int64_t dense_rows = 0;
    std::vector<bool> is_hub(nodes.size(), false);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId v = nodes[i];
      const std::int64_t out_degree = graph_.OutDegree(v);
      if (use_broadcast && out_degree > hub_threshold_) {
        is_hub[i] = true;
      } else if (!use_partial) {
        dense_rows += out_degree;
      }
    }
    if (dense_rows > 0) {
      dense.Reserve(static_cast<std::size_t>(dense_rows), msg_dim);
      dense.payload = Tensor(dense_rows, msg_dim);
    }

    std::int64_t dense_cursor = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId v = nodes[i];
      const float* row = messages.RowPtr(static_cast<std::int64_t>(i));
      if (is_hub[i]) {
        ctx->PublishBroadcast(v, row, msg_dim);
        for (EdgeId e : graph_.OutEdges(v)) {
          refs.dst.push_back(graph_.EdgeDst(e));
          refs.src.push_back(v);
        }
        continue;
      }
      if (use_partial) {
        for (EdgeId e : graph_.OutEdges(v)) {
          const NodeId d = graph_.EdgeDst(e);
          const auto pw = static_cast<std::size_t>(
              engine_partitioner_->PartitionOf(d));
          part_dst[pw].push_back(d);
          part_row[pw].push_back(static_cast<std::int64_t>(i));
        }
      } else {
        for (EdgeId e : graph_.OutEdges(v)) {
          dense.dst.push_back(graph_.EdgeDst(e));
          dense.src.push_back(v);
          dense.payload.SetRow(dense_cursor++, row);
        }
      }
    }

    if (!dense.empty()) ctx->SendBatch(std::move(dense));
    if (!refs.dst.empty()) ctx->SendBatch(std::move(refs));
    if (use_partial) {
      // Sender-side combine, one accumulator per destination worker:
      // materialize each worker's per-edge rows with one batched row
      // gather, then fold the whole batch through the SIMD combine —
      // same first-seen destination order as per-edge Add calls, so the
      // partial batch's wire bytes are unchanged.
      PooledAccumulator acc(sig.agg_kind, msg_dim);
      for (std::int64_t w = 0; w < num_workers; ++w) {
        auto& dst_ids = part_dst[static_cast<std::size_t>(w)];
        if (dst_ids.empty()) continue;
        MessageBatch carrier;
        carrier.payload = kernels::GatherRows(
            messages, part_row[static_cast<std::size_t>(w)]);
        carrier.src.assign(dst_ids.size(), ctx->worker_id());
        carrier.dst = std::move(dst_ids);
        acc.Reset(sig.agg_kind, msg_dim);
        acc.AddBatch(carrier, /*partial=*/false);
        ctx->SendPartialBatch(acc.ToPartialBatch(ctx->worker_id()));
      }
    }
  }

  /// Scatter for layers whose apply_edge consumes edge features: the
  /// per-edge rows genuinely differ, so they are materialized (in one
  /// batched ApplyEdge call), then either folded into partial
  /// accumulators or sent dense. Broadcast never applies here — the
  /// messages are not identical across out-edges.
  void ScatterWithEdgeFeatures(PregelContext* ctx,
                               const std::vector<NodeId>& nodes,
                               const GasConv& layer, const Tensor& messages,
                               bool use_partial) const {
    INFERTURBO_CHECK(graph_.has_edge_features())
        << "layer " << layer.signature().layer_type
        << " needs edge features the graph does not have";
    std::int64_t total = 0;
    for (NodeId v : nodes) total += graph_.OutDegree(v);
    Tensor base_rows(total, messages.cols());
    Tensor edge_feats(total, graph_.edge_features().cols());
    std::vector<NodeId> dst(static_cast<std::size_t>(total));
    std::vector<NodeId> src(static_cast<std::size_t>(total));
    std::int64_t cursor = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId v = nodes[i];
      const float* row = messages.RowPtr(static_cast<std::int64_t>(i));
      for (EdgeId e : graph_.OutEdges(v)) {
        base_rows.SetRow(cursor, row);
        edge_feats.SetRow(cursor, graph_.edge_features().RowPtr(e));
        dst[static_cast<std::size_t>(cursor)] = graph_.EdgeDst(e);
        src[static_cast<std::size_t>(cursor)] = v;
        ++cursor;
      }
    }
    Tensor final_rows = layer.ApplyEdge(base_rows, &edge_feats);

    MessageBatch batch;
    batch.dst = std::move(dst);
    batch.src = std::move(src);
    batch.payload = std::move(final_rows);
    if (use_partial) {
      // Route once (low-copy), then fold each destination worker's
      // slice through the SIMD batch combine. Slices preserve row
      // order, so first-seen destination order — and the partial
      // batch's wire bytes — match the old per-row Add loop.
      const std::int64_t width = batch.payload.cols();
      std::vector<MessageBatch> slices = SplitByWorker(
          std::move(batch), *engine_partitioner_, ctx->num_workers());
      PooledAccumulator acc(layer.signature().agg_kind, width);
      for (std::int64_t w = 0; w < ctx->num_workers(); ++w) {
        const MessageBatch& slice = slices[static_cast<std::size_t>(w)];
        if (slice.empty()) continue;
        acc.Reset(layer.signature().agg_kind, width);
        acc.AddBatch(slice, /*partial=*/false);
        ctx->SendPartialBatch(acc.ToPartialBatch(ctx->worker_id()));
      }
      return;
    }
    ctx->SendBatch(std::move(batch));
  }

 public:
  /// Set by RunInferTurboPregel before the job starts (the partitioner
  /// lives in the engine).
  const HashPartitioner* engine_partitioner_ = nullptr;

 private:
  const Graph& graph_;
  const GnnModel& model_;
  const InferTurboOptions& options_;
  const PartitionAssignment& assignment_;
  std::int64_t hub_threshold_;
  Tensor logits_;
  Tensor embeddings_;
  std::vector<WorkerState> workers_;
};

}  // namespace

Result<InferenceResult> RunInferTurboPregel(const Graph& graph,
                                            const GnnModel& model,
                                            const InferTurboOptions& options) {
  if (graph.feature_dim() != model.input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }

  // Shadow-nodes preprocessing rewrites the graph; everything below
  // runs on the (possibly augmented) graph.
  const Graph* active = &graph;
  ShadowGraph shadow;
  const std::int64_t threshold = options.strategies.HubThreshold(
      graph.num_edges(), options.num_workers);
  if (options.strategies.shadow_nodes) {
    INFERTURBO_ASSIGN_OR_RETURN(shadow, ApplyShadowNodes(graph, threshold));
    active = &shadow.graph;
  }

  HashPartitioner partitioner(options.num_workers);
  const PartitionAssignment assignment =
      AssignPartitions(active->num_nodes(), partitioner);

  PregelInferenceDriver driver(*active, model, options, assignment,
                               threshold);

  PregelEngine::Options engine_options;
  engine_options.num_workers = options.num_workers;
  engine_options.max_supersteps = model.num_layers() + 1;
  engine_options.cost_model = options.cost_model;
  engine_options.pool = options.pool;
  engine_options.checkpoint_interval = options.checkpoint_interval;
  engine_options.failure_injector = options.failure_injector;

  // Durable store: opened when a checkpoint directory is configured.
  // Durable mode implies checkpointing, so an unset interval means
  // "every superstep".
  std::optional<CheckpointStore> store;
  if (!options.checkpoint_directory.empty()) {
    if (engine_options.checkpoint_interval <= 0) {
      engine_options.checkpoint_interval = 1;
    }
    CheckpointStoreOptions store_options;
    store_options.directory = options.checkpoint_directory;
    store_options.keep_last = options.checkpoint_keep_last;
    store_options.fault_injector = options.io_fault_injector;
    store_options.retry = options.io_retry;
    Result<CheckpointStore> opened =
        CheckpointStore::Open(std::move(store_options));
    if (!opened.ok()) return opened.status();
    store.emplace(std::move(opened).ValueOrDie());
    engine_options.checkpoint_store = &*store;
    engine_options.serialize_driver = [&driver] {
      return driver.SerializeState();
    };
    engine_options.deserialize_driver = [&driver](const std::string& bytes) {
      return driver.DeserializeState(bytes);
    };
    engine_options.resume = options.resume_from;
    engine_options.kill_switch = options.kill_switch;
  }
  if (engine_options.checkpoint_interval > 0) {
    engine_options.snapshot_state = [&driver] {
      return driver.SnapshotState();
    };
    engine_options.restore_state =
        [&driver](const std::shared_ptr<const void>& state) {
          driver.RestoreState(state);
        };
  }
  // Task supervision: deadlines, retry, speculation, quarantine around
  // every superstep compute task. The driver's deferred-commit Compute
  // makes duplicate attempts and superstep re-execution safe.
  std::optional<TaskSupervisor> supervisor;
  if (options.supervise_tasks || options.fault_plan != nullptr) {
    TaskSupervisionOptions supervision = options.supervision;
    supervision.pool = options.pool;
    supervision.fault_plan = options.fault_plan;
    supervisor.emplace(supervision);
    engine_options.supervisor = &*supervisor;
  }

  PregelEngine engine(engine_options, partitioner);
  driver.engine_partitioner_ = &engine.partitioner();

  Result<JobMetrics> run =
      engine.Run([&driver](PregelContext* ctx) { driver.Compute(ctx); });
  if (!run.ok()) {
    // Unrecoverable engine failure: freeze the flight ring now, while
    // the retry/reexec/restore events leading here are still in it.
    DumpFlightRecordOnError("pregel: " + run.status().ToString());
    return run.status();
  }
  JobMetrics metrics = std::move(*run);
  options.failures_recovered = engine.failures_recovered();

  InferenceResult result;
  Tensor all_logits = driver.TakeLogits();
  Tensor all_embeddings = driver.TakeEmbeddings();
  if (options.strategies.shadow_nodes) {
    // Keep the original id range; mirror rows are duplicates by
    // construction.
    result.logits = Tensor(graph.num_nodes(), all_logits.cols());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      result.logits.SetRow(v, all_logits.RowPtr(v));
    }
    if (!all_embeddings.empty()) {
      result.embeddings = Tensor(graph.num_nodes(), all_embeddings.cols());
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        result.embeddings.SetRow(v, all_embeddings.RowPtr(v));
      }
    }
  } else {
    result.logits = std::move(all_logits);
    result.embeddings = std::move(all_embeddings);
  }
  result.predictions = ArgmaxRows(result.logits);
  result.metrics = std::move(metrics);
  return result;
}

Result<InferenceResult> RunInferTurboPregel(const GraphView& view,
                                            const GnnModel& model,
                                            const InferTurboOptions& options) {
  if (const Graph* resident = view.resident_graph()) {
    return RunInferTurboPregel(*resident, model, options);
  }
  // Out-of-core view: Pregel holds all node state resident anyway, so
  // rebuild the graph and run the resident path on the exact original
  // structure. The rebuild streams through the shard pipeline — I/O
  // for partition p+1 overlaps reconstruction of partition p — after
  // optionally pinning the hub hot-set.
  if (options.pin_hub_shards) {
    const std::int64_t threshold = options.strategies.HubThreshold(
        view.num_edges(), options.num_workers);
    INFERTURBO_RETURN_NOT_OK(view.PinHotSet(threshold).status());
  }
  PipelineStats stats;
  MaterializeOptions materialize;
  materialize.pipeline_slots = options.storage_pipeline_slots;
  materialize.stats = &stats;
  INFERTURBO_ASSIGN_OR_RETURN(Graph graph,
                              MaterializeGraph(view, materialize));
  INFERTURBO_ASSIGN_OR_RETURN(InferenceResult result,
                              RunInferTurboPregel(graph, model, options));
  result.metrics.storage = view.storage_metrics();
  stats.FoldInto(&result.metrics.storage);
  return result;
}

}  // namespace inferturbo
