#ifndef INFERTURBO_INFERENCE_INCREMENTAL_H_
#define INFERTURBO_INFERENCE_INCREMENTAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/nn/model.h"

namespace inferturbo {

/// Incremental full-graph inference — the extension the paper's node
/// state design points at (§IV-C1 keeps "raw features, intermediate
/// embeddings, or even historical embeddings" on the vertex): when a
/// daily graph changes only a little (some features refreshed, some
/// edges added), the affected cone is tiny compared to the graph, and
/// re-scoring everything wastes the very redundancy InferTurbo exists
/// to avoid.
///
/// The algorithm is the standard change-propagation view of layer-wise
/// inference: a node's layer-(l+1) state must be recomputed iff its own
/// layer-l state changed or the layer-l state of any in-neighbor
/// changed (or its in-edge set changed). Everything else is reused from
/// the historical per-layer states.

/// All per-layer states of a full forward: states[0] is the raw feature
/// matrix, states[l] for l in [1, num_layers] the layer outputs.
struct LayerStates {
  std::vector<Tensor> states;

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(states.size()) - 1;
  }
};

/// Runs a full layer-wise forward, retaining every layer — the
/// "historical embeddings" a later incremental run starts from.
LayerStates ComputeLayerStates(const GnnModel& model, const Graph& graph);

/// What changed between the historical graph and `new_graph`.
///
/// Both lists are normalized (sorted + deduplicated) at the entry of
/// IncrementalInference, so callers — in particular a live delta
/// stream whose events arrive unordered and may repeat a node — can
/// hand them over as-is without triggering redundant recomputation or
/// order-dependent results.
struct GraphDelta {
  /// Nodes whose raw features differ in new_graph (new nodes appended
  /// at the end of the id range count as changed).
  std::vector<NodeId> changed_nodes;
  /// Destinations whose in-edge set changed (edges added or removed).
  std::vector<NodeId> changed_in_edges;
};

struct IncrementalOptions {
  /// Compute IncrementalResult::logits (a full head pass over every
  /// node). The serving layer turns this off and materializes logits
  /// lazily per queried node from the returned final-layer states.
  bool compute_logits = true;
};

struct IncrementalResult {
  /// Updated per-layer states over new_graph.
  LayerStates states;
  /// Fresh logits for every node (head applied to the final layer).
  /// Empty when IncrementalOptions::compute_logits is false.
  Tensor logits;
  /// Node-state recomputations performed, per layer. Sum << layers * N
  /// is the savings; a full pass would be exactly layers * N.
  std::vector<std::int64_t> recomputed_per_layer;
  /// Sorted ids whose *final-layer* state was recomputed — exactly the
  /// nodes whose logits may differ from the previous generation.
  /// Downstream result caches invalidate these rows and keep the rest.
  std::vector<NodeId> final_changed_nodes;
};

/// Recomputes only the delta's forward cone. `old_states` must come
/// from ComputeLayerStates on the *previous* graph with the same model;
/// `new_graph` may have more nodes than old_states (growth), in which
/// case the new ids must be listed in delta.changed_nodes.
///
/// Exactness (tested): the returned states equal a from-scratch
/// ComputeLayerStates(model, new_graph) bit-for-bit on every node.
Result<IncrementalResult> IncrementalInference(
    const GnnModel& model, const Graph& new_graph,
    const LayerStates& old_states, const GraphDelta& delta,
    const IncrementalOptions& options = {});

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_INCREMENTAL_H_
