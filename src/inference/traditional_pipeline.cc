#include "src/inference/traditional_pipeline.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/inference/reference_inference.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

/// Bytes the worker pulls from the graph store for one neighborhood:
/// feature rows of every fetched node plus 16 bytes per adjacency
/// record.
std::uint64_t StoreFetchBytes(const Subgraph& sub) {
  return sub.features.ByteSize() +
         static_cast<std::uint64_t>(sub.num_edges()) * 16;
}

/// Peak working set of forwarding `model` on `sub`: the neighborhood
/// itself plus the widest per-edge message tensor and per-node state
/// tensor any layer materializes.
std::size_t ForwardWorkingSetBytes(const GnnModel& model,
                                   const Subgraph& sub) {
  std::int64_t max_msg = 0;
  std::int64_t max_state = sub.features.cols();
  for (std::int64_t l = 0; l < model.num_layers(); ++l) {
    max_msg = std::max(max_msg, model.layer(l).signature().message_dim);
    max_state = std::max(max_state, model.layer(l).signature().output_dim);
  }
  return sub.ApproxByteSize() +
         static_cast<std::size_t>(sub.num_edges() * max_msg) * sizeof(float) +
         static_cast<std::size_t>(sub.num_nodes() * max_state) *
             sizeof(float);
}

}  // namespace

Result<InferenceResult> RunTraditionalPipeline(
    const Graph& graph, const GnnModel& model,
    const TraditionalPipelineOptions& options) {
  if (graph.feature_dim() != model.input_dim()) {
    return Status::InvalidArgument("graph feature dim does not match model");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  const std::int64_t hops =
      options.hops > 0 ? options.hops : model.num_layers();

  std::vector<NodeId> targets = options.targets;
  if (targets.empty()) {
    targets.resize(static_cast<std::size_t>(graph.num_nodes()));
    std::iota(targets.begin(), targets.end(), 0);
  }

  InferenceResult result;
  result.logits = Tensor(graph.num_nodes(), model.num_classes());
  result.metrics.cost_model = options.cost_model;
  result.metrics.workers.resize(
      static_cast<std::size_t>(options.num_workers));

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : DefaultThreadPool();
  const KHopSampler sampler(&graph);
  std::atomic<bool> oom{false};
  std::atomic<std::uint64_t> peak_batch_bytes{0};

  // Contiguous shard of targets per worker.
  const std::size_t shard =
      (targets.size() + static_cast<std::size_t>(options.num_workers) - 1) /
      static_cast<std::size_t>(options.num_workers);
  pool.ParallelFor(static_cast<std::size_t>(options.num_workers),
                   [&](std::size_t w) {
    WorkerStepMetrics& m =
        result.metrics.workers[w].steps.emplace_back();
    const std::size_t begin = w * shard;
    const std::size_t end = std::min(targets.size(), begin + shard);
    std::int64_t batch_counter = 0;
    for (std::size_t b = begin; b < end && !oom.load();
         b += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t batch_end = std::min(
          end, b + static_cast<std::size_t>(options.batch_size));
      const std::span<const NodeId> batch(targets.data() + b, batch_end - b);

      // Per-(run, worker, batch) sampling stream: different seeds give
      // different predictions when fanout is active (Fig. 7).
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL +
              (static_cast<std::uint64_t>(w) << 32) +
              static_cast<std::uint64_t>(batch_counter++));
      KHopOptions khop;
      khop.hops = hops;
      khop.fanout = options.fanout;

      WallTimer timer;
      const Subgraph sub = sampler.Sample(batch, khop, &rng);
      const std::size_t working_set = ForwardWorkingSetBytes(model, sub);
      std::uint64_t prev = peak_batch_bytes.load();
      while (working_set > prev &&
             !peak_batch_bytes.compare_exchange_weak(prev, working_set)) {
      }
      if (working_set > options.memory_budget_bytes) {
        oom.store(true);
        return;
      }
      // Store traffic: the whole neighborhood crosses the network, one
      // round trip per hop expansion.
      m.bytes_in += StoreFetchBytes(sub);
      m.wait_seconds += options.store_rtt_seconds * static_cast<double>(hops);
      m.records_in += sub.num_nodes() + sub.num_edges();

      const Tensor states =
          LayerStackForward(model, sub.features, sub.src_local,
                            sub.dst_local);
      // Head over the batch targets (local rows [0, num_targets)).
      Tensor target_states(sub.num_targets, states.cols());
      for (std::int64_t i = 0; i < sub.num_targets; ++i) {
        target_states.SetRow(i, states.RowPtr(i));
      }
      const Tensor logits = model.PredictLogits(target_states);
      for (std::int64_t i = 0; i < sub.num_targets; ++i) {
        result.logits.SetRow(sub.nodes[static_cast<std::size_t>(i)],
                             logits.RowPtr(i));
        ++m.records_out;
      }
      m.busy_seconds += timer.ElapsedSeconds();
    }
  });

  if (oom.load()) {
    return Status::OutOfMemory(
        "a neighborhood working set of " +
        FormatBytes(peak_batch_bytes.load()) + " exceeded the per-worker "
        "budget of " + FormatBytes(options.memory_budget_bytes));
  }
  result.predictions = ArgmaxRows(result.logits);
  return result;
}

}  // namespace inferturbo
