#ifndef INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_
#define INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/result.h"
#include "src/nn/model.h"

namespace inferturbo {

/// Full-graph layer-wise GNN inference on the MapReduce backend (paper
/// §IV-C2). Unlike the Pregel backend nothing stays resident between
/// rounds: the Map stage turns the node table into self-state,
/// in-message, and out-edge records; each Reduce round performs one GNN
/// layer for its keys and re-emits everything the next round needs
/// (including each node's state and out-edge list, shipped to itself).
/// The prediction slice is merged into the last Reduce. More shuffle
/// volume than Pregel, far lower resident memory — the paper's
/// cost/efficiency trade-off between the two backends.
Result<InferenceResult> RunInferTurboMapReduce(
    const Graph& graph, const GnnModel& model,
    const InferTurboOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_
