#ifndef INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_
#define INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_

#include "src/common/result.h"
#include "src/graph/graph.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/result.h"
#include "src/nn/model.h"

namespace inferturbo {

class GraphView;

/// Full-graph layer-wise GNN inference on the MapReduce backend (paper
/// §IV-C2). Unlike the Pregel backend nothing stays resident between
/// rounds: the Map stage turns the node table into self-state,
/// in-message, and out-edge records; each Reduce round performs one GNN
/// layer for its keys and re-emits everything the next round needs
/// (including each node's state and out-edge list, shipped to itself).
/// The prediction slice is merged into the last Reduce. More shuffle
/// volume than Pregel, far lower resident memory — the paper's
/// cost/efficiency trade-off between the two backends.
Result<InferenceResult> RunInferTurboMapReduce(
    const Graph& graph, const GnnModel& model,
    const InferTurboOptions& options);

/// Same pipeline over a GraphView: map instance p streams partition p
/// of the view (prefetching p+1), so an out-of-core shard-backed view
/// runs with only ~one partition resident per mapper. Logits are
/// bit-identical to the in-memory overload because the view presents
/// partitions in the same HashPartitioner member order with the same
/// raw feature bytes. Requires options.num_workers ==
/// view.num_partitions() (the partitioning IS the worker assignment);
/// anything else is an InvalidArgument. The shadow_nodes strategy
/// rewrites the whole graph, so that path materializes the view first.
/// result.metrics.storage carries the view's storage counters.
Result<InferenceResult> RunInferTurboMapReduce(
    const GraphView& view, const GnnModel& model,
    const InferTurboOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_INFERTURBO_MAPREDUCE_H_
