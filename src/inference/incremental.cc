#include "src/inference/incremental.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"
#include "src/gas/gas_conv.h"
#include "src/tensor/ops.h"

namespace inferturbo {

LayerStates ComputeLayerStates(const GnnModel& model, const Graph& graph) {
  LayerStates out;
  out.states.push_back(graph.node_features());
  Tensor h = graph.node_features();
  for (std::int64_t l = 0; l < model.num_layers(); ++l) {
    const GasConv& layer = model.layer(l);
    const Tensor node_messages = layer.ComputeMessage(h);
    Tensor edge_messages = GatherRows(node_messages, graph.edge_src());
    edge_messages = layer.ApplyEdge(
        edge_messages, layer.signature().uses_edge_features
                           ? &graph.edge_features()
                           : nullptr);
    const GatherResult gathered =
        GatherIntoResult(layer.signature().agg_kind, edge_messages,
                         graph.edge_dst(), graph.num_nodes(),
                         /*is_partial=*/false);
    h = layer.ApplyNode(h, gathered);
    out.states.push_back(h);
  }
  return out;
}

namespace {

/// Recomputes layer `l`'s output rows for `affected` over `graph`,
/// reading inputs from `prev` (layer-l input states, already correct
/// for every node) and writing into `next` rows.
void RecomputeRows(const GasConv& layer, const Graph& graph,
                   const Tensor& prev, const std::vector<NodeId>& affected,
                   Tensor* next) {
  // Per-edge gather restricted to the affected nodes' in-edges, in
  // global edge-id order per node — the same fold order the full pass
  // uses, so results are bit-identical.
  std::vector<std::int64_t> srcs;
  std::vector<std::int64_t> dst_local;
  std::vector<EdgeId> edge_ids;
  for (std::size_t i = 0; i < affected.size(); ++i) {
    for (EdgeId e : graph.InEdges(affected[i])) {
      srcs.push_back(graph.EdgeSrc(e));
      dst_local.push_back(static_cast<std::int64_t>(i));
      edge_ids.push_back(e);
    }
  }
  const Tensor src_states = GatherRows(prev, srcs);
  Tensor edge_messages = layer.ComputeMessage(src_states);
  if (layer.signature().uses_edge_features) {
    const Tensor edge_feats = GatherRows(graph.edge_features(), edge_ids);
    edge_messages = layer.ApplyEdge(edge_messages, &edge_feats);
  } else {
    edge_messages = layer.ApplyEdge(edge_messages, nullptr);
  }
  const GatherResult gathered = GatherIntoResult(
      layer.signature().agg_kind, edge_messages, dst_local,
      static_cast<std::int64_t>(affected.size()), /*is_partial=*/false);
  std::vector<std::int64_t> affected_idx(affected.begin(), affected.end());
  const Tensor own_states = GatherRows(prev, affected_idx);
  const Tensor updated = layer.ApplyNode(own_states, gathered);
  for (std::size_t i = 0; i < affected.size(); ++i) {
    next->SetRow(affected[i], updated.RowPtr(static_cast<std::int64_t>(i)));
  }
}

/// Entry normalization: callers (a live delta stream in particular)
/// may deliver ids unordered and with repeats; one sorted, unique copy
/// makes every downstream pass order- and duplicate-insensitive.
std::vector<NodeId> SortedUnique(const std::vector<NodeId>& ids) {
  std::vector<NodeId> out = ids;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<IncrementalResult> IncrementalInference(
    const GnnModel& model, const Graph& new_graph,
    const LayerStates& old_states, const GraphDelta& delta,
    const IncrementalOptions& options) {
  if (old_states.num_layers() != model.num_layers()) {
    return Status::InvalidArgument("historical states layer count (" +
                                   std::to_string(old_states.num_layers()) +
                                   ") does not match the model");
  }
  const std::int64_t old_n = old_states.states[0].rows();
  const std::int64_t new_n = new_graph.num_nodes();
  if (new_n < old_n) {
    return Status::InvalidArgument(
        "node removals are not supported; rebuild from scratch");
  }
  const std::vector<NodeId> changed_nodes = SortedUnique(delta.changed_nodes);
  const std::vector<NodeId> changed_in_edges =
      SortedUnique(delta.changed_in_edges);
  for (NodeId v : changed_nodes) {
    if (v < 0 || v >= new_n) {
      return Status::InvalidArgument("changed node out of range");
    }
  }
  for (NodeId v : changed_in_edges) {
    if (v < 0 || v >= new_n) {
      return Status::InvalidArgument("changed destination out of range");
    }
  }

  IncrementalResult result;
  result.states.states.reserve(
      static_cast<std::size_t>(model.num_layers()) + 1);
  // Layer 0: the new feature matrix (already includes changed rows).
  result.states.states.push_back(new_graph.node_features());

  // dirty[v] = v's *current-layer* state differs from the historical
  // one. Seeds: feature changes and graph growth.
  std::vector<bool> dirty(static_cast<std::size_t>(new_n), false);
  std::vector<NodeId> dirty_list;
  const auto mark = [&dirty, &dirty_list](NodeId v) {
    if (!dirty[static_cast<std::size_t>(v)]) {
      dirty[static_cast<std::size_t>(v)] = true;
      dirty_list.push_back(v);
    }
  };
  for (NodeId v : changed_nodes) mark(v);
  for (NodeId v = old_n; v < new_n; ++v) mark(v);

  for (std::int64_t l = 0; l < model.num_layers(); ++l) {
    // Who needs layer l+1 recomputed: every currently-dirty node, every
    // out-neighbor of a dirty node, and every node whose in-edge set
    // changed (their gather differs at every layer).
    std::vector<bool> next_dirty(static_cast<std::size_t>(new_n), false);
    std::vector<NodeId> affected;
    const auto mark_next = [&next_dirty, &affected](NodeId v) {
      if (!next_dirty[static_cast<std::size_t>(v)]) {
        next_dirty[static_cast<std::size_t>(v)] = true;
        affected.push_back(v);
      }
    };
    for (NodeId v : dirty_list) {
      mark_next(v);
      for (EdgeId e : new_graph.OutEdges(v)) mark_next(new_graph.EdgeDst(e));
    }
    for (NodeId v : changed_in_edges) mark_next(v);
    std::sort(affected.begin(), affected.end());

    // Start from the historical layer (grown to the new node count),
    // then patch the affected rows.
    const Tensor& historical =
        old_states.states[static_cast<std::size_t>(l) + 1];
    Tensor next(new_n, historical.cols());
    for (NodeId v = 0; v < old_n; ++v) {
      next.SetRow(v, historical.RowPtr(v));
    }
    RecomputeRows(model.layer(l), new_graph,
                  result.states.states.back(), affected, &next);
    result.recomputed_per_layer.push_back(
        static_cast<std::int64_t>(affected.size()));
    result.states.states.push_back(std::move(next));

    dirty = std::move(next_dirty);
    dirty_list = std::move(affected);
  }

  // dirty_list now holds the last layer's affected set (sorted) — the
  // only nodes whose final states, and hence logits, may have moved.
  result.final_changed_nodes = std::move(dirty_list);
  if (options.compute_logits) {
    result.logits = model.PredictLogits(result.states.states.back());
  }
  return result;
}

}  // namespace inferturbo
