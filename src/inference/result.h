#ifndef INFERTURBO_INFERENCE_RESULT_H_
#define INFERTURBO_INFERENCE_RESULT_H_

#include <cstdint>
#include <vector>

#include "src/pregel/worker_metrics.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// Output of a full-graph inference job: per-node logits and argmax
/// predictions (indexed by original node id), plus the per-worker
/// accounting the evaluation section plots.
struct InferenceResult {
  /// (num_nodes × num_classes); for multi-label models these are
  /// per-label sigmoid logits.
  Tensor logits;
  /// Argmax class per node (single-label convenience view).
  std::vector<std::int64_t> predictions;
  /// (num_nodes × embedding_dim) final-layer states — the paper's other
  /// output mode ("node embeddings or scores", §IV-C1). Populated only
  /// when InferTurboOptions.export_embeddings is set.
  Tensor embeddings;
  JobMetrics metrics;
};

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_RESULT_H_
