#ifndef INFERTURBO_INFERENCE_TRADITIONAL_PIPELINE_H_
#define INFERTURBO_INFERENCE_TRADITIONAL_PIPELINE_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/graph/graph.h"
#include "src/inference/result.h"
#include "src/nn/model.h"
#include "src/sampling/khop_sampler.h"

namespace inferturbo {

/// The traditional training-style inference pipeline the paper
/// benchmarks against (its PyG/DGL columns): a fleet of stateless
/// inference workers pulls each target node's k-hop neighborhood from a
/// distributed graph store, then forwards the model on that
/// neighborhood — recomputing every overlap between neighborhoods. With
/// `fanout` set, neighbors are subsampled per hop (fast but stochastic:
/// Fig. 7's inconsistency); with kNoSampling it is exact but the
/// neighborhood grows exponentially with hops (Tab. IV) and can exceed
/// the per-worker memory budget (the paper's OOM cells).
struct TraditionalPipelineOptions {
  std::int64_t num_workers = 8;
  /// Target nodes scored per forward.
  std::int64_t batch_size = 32;
  /// Per-hop in-neighbor cap; KHopOptions::kNoSampling = exact.
  std::int64_t fanout = KHopOptions::kNoSampling;
  /// Hops to expand; 0 = use the model's layer count.
  std::int64_t hops = 0;
  /// Seed for neighbor sampling — vary it across runs to reproduce the
  /// paper's consistency experiment.
  std::uint64_t seed = 1;
  /// Per-worker memory budget; a batch whose neighborhood working set
  /// exceeds it aborts the job with OutOfMemory.
  std::size_t memory_budget_bytes = std::size_t{2} * 1024 * 1024 * 1024;
  /// Graph-store servers backing the workers (adds request latency).
  std::int64_t graph_store_servers = 4;
  /// Round-trip latency per neighborhood-expansion request to the
  /// store.
  double store_rtt_seconds = 2e-4;
  ClusterCostModel cost_model;
  ThreadPool* pool = nullptr;
  /// When non-empty, score only these nodes (all nodes otherwise).
  std::vector<NodeId> targets;
};

/// Runs the baseline over every node (or options.targets) and returns
/// logits/predictions plus per-worker accounting comparable to the
/// InferTurbo backends'.
Result<InferenceResult> RunTraditionalPipeline(
    const Graph& graph, const GnnModel& model,
    const TraditionalPipelineOptions& options);

}  // namespace inferturbo

#endif  // INFERTURBO_INFERENCE_TRADITIONAL_PIPELINE_H_
