#include "src/inference/output_writer.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/graph/partition.h"

namespace inferturbo {
namespace {

std::string ShardName(const char* prefix, std::int64_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_%05lld.tsv", prefix,
                static_cast<long long>(shard));
  return buf;
}

void AppendFloats(const float* values, std::int64_t n, std::string* line) {
  char buf[32];
  for (std::int64_t j = 0; j < n; ++j) {
    line->push_back(j == 0 ? '\t' : ',');
    std::snprintf(buf, sizeof(buf), "%.6g", values[j]);
    line->append(buf);
  }
}

}  // namespace

Status WriteInferenceOutput(const InferenceResult& result,
                            const std::string& directory,
                            const OutputWriterOptions& options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  const std::int64_t num_nodes = result.logits.rows();
  const bool with_embeddings = !result.embeddings.empty();
  HashPartitioner partitioner(options.num_shards);

  std::vector<std::ofstream> scores;
  std::vector<std::ofstream> embeddings;
  for (std::int64_t s = 0; s < options.num_shards; ++s) {
    scores.emplace_back(directory + "/" + ShardName("scores", s));
    if (!scores.back()) {
      return Status::IoError("cannot open score shard " +
                             std::to_string(s) + " under " + directory);
    }
    if (with_embeddings) {
      embeddings.emplace_back(directory + "/" + ShardName("embeddings", s));
      if (!embeddings.back()) {
        return Status::IoError("cannot open embedding shard " +
                               std::to_string(s));
      }
    }
  }

  std::vector<std::int64_t> rows_per_shard(
      static_cast<std::size_t>(options.num_shards), 0);
  std::string line;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::int64_t shard = partitioner.PartitionOf(v);
    ++rows_per_shard[static_cast<std::size_t>(shard)];
    line.clear();
    line += std::to_string(v);
    line.push_back('\t');
    line += std::to_string(result.predictions[static_cast<std::size_t>(v)]);
    if (options.write_logits) {
      AppendFloats(result.logits.RowPtr(v), result.logits.cols(), &line);
    }
    line.push_back('\n');
    scores[static_cast<std::size_t>(shard)] << line;
    if (with_embeddings) {
      line.clear();
      line += std::to_string(v);
      AppendFloats(result.embeddings.RowPtr(v), result.embeddings.cols(),
                   &line);
      line.push_back('\n');
      embeddings[static_cast<std::size_t>(shard)] << line;
    }
  }

  std::ofstream manifest(directory + "/MANIFEST.tsv");
  if (!manifest) return Status::IoError("cannot open manifest");
  manifest << "num_nodes\t" << num_nodes << "\n";
  manifest << "num_shards\t" << options.num_shards << "\n";
  manifest << "embeddings\t" << (with_embeddings ? 1 : 0) << "\n";
  for (std::int64_t s = 0; s < options.num_shards; ++s) {
    manifest << ShardName("scores", s) << "\t"
             << rows_per_shard[static_cast<std::size_t>(s)] << "\n";
  }
  for (auto& out : scores) {
    if (!out) return Status::IoError("score shard write failed");
  }
  return Status::OK();
}

Result<std::vector<std::int64_t>> ReadPredictions(
    const std::string& directory) {
  std::ifstream manifest(directory + "/MANIFEST.tsv");
  if (!manifest) return Status::IoError("cannot open manifest");
  std::string key;
  std::int64_t num_nodes = 0, num_shards = 0, has_embeddings = 0;
  manifest >> key >> num_nodes >> key >> num_shards >> key >> has_embeddings;
  if (!manifest || num_nodes <= 0 || num_shards <= 0) {
    return Status::IoError("malformed manifest");
  }
  std::vector<std::int64_t> predictions(
      static_cast<std::size_t>(num_nodes), -1);
  for (std::int64_t s = 0; s < num_shards; ++s) {
    std::ifstream shard(directory + "/" + ShardName("scores", s));
    if (!shard) return Status::IoError("missing score shard");
    std::string line;
    while (std::getline(shard, line)) {
      if (line.empty()) continue;
      std::int64_t node = 0, pred = 0;
      const char* p = line.data();
      const char* end = line.data() + line.size();
      auto r1 = std::from_chars(p, end, node);
      if (r1.ec != std::errc() || r1.ptr >= end || *r1.ptr != '\t') {
        return Status::IoError("malformed score row: " + line);
      }
      auto r2 = std::from_chars(r1.ptr + 1, end, pred);
      if (r2.ec != std::errc()) {
        return Status::IoError("malformed score row: " + line);
      }
      if (node < 0 || node >= num_nodes) {
        return Status::IoError("score row for unknown node");
      }
      predictions[static_cast<std::size_t>(node)] = pred;
    }
  }
  for (std::int64_t pred : predictions) {
    if (pred < 0) return Status::IoError("manifest promised missing rows");
  }
  return predictions;
}

}  // namespace inferturbo
