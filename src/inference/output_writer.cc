#include "src/inference/output_writer.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/crc32.h"
#include "src/graph/partition.h"

namespace inferturbo {
namespace {

std::string ShardName(const char* prefix, std::int64_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_%05lld.tsv", prefix,
                static_cast<long long>(shard));
  return buf;
}

void AppendFloats(const float* values, std::int64_t n, std::string* line) {
  char buf[32];
  for (std::int64_t j = 0; j < n; ++j) {
    line->push_back(j == 0 ? '\t' : ',');
    std::snprintf(buf, sizeof(buf), "%.6g", values[j]);
    line->append(buf);
  }
}

std::string CrcHex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace

Status WriteInferenceOutput(const InferenceResult& result,
                            const std::string& directory,
                            const OutputWriterOptions& options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  const std::int64_t num_nodes = result.logits.rows();
  const bool with_embeddings = !result.embeddings.empty();
  HashPartitioner partitioner(options.num_shards);

  // Shard contents are built in memory first, then each file lands
  // atomically (temp + rename) and the manifest — which downstream
  // consumers treat as the commit record — is written only after every
  // shard is durable. A crash mid-export leaves either a complete,
  // readable export or no manifest at all, never a torn one.
  std::vector<std::string> scores(
      static_cast<std::size_t>(options.num_shards));
  std::vector<std::string> embeddings(
      static_cast<std::size_t>(with_embeddings ? options.num_shards : 0));
  std::vector<std::int64_t> rows_per_shard(
      static_cast<std::size_t>(options.num_shards), 0);
  std::string line;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::int64_t shard = partitioner.PartitionOf(v);
    ++rows_per_shard[static_cast<std::size_t>(shard)];
    line.clear();
    line += std::to_string(v);
    line.push_back('\t');
    line += std::to_string(result.predictions[static_cast<std::size_t>(v)]);
    if (options.write_logits) {
      AppendFloats(result.logits.RowPtr(v), result.logits.cols(), &line);
    }
    line.push_back('\n');
    scores[static_cast<std::size_t>(shard)] += line;
    if (with_embeddings) {
      line.clear();
      line += std::to_string(v);
      AppendFloats(result.embeddings.RowPtr(v), result.embeddings.cols(),
                   &line);
      line.push_back('\n');
      embeddings[static_cast<std::size_t>(shard)] += line;
    }
  }

  for (std::int64_t s = 0; s < options.num_shards; ++s) {
    INFERTURBO_RETURN_NOT_OK(WriteFileAtomic(
        directory + "/" + ShardName("scores", s),
        scores[static_cast<std::size_t>(s)], options.fault_injector,
        options.retry));
    if (with_embeddings) {
      INFERTURBO_RETURN_NOT_OK(WriteFileAtomic(
          directory + "/" + ShardName("embeddings", s),
          embeddings[static_cast<std::size_t>(s)], options.fault_injector,
          options.retry));
    }
  }

  // Manifest rows carry each score shard's row count and CRC32 so
  // readers can verify shard integrity end to end.
  std::ostringstream manifest;
  manifest << "num_nodes\t" << num_nodes << "\n";
  manifest << "num_shards\t" << options.num_shards << "\n";
  manifest << "embeddings\t" << (with_embeddings ? 1 : 0) << "\n";
  for (std::int64_t s = 0; s < options.num_shards; ++s) {
    manifest << ShardName("scores", s) << "\t"
             << rows_per_shard[static_cast<std::size_t>(s)] << "\t"
             << CrcHex(Crc32(scores[static_cast<std::size_t>(s)])) << "\n";
  }
  return WriteFileAtomic(directory + "/MANIFEST.tsv", manifest.str(),
                         options.fault_injector, options.retry);
}

Result<std::vector<std::int64_t>> ReadPredictions(
    const std::string& directory, IoFaultInjector* injector,
    const IoRetryPolicy& retry) {
  std::ifstream manifest_in(directory + "/MANIFEST.tsv");
  if (!manifest_in) return Status::IoError("cannot open manifest");
  std::string key;
  std::int64_t num_nodes = 0, num_shards = 0, has_embeddings = 0;
  manifest_in >> key >> num_nodes >> key >> num_shards >> key >>
      has_embeddings;
  if (!manifest_in || num_nodes <= 0 || num_shards <= 0) {
    return Status::IoError("malformed manifest");
  }
  // Per-shard rows: name, row count, crc32 hex.
  std::vector<std::int64_t> shard_rows(static_cast<std::size_t>(num_shards));
  std::vector<std::string> shard_crc(static_cast<std::size_t>(num_shards));
  for (std::int64_t s = 0; s < num_shards; ++s) {
    std::string name;
    manifest_in >> name >> shard_rows[static_cast<std::size_t>(s)] >>
        shard_crc[static_cast<std::size_t>(s)];
    if (!manifest_in || name != ShardName("scores", s)) {
      return Status::IoError("malformed manifest shard row for shard " +
                             std::to_string(s));
    }
  }

  std::vector<std::int64_t> predictions(
      static_cast<std::size_t>(num_nodes), -1);
  for (std::int64_t s = 0; s < num_shards; ++s) {
    const std::string path = directory + "/" + ShardName("scores", s);
    // Read + CRC verify as one retried unit: a transient short read or
    // bit flip fails the checksum and the retry re-reads healthy bytes;
    // persistent corruption surfaces as a descriptive IoError.
    std::string content;
    INFERTURBO_RETURN_NOT_OK(RetryWithBackoff(retry, [&] {
      INFERTURBO_ASSIGN_OR_RETURN(content, ReadFileToString(path, injector));
      const std::string actual = CrcHex(Crc32(content));
      if (actual != shard_crc[static_cast<std::size_t>(s)]) {
        return Status::IoError(
            "score shard checksum mismatch for " + path + " (manifest " +
            shard_crc[static_cast<std::size_t>(s)] + ", computed " + actual +
            ")");
      }
      return Status::OK();
    }));
    std::istringstream shard(content);
    std::int64_t rows_seen = 0;
    std::string line;
    while (std::getline(shard, line)) {
      if (line.empty()) continue;
      std::int64_t node = 0, pred = 0;
      const char* p = line.data();
      const char* end = line.data() + line.size();
      auto r1 = std::from_chars(p, end, node);
      if (r1.ec != std::errc() || r1.ptr >= end || *r1.ptr != '\t') {
        return Status::IoError("malformed score row: " + line);
      }
      auto r2 = std::from_chars(r1.ptr + 1, end, pred);
      if (r2.ec != std::errc()) {
        return Status::IoError("malformed score row: " + line);
      }
      if (node < 0 || node >= num_nodes) {
        return Status::IoError("score row for unknown node");
      }
      predictions[static_cast<std::size_t>(node)] = pred;
      ++rows_seen;
    }
    if (rows_seen != shard_rows[static_cast<std::size_t>(s)]) {
      return Status::IoError(
          "score shard " + std::to_string(s) + " holds " +
          std::to_string(rows_seen) + " rows, manifest promised " +
          std::to_string(shard_rows[static_cast<std::size_t>(s)]));
    }
  }
  for (std::int64_t pred : predictions) {
    if (pred < 0) return Status::IoError("manifest promised missing rows");
  }
  return predictions;
}

}  // namespace inferturbo
