#ifndef INFERTURBO_TENSOR_OPS_H_
#define INFERTURBO_TENSOR_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace inferturbo {

/// Dense kernels used by both the inference computation flow and the
/// training tape. All functions allocate their output; in-place variants
/// carry the InPlace suffix. Shape mismatches are programmer errors and
/// abort via INFERTURBO_CHECK.

/// C = A(m×k) · B(k×n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A(m×k) · B(n×k)^T.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);
/// C = A(k×m)^T · B(k×n).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
void AddInPlace(Tensor* a, const Tensor& b);
/// Adds a 1×d bias row to every row of a (n×d).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
/// Elementwise difference.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Scales every entry of a (n×d) row r by column vector s (n×1).
Tensor MulColBroadcast(const Tensor& a, const Tensor& scale);
Tensor Scale(const Tensor& a, float factor);
void ScaleInPlace(Tensor* a, float factor);

Tensor Relu(const Tensor& a);
/// max(x, slope*x); GAT uses slope 0.2.
Tensor LeakyRelu(const Tensor& a, float slope);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

/// Row-wise softmax (n×d) -> (n×d).
Tensor SoftmaxRows(const Tensor& a);
/// Row-wise log-softmax, numerically stabilized.
Tensor LogSoftmaxRows(const Tensor& a);

/// [a | b] column concatenation; row counts must match.
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Columns [begin, end) of a.
Tensor SliceCols(const Tensor& a, std::int64_t begin, std::int64_t end);
/// Stacks a (n1×d) above b (n2×d).
Tensor ConcatRows(const Tensor& a, const Tensor& b);

Tensor Transpose(const Tensor& a);

/// out[i] = a[indices[i]]; rows gathered with repetition allowed.
Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices);
/// acc[indices[i]] += rows[i] for all i; acc must be preallocated.
void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows);

/// Sum of all entries.
double SumAll(const Tensor& a);
/// Index of the max entry in each row (ties -> lowest index).
std::vector<std::int64_t> ArgmaxRows(const Tensor& a);
/// L2 norm of all entries viewed as one vector.
double L2Norm(const Tensor& a);

}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_OPS_H_
