#ifndef INFERTURBO_TENSOR_SEGMENT_OPS_H_
#define INFERTURBO_TENSOR_SEGMENT_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace inferturbo {

/// Segment reductions: the heart of the Gather stage. Rows of `values`
/// are reduced into `num_segments` output rows keyed by `segment_ids`
/// (one id per input row; ids need not be sorted). Segments that receive
/// no rows are left at the reduction's identity (0 for sum/mean,
/// 0 for max/min as well — callers treat count==0 as "no messages").

/// out[s] = Σ_{i: ids[i]==s} values[i].
Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// out[s] = mean over the segment; empty segments stay zero.
Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments);

/// out[s] = elementwise max; empty segments stay zero.
Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// out[s] = elementwise min; empty segments stay zero.
Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// Number of rows per segment.
std::vector<std::int64_t> SegmentCounts(std::span<const std::int64_t> ids,
                                        std::int64_t num_segments);

/// Softmax over each segment of a column vector of logits (n×1):
/// out[i] = exp(l[i]) / Σ_{j in segment(i)} exp(l[j]). Numerically
/// stabilized per segment. This is GAT's attention normalization over a
/// node's in-edges.
Tensor SegmentSoftmax(const Tensor& logits, std::span<const std::int64_t> ids,
                      std::int64_t num_segments);

}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_SEGMENT_OPS_H_
