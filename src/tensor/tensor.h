#ifndef INFERTURBO_TENSOR_TENSOR_H_
#define INFERTURBO_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace inferturbo {
namespace detail {

/// Backing storage for large tensors. Buffers of 2 MB and up are
/// allocated 2 MB-aligned and advised MADV_HUGEPAGE (Linux): the
/// superstep data plane streams multi-hundred-MB message payloads, and
/// on 4 KB pages the TLB walk overhead of those streams is measurable.
/// Always freed with std::free; small buffers come from std::malloc.
void* AllocFloatBuffer(std::size_t bytes);
void FreeFloatBuffer(void* ptr);

template <typename T>
struct HugePageAllocator {
  using value_type = T;
  HugePageAllocator() = default;
  template <typename U>
  constexpr HugePageAllocator(const HugePageAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(AllocFloatBuffer(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { FreeFloatBuffer(p); }
};
template <typename T, typename U>
bool operator==(const HugePageAllocator<T>&, const HugePageAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const HugePageAllocator<T>&, const HugePageAllocator<U>&) {
  return false;
}

}  // namespace detail

/// Float storage with the huge-page-friendly allocator above.
using FloatBuffer = std::vector<float, detail::HugePageAllocator<float>>;

/// A dense row-major float32 matrix.
///
/// Everything a GAS-style GNN layer computes is two-dimensional: node
/// states are (num_nodes × dim), edge messages are (num_edges × dim),
/// weights are (in × out). A single 2-D type keeps the kernel surface
/// small; vectors are represented as 1×d or n×1 matrices.
class Tensor {
 public:
  /// An empty 0×0 tensor.
  Tensor() = default;

  /// Uninitialized storage is never exposed: this zero-fills.
  Tensor(std::int64_t rows, std::int64_t cols);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(std::int64_t rows, std::int64_t cols);
  static Tensor Full(std::int64_t rows, std::int64_t cols, float value);
  /// Builds from a row-major initializer, e.g. {{1,2},{3,4}}.
  static Tensor FromRows(
      const std::vector<std::vector<float>>& rows);
  /// Glorot/Xavier-uniform initialization, deterministic under `rng`.
  static Tensor GlorotUniform(std::int64_t rows, std::int64_t cols, Rng* rng);
  /// I.i.d. N(0, stddev^2) entries, deterministic under `rng`.
  static Tensor RandomNormal(std::int64_t rows, std::int64_t cols,
                             float stddev, Rng* rng);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float At(std::int64_t r, std::int64_t c) const {
    return data_[r * cols_ + c];
  }
  float& At(std::int64_t r, std::int64_t c) { return data_[r * cols_ + c]; }

  const float* RowPtr(std::int64_t r) const { return data_.data() + r * cols_; }
  float* RowPtr(std::int64_t r) { return data_.data() + r * cols_; }
  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  /// Copies row `r` out as a vector (used when a single node's state is
  /// packed into a message).
  std::vector<float> RowVector(std::int64_t r) const;
  /// Overwrites row `r` from `values` (size must equal cols()).
  void SetRow(std::int64_t r, const std::vector<float>& values);
  void SetRow(std::int64_t r, const float* values);

  /// Appends one row of cols() floats. Amortized O(cols): storage grows
  /// geometrically underneath while rows() stays exact, so incremental
  /// builders (MessageBatch::Push) cost the same as sizing up front.
  void AppendRow(const float* values);
  /// Pre-reserves storage for `rows` total rows (capacity only; rows()
  /// is unchanged).
  void ReserveRows(std::int64_t rows);

  /// Serialized payload size of the whole tensor on the simulated wire.
  std::size_t ByteSize() const { return data_.size() * sizeof(float); }

  /// True when shapes match and all entries differ by at most `atol`.
  bool ApproxEquals(const Tensor& other, float atol = 1e-5f) const;

  /// Shape and (for small tensors) contents, for test failure messages.
  std::string ToString() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  FloatBuffer data_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_TENSOR_H_
