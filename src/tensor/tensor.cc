#include "src/tensor/tensor.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "src/common/logging.h"

namespace inferturbo {
namespace detail {

void* AllocFloatBuffer(std::size_t bytes) {
  constexpr std::size_t kHugePage = std::size_t{2} << 20;
#if defined(__linux__)
  if (bytes >= kHugePage) {
    // aligned_alloc wants size a multiple of the alignment; the slack
    // is invisible to the vector, which tracks its own capacity.
    const std::size_t rounded = (bytes + kHugePage - 1) & ~(kHugePage - 1);
    void* ptr = std::aligned_alloc(kHugePage, rounded);
    if (ptr != nullptr) {
      ::madvise(ptr, rounded, MADV_HUGEPAGE);
      return ptr;
    }
  }
#endif
  void* ptr = std::malloc(bytes > 0 ? bytes : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void FreeFloatBuffer(void* ptr) { std::free(ptr); }

}  // namespace detail

Tensor::Tensor(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols)) {
  INFERTURBO_CHECK(rows >= 0 && cols >= 0)
      << "negative tensor shape " << rows << "x" << cols;
}

Tensor Tensor::Zeros(std::int64_t rows, std::int64_t cols) {
  return Tensor(rows, cols);
}

Tensor Tensor::Full(std::int64_t rows, std::int64_t cols, float value) {
  Tensor t(rows, cols);
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Tensor();
  Tensor t(static_cast<std::int64_t>(rows.size()),
           static_cast<std::int64_t>(rows[0].size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    INFERTURBO_CHECK(rows[r].size() == rows[0].size())
        << "ragged initializer at row " << r;
    std::memcpy(t.RowPtr(static_cast<std::int64_t>(r)), rows[r].data(),
                rows[r].size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::GlorotUniform(std::int64_t rows, std::int64_t cols, Rng* rng) {
  Tensor t(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : t.data_) v = rng->NextFloat(-limit, limit);
  return t;
}

Tensor Tensor::RandomNormal(std::int64_t rows, std::int64_t cols, float stddev,
                            Rng* rng) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = stddev * static_cast<float>(rng->NextGaussian());
  }
  return t;
}

std::vector<float> Tensor::RowVector(std::int64_t r) const {
  return std::vector<float>(RowPtr(r), RowPtr(r) + cols_);
}

void Tensor::SetRow(std::int64_t r, const std::vector<float>& values) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(values.size()) == cols_)
      << "SetRow size mismatch: " << values.size() << " vs " << cols_;
  SetRow(r, values.data());
}

void Tensor::SetRow(std::int64_t r, const float* values) {
  std::memcpy(RowPtr(r), values, static_cast<std::size_t>(cols_) *
                                     sizeof(float));
}

void Tensor::AppendRow(const float* values) {
  data_.insert(data_.end(), values, values + cols_);
  ++rows_;
}

void Tensor::ReserveRows(std::int64_t rows) {
  data_.reserve(static_cast<std::size_t>(rows * cols_));
}

bool Tensor::ApproxEquals(const Tensor& other, float atol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")";
  if (size() <= 64) {
    os << " [";
    for (std::int64_t r = 0; r < rows_; ++r) {
      os << (r == 0 ? "[" : ", [");
      for (std::int64_t c = 0; c < cols_; ++c) {
        if (c > 0) os << ", ";
        os << At(r, c);
      }
      os << "]";
    }
    os << "]";
  }
  return os.str();
}

}  // namespace inferturbo
