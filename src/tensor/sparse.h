#ifndef INFERTURBO_TENSOR_SPARSE_H_
#define INFERTURBO_TENSOR_SPARSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace inferturbo {

/// A rows×cols sparse float32 matrix in CSR form.
///
/// The paper's fused scatter_and_gather for GraphSAGE is a generalized
/// sparse-dense product `Dot(A, node_state)` where A is built from
/// (dst_index, src_index) pairs; this type provides that path for the
/// training side.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO triples. Duplicate (row, col) entries are summed.
  static CsrMatrix FromCoo(std::int64_t rows, std::int64_t cols,
                           std::span<const std::int64_t> row_ids,
                           std::span<const std::int64_t> col_ids,
                           std::span<const float> values);

  /// Adjacency from edges with all-ones values:
  /// A[dst, src] = multiplicity of the edge.
  static CsrMatrix FromEdges(std::int64_t num_nodes,
                             std::span<const std::int64_t> dst_ids,
                             std::span<const std::int64_t> src_ids);

  /// Rescales every row to sum to 1 (rows with zero sum are untouched),
  /// turning a sum aggregation into a mean.
  void NormalizeRows();

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  const std::vector<std::int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::int64_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

  /// Dense product: (rows×cols) · (cols×d) -> (rows×d).
  Tensor MatMulDense(const Tensor& dense) const;

  /// The transposed matrix (cols×rows); used for SpMM backward.
  CsrMatrix Transpose() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_offsets_;  // size rows_+1
  std::vector<std::int64_t> col_indices_;  // size nnz
  std::vector<float> values_;              // size nnz
};

}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_SPARSE_H_
