#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/tensor/kernels/kernels.h"

namespace inferturbo {

// The dense hot paths (matmuls, gather/scatter) validate shapes here
// and run on the fast kernel layer; kernels_test pins the kernels
// bit-identical to the retained scalar references in
// src/tensor/kernels/reference.cc.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  INFERTURBO_CHECK(a.cols() == b.rows())
      << "MatMul shape mismatch: " << a.ToString() << " x " << b.ToString();
  return kernels::MatMul(a, b);
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  INFERTURBO_CHECK(a.cols() == b.cols())
      << "MatMulTransposedB shape mismatch";
  return kernels::MatMulTransposedB(a, b);
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  INFERTURBO_CHECK(a.rows() == b.rows())
      << "MatMulTransposedA shape mismatch";
  return kernels::MatMulTransposedA(a, b);
}

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  INFERTURBO_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << op << " shape mismatch: " << a.ToString() << " vs " << b.ToString();
}

template <typename Fn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, Fn fn,
                         const char* op) {
  CheckSameShape(a, b, op);
  Tensor c(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = fn(pa[i], pb[i]);
  return c;
}

template <typename Fn>
Tensor ElementwiseUnary(const Tensor& a, Fn fn) {
  Tensor c(a.rows(), a.cols());
  const float* pa = a.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = fn(pa[i]);
  return c;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x + y; },
                           "Add");
}

void AddInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b, "AddInPlace");
  float* pa = a->data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a->size(); ++i) pa[i] += pb[i];
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  INFERTURBO_CHECK(bias.rows() == 1 && bias.cols() == a.cols())
      << "AddRowBroadcast wants 1x" << a.cols() << " bias, got "
      << bias.ToString();
  Tensor c(a.rows(), a.cols());
  const float* pb = bias.data();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.RowPtr(r);
    float* pc = c.RowPtr(r);
    for (std::int64_t j = 0; j < a.cols(); ++j) pc[j] = pa[j] + pb[j];
  }
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x - y; },
                           "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, [](float x, float y) { return x * y; },
                           "Mul");
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& scale) {
  INFERTURBO_CHECK(scale.rows() == a.rows() && scale.cols() == 1)
      << "MulColBroadcast wants " << a.rows() << "x1 scale, got "
      << scale.ToString();
  Tensor c(a.rows(), a.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float s = scale.At(r, 0);
    const float* pa = a.RowPtr(r);
    float* pc = c.RowPtr(r);
    for (std::int64_t j = 0; j < a.cols(); ++j) pc[j] = pa[j] * s;
  }
  return c;
}

Tensor Scale(const Tensor& a, float factor) {
  return ElementwiseUnary(a, [factor](float x) { return x * factor; });
}

void ScaleInPlace(Tensor* a, float factor) {
  float* pa = a->data();
  for (std::int64_t i = 0; i < a->size(); ++i) pa[i] *= factor;
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return ElementwiseUnary(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Tensor SoftmaxRows(const Tensor& a) {
  Tensor c(a.rows(), a.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.RowPtr(r);
    float* pc = c.RowPtr(r);
    float max_v = pa[0];
    for (std::int64_t j = 1; j < a.cols(); ++j) max_v = std::max(max_v, pa[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < a.cols(); ++j) {
      pc[j] = std::exp(pa[j] - max_v);
      sum += pc[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < a.cols(); ++j) pc[j] *= inv;
  }
  return c;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  Tensor c(a.rows(), a.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.RowPtr(r);
    float* pc = c.RowPtr(r);
    float max_v = pa[0];
    for (std::int64_t j = 1; j < a.cols(); ++j) max_v = std::max(max_v, pa[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < a.cols(); ++j) {
      sum += std::exp(pa[j] - max_v);
    }
    const float log_sum = std::log(sum) + max_v;
    for (std::int64_t j = 0; j < a.cols(); ++j) pc[j] = pa[j] - log_sum;
  }
  return c;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  INFERTURBO_CHECK(a.rows() == b.rows()) << "ConcatCols row mismatch";
  Tensor c(a.rows(), a.cols() + b.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    std::memcpy(c.RowPtr(r), a.RowPtr(r),
                static_cast<std::size_t>(a.cols()) * sizeof(float));
    std::memcpy(c.RowPtr(r) + a.cols(), b.RowPtr(r),
                static_cast<std::size_t>(b.cols()) * sizeof(float));
  }
  return c;
}

Tensor SliceCols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  INFERTURBO_CHECK(0 <= begin && begin <= end && end <= a.cols())
      << "SliceCols [" << begin << "," << end << ") out of " << a.cols();
  Tensor c(a.rows(), end - begin);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    std::memcpy(c.RowPtr(r), a.RowPtr(r) + begin,
                static_cast<std::size_t>(end - begin) * sizeof(float));
  }
  return c;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  INFERTURBO_CHECK(a.cols() == b.cols()) << "ConcatRows col mismatch";
  Tensor c(a.rows() + b.rows(), a.cols());
  std::memcpy(c.data(), a.data(), a.ByteSize());
  std::memcpy(c.RowPtr(a.rows()), b.data(), b.ByteSize());
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor c(a.cols(), a.rows());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.RowPtr(r);
    for (std::int64_t j = 0; j < a.cols(); ++j) c.At(j, r) = pa[j];
  }
  return c;
}

Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices) {
  return kernels::GatherRows(a, indices);
}

void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(indices.size()) == rows.rows())
      << "ScatterAddRows index/rows mismatch";
  INFERTURBO_CHECK(acc->cols() == rows.cols())
      << "ScatterAddRows col mismatch";
  kernels::ScatterAddRows(acc, indices, rows);
}

double SumAll(const Tensor& a) {
  double sum = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) sum += pa[i];
  return sum;
}

std::vector<std::int64_t> ArgmaxRows(const Tensor& a) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(a.rows()));
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.RowPtr(r);
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < a.cols(); ++j) {
      if (pa[j] > pa[best]) best = j;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

double L2Norm(const Tensor& a) {
  double sum = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(pa[i]) * pa[i];
  }
  return std::sqrt(sum);
}

}  // namespace inferturbo
