#include "src/tensor/optimizer.h"

#include <cmath>

namespace inferturbo {

AdamOptimizer::AdamOptimizer(std::vector<ag::VarPtr> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::VarPtr& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = *params_[i];
    if (p.grad.empty()) continue;
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = p.value.data();
    const float* pg = p.grad.data();
    for (std::int64_t j = 0; j < p.value.size(); ++j) {
      float g = pg[j] + options_.weight_decay * pw[j];
      pm[j] = b1 * pm[j] + (1.0f - b1) * g;
      pv[j] = b2 * pv[j] + (1.0f - b2) * g * g;
      const float m_hat = pm[j] / bias1;
      const float v_hat = pv[j] / bias2;
      pw[j] -= options_.learning_rate * m_hat /
               (std::sqrt(v_hat) + options_.epsilon);
    }
    p.ZeroGrad();
  }
}

void AdamOptimizer::ZeroGrad() {
  for (const ag::VarPtr& p : params_) p->ZeroGrad();
}

}  // namespace inferturbo
