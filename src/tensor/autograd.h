#ifndef INFERTURBO_TENSOR_AUTOGRAD_H_
#define INFERTURBO_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace inferturbo {
namespace ag {

/// A tiny reverse-mode autodiff tape used only by the mini-batch
/// training path. Inference (the paper's contribution) never touches
/// it: the GAS computation flow runs on plain tensors. Keeping training
/// differentiable lets Table II use genuinely trained weights, and the
/// finite-difference property tests in tests/autograd_test.cc pin every
/// operator's gradient.
class Variable;
using VarPtr = std::shared_ptr<Variable>;

/// A node in the dynamically-built computation graph.
class Variable {
 public:
  explicit Variable(Tensor v) : value(std::move(v)) {}

  Tensor value;
  /// Accumulated gradient; empty until first touched during Backward.
  Tensor grad;
  /// Parameters set this; intermediate nodes inherit it from parents.
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Pushes this node's grad into its parents' grads.
  std::function<void(Variable*)> backward_fn;

  /// grad += g, allocating on first use.
  void AccumulateGrad(const Tensor& g);
  /// Drops the gradient (between optimizer steps).
  void ZeroGrad();
};

/// A leaf that gradients flow into (layer weights).
VarPtr Param(Tensor value);
/// A leaf without gradient (features, adjacency-derived tensors).
VarPtr Constant(Tensor value);

VarPtr MatMul(const VarPtr& a, const VarPtr& b);
VarPtr Add(const VarPtr& a, const VarPtr& b);
/// a (n×d) + bias (1×d) broadcast over rows.
VarPtr AddRowBroadcast(const VarPtr& a, const VarPtr& bias);
VarPtr Mul(const VarPtr& a, const VarPtr& b);
/// a (n×d) scaled per-row by scale (n×1).
VarPtr MulColBroadcast(const VarPtr& a, const VarPtr& scale);
VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float slope);
VarPtr ConcatCols(const VarPtr& a, const VarPtr& b);
VarPtr SliceCols(const VarPtr& a, std::int64_t begin, std::int64_t end);
/// Row gather with repetition; the scatter in GNN message passing.
VarPtr GatherRows(const VarPtr& a, std::vector<std::int64_t> indices);
VarPtr SegmentSum(const VarPtr& a, std::vector<std::int64_t> ids,
                  std::int64_t num_segments);
VarPtr SegmentMean(const VarPtr& a, std::vector<std::int64_t> ids,
                   std::int64_t num_segments);
/// Elementwise max per segment; empty segments output the neutral 0
/// (matching the inference-side SegmentMax). Gradients flow to the
/// first row attaining each maximum.
VarPtr SegmentMax(const VarPtr& a, std::vector<std::int64_t> ids,
                  std::int64_t num_segments);
/// Softmax of a column vector within segments (GAT attention weights).
VarPtr SegmentSoftmax(const VarPtr& logits, std::vector<std::int64_t> ids,
                      std::int64_t num_segments);
/// out = A · x with a *constant* sparse adjacency A — the fused
/// scatter_and_gather of the paper's Fig. 3 (one SpMM instead of a
/// materialized per-edge message tensor). Backward: dx += Aᵀ · dout.
VarPtr SparseMatMul(CsrMatrix adjacency, const VarPtr& x);

/// Mean softmax cross-entropy over rows of `logits` against integer
/// `labels`; returns a 1×1 scalar.
VarPtr SoftmaxCrossEntropyLoss(const VarPtr& logits,
                               std::span<const std::int64_t> labels);
/// Mean element-wise sigmoid binary cross-entropy against a 0/1 target
/// tensor of the same shape (multi-label tasks, e.g. PPI); 1×1 scalar.
VarPtr SigmoidBceLoss(const VarPtr& logits, const Tensor& targets);

/// Reverse-mode sweep from `root` (normally the scalar loss): seeds
/// d(root)/d(root) = 1 and accumulates into every reachable Param's
/// grad.
void Backward(const VarPtr& root);

}  // namespace ag
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_AUTOGRAD_H_
