#ifndef INFERTURBO_TENSOR_KERNELS_KERNEL_STATS_H_
#define INFERTURBO_TENSOR_KERNELS_KERNEL_STATS_H_

#include <cstdint>

namespace inferturbo {
namespace kernels {

/// Analytic work estimate for one kernel invocation: useful floating
/// point operations and the minimum bytes the op must move (each
/// operand touched once; read-modify-write destinations counted
/// twice). Shared by the dispatch layer's per-kernel accounting
/// ("kernel.<op>.flops"/".bytes" counters) and the bench harnesses'
/// roofline columns — gflops over a measured time plus bytes_per_flop
/// from the same estimate locate an op against the machine's compute
/// and bandwidth ceilings.
///
/// Estimates are workload properties, not measurements: a cache-
/// resident op moves fewer DRAM bytes, a streaming one more. That is
/// exactly why the ratio is useful — measured LLC misses against an
/// analytic byte floor show how far the implementation is from the
/// minimum traffic.
struct KernelWork {
  std::int64_t flops = 0;
  std::int64_t bytes = 0;

  constexpr double BytesPerFlop() const {
    return flops > 0 ? static_cast<double>(bytes) / static_cast<double>(flops)
                     : 0.0;
  }
};

constexpr std::int64_t kFloatBytes = 4;
constexpr std::int64_t kIndexBytes = 8;

/// C(m×n) = A(m×k) · B(k×n): 2mkn flops; A, B read once, C written.
constexpr KernelWork MatMulWork(std::int64_t m, std::int64_t k,
                                std::int64_t n) {
  return {2 * m * k * n, kFloatBytes * (m * k + k * n + m * n)};
}

/// Fold `rows` value-rows of width `cols` into segment accumulators:
/// one flop per folded element; values read once, ids read once,
/// destination rows read-modify-written.
constexpr KernelWork SegmentFoldWork(std::int64_t rows, std::int64_t cols) {
  return {rows * cols,
          kIndexBytes * rows + 3 * kFloatBytes * rows * cols};
}

/// SegmentFoldWork plus the per-segment 1/count scale pass.
constexpr KernelWork SegmentMeanWork(std::int64_t rows, std::int64_t cols,
                                     std::int64_t segments) {
  return {rows * cols + segments * cols,
          kIndexBytes * rows + 3 * kFloatBytes * rows * cols +
              2 * kFloatBytes * segments * cols};
}

/// Pure data movement: ids read, source rows read, output written.
constexpr KernelWork GatherWork(std::int64_t rows, std::int64_t cols) {
  return {0, kIndexBytes * rows + 2 * kFloatBytes * rows * cols};
}

/// One add per element; ids read, source rows read, destinations
/// read-modify-written.
constexpr KernelWork ScatterAddWork(std::int64_t rows, std::int64_t cols) {
  return {rows * cols,
          kIndexBytes * rows + 3 * kFloatBytes * rows * cols};
}

}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_KERNEL_STATS_H_
