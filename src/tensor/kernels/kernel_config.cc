#include "src/tensor/kernels/kernel_config.h"

#include <algorithm>
#include <atomic>

#include "src/common/parallel_exec.h"
#include "src/common/thread_pool.h"

namespace inferturbo {
namespace kernels {
namespace {

std::atomic<int> g_max_threads{0};
std::atomic<std::int64_t> g_min_parallel_work{1 << 18};
std::atomic<bool> g_use_static_executor{true};
std::atomic<bool> g_fast_math{false};
std::atomic<bool> g_fast_math_bf16{false};

}  // namespace

KernelConfig GetKernelConfig() {
  KernelConfig config;
  config.max_threads = g_max_threads.load(std::memory_order_relaxed);
  config.min_parallel_work =
      g_min_parallel_work.load(std::memory_order_relaxed);
  config.use_static_executor =
      g_use_static_executor.load(std::memory_order_relaxed);
  config.fast_math = g_fast_math.load(std::memory_order_relaxed);
  config.fast_math_bf16 = g_fast_math_bf16.load(std::memory_order_relaxed);
  return config;
}

void SetKernelConfig(const KernelConfig& config) {
  g_max_threads.store(config.max_threads, std::memory_order_relaxed);
  g_min_parallel_work.store(std::max<std::int64_t>(1,
                                                   config.min_parallel_work),
                            std::memory_order_relaxed);
  g_use_static_executor.store(config.use_static_executor,
                              std::memory_order_relaxed);
  g_fast_math.store(config.fast_math, std::memory_order_relaxed);
  g_fast_math_bf16.store(config.fast_math_bf16, std::memory_order_relaxed);
}

int PlanParallelTasks(std::int64_t n, std::int64_t work_per_item) {
  if (n <= 0) return 1;
  // Nested launches run serially: a pool worker waiting on the pool
  // deadlocks, and an executor worker re-entering the barrier would
  // wait on itself.
  if (ThreadPool::InPoolWorker() || StaticExecutor::InWorker()) return 1;
  const KernelConfig config = GetKernelConfig();
  const std::int64_t scheduler_threads =
      config.use_static_executor
          ? static_cast<std::int64_t>(StaticExecutor::Default().num_threads())
          : static_cast<std::int64_t>(DefaultThreadPool().num_threads());
  // max_threads is an upper bound, never a way to plan more concurrency
  // than the scheduler has: tasks beyond the scheduler's threads cannot
  // run concurrently and would be pure partitioning overhead (asking
  // for 8 threads on a 1-core host must degrade to serial, not to 8
  // serialized chunks with worse locality).
  const std::int64_t thread_cap =
      config.max_threads > 0 ? std::min<std::int64_t>(config.max_threads,
                                                      scheduler_threads)
                             : scheduler_threads;
  const std::int64_t total_work = n * std::max<std::int64_t>(1, work_per_item);
  return static_cast<int>(std::max<std::int64_t>(
      1, std::min({thread_cap, n, total_work / config.min_parallel_work})));
}

void ParallelForChunksFixed(std::int64_t n, int tasks,
                            const std::function<void(const RangeChunk&)>& fn) {
  if (n <= 0) return;
  if (tasks <= 1) {
    RangeChunk chunk;
    chunk.begin = 0;
    chunk.end = n;
    chunk.slot = &StaticExecutor::SerialSlot();
    fn(chunk);
    return;
  }
  const std::int64_t tasks64 = tasks;
  if (GetKernelConfig().use_static_executor) {
    StaticExecutor::Default().RunTasks(tasks, [&](WorkerSlot& slot, int t) {
      RangeChunk chunk;
      chunk.begin = RangeBegin(n, t, tasks64);
      chunk.end = RangeBegin(n, t + 1, tasks64);
      chunk.task = t;
      chunk.num_tasks = tasks;
      chunk.slot = &slot;
      fn(chunk);
    });
    return;
  }
  // Legacy scheduling: one pool task per chunk via the pool's range
  // overload (no per-index dispatch). Slots fall back to the
  // per-thread serial slot, so scratch is still never shared.
  DefaultThreadPool().ParallelForRanges(
      static_cast<std::size_t>(tasks), static_cast<std::size_t>(tasks),
      [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          RangeChunk chunk;
          chunk.begin = RangeBegin(n, static_cast<std::int64_t>(t), tasks64);
          chunk.end = RangeBegin(n, static_cast<std::int64_t>(t) + 1, tasks64);
          chunk.task = static_cast<int>(t);
          chunk.num_tasks = tasks;
          chunk.slot = &StaticExecutor::SerialSlot();
          fn(chunk);
        }
      });
}

void ParallelForChunks(std::int64_t n, std::int64_t work_per_item,
                       const std::function<void(const RangeChunk&)>& fn) {
  ParallelForChunksFixed(n, PlanParallelTasks(n, work_per_item), fn);
}

void ParallelForRanges(
    std::int64_t n, std::int64_t work_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ParallelForChunks(n, work_per_item, [&](const RangeChunk& chunk) {
    if (chunk.begin < chunk.end) fn(chunk.begin, chunk.end);
  });
}

}  // namespace kernels
}  // namespace inferturbo
