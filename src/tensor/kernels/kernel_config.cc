#include "src/tensor/kernels/kernel_config.h"

#include <algorithm>
#include <atomic>

#include "src/common/thread_pool.h"

namespace inferturbo {
namespace kernels {
namespace {

std::atomic<int> g_max_threads{0};
std::atomic<std::int64_t> g_min_parallel_work{1 << 18};

}  // namespace

KernelConfig GetKernelConfig() {
  KernelConfig config;
  config.max_threads = g_max_threads.load(std::memory_order_relaxed);
  config.min_parallel_work =
      g_min_parallel_work.load(std::memory_order_relaxed);
  return config;
}

void SetKernelConfig(const KernelConfig& config) {
  g_max_threads.store(config.max_threads, std::memory_order_relaxed);
  g_min_parallel_work.store(std::max<std::int64_t>(1,
                                                   config.min_parallel_work),
                            std::memory_order_relaxed);
}

void ParallelForRanges(
    std::int64_t n, std::int64_t work_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  std::int64_t tasks = 1;
  if (!ThreadPool::InPoolWorker()) {
    const KernelConfig config = GetKernelConfig();
    const std::int64_t thread_cap =
        config.max_threads > 0
            ? config.max_threads
            : static_cast<std::int64_t>(DefaultThreadPool().num_threads());
    const std::int64_t total_work =
        n * std::max<std::int64_t>(1, work_per_item);
    tasks = std::min({thread_cap, n, total_work / config.min_parallel_work});
  }
  if (tasks <= 1) {
    fn(0, n);
    return;
  }
  DefaultThreadPool().ParallelFor(
      static_cast<std::size_t>(tasks), [&](std::size_t t) {
        const std::int64_t begin =
            n * static_cast<std::int64_t>(t) / tasks;
        const std::int64_t end =
            n * (static_cast<std::int64_t>(t) + 1) / tasks;
        if (begin < end) fn(begin, end);
      });
}

}  // namespace kernels
}  // namespace inferturbo
