#ifndef INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_
#define INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_

#include <cstdint>
#include <functional>

namespace inferturbo {
namespace kernels {

/// Process-wide tuning knobs for the fast kernel layer. Thread fan-out
/// never changes results — every output row is owned by exactly one
/// task in a fixed contiguous partition — so these only trade latency
/// against scheduling overhead.
struct KernelConfig {
  /// Upper bound on tasks per kernel launch; 0 means the default
  /// pool's thread count.
  int max_threads = 0;
  /// Minimum work (multiply-adds or copied floats) a task must carry
  /// before a kernel fans out to the pool; below this everything runs
  /// on the calling thread.
  std::int64_t min_parallel_work = 1 << 18;
};

KernelConfig GetKernelConfig();
void SetKernelConfig(const KernelConfig& config);

/// Runs `fn(begin, end)` over a fixed contiguous partition of [0, n).
/// Partition boundaries depend only on (n, task count), never on
/// scheduling, and each index belongs to exactly one call — the
/// determinism contract every parallel kernel builds on. Runs serially
/// when the work is too small or the caller is already a pool worker
/// (nested waits on the pool would deadlock).
void ParallelForRanges(
    std::int64_t n, std::int64_t work_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_
