#ifndef INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_
#define INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_

#include <cstdint>
#include <functional>

#include "src/common/parallel_exec.h"

namespace inferturbo {
namespace kernels {

/// Process-wide tuning knobs for the fast kernel layer. Thread fan-out
/// never changes results — every output row is owned by exactly one
/// task in a fixed contiguous partition — so the scheduling knobs only
/// trade latency against dispatch overhead. The fast-math knobs are the
/// one exception and are opt-in: they select a separate kernel tier
/// that trades bit-identity with the scalar oracle for throughput
/// (documented tolerance, see fast_math_test).
struct KernelConfig {
  /// Upper bound on tasks per kernel launch; 0 means the scheduler's
  /// thread count (the static executor's, or the default pool's when
  /// `use_static_executor` is off).
  int max_threads = 0;
  /// Minimum work (multiply-adds or copied floats) a task must carry
  /// before a kernel fans out; below this everything runs on the
  /// calling thread.
  std::int64_t min_parallel_work = 1 << 18;
  /// Route parallel kernel launches to the StaticExecutor (persistent
  /// pinned workers, static task ownership, spin-then-park barrier).
  /// Off = legacy path: the default ThreadPool's range overload.
  /// Results are identical either way; this is a scheduling choice.
  bool use_static_executor = true;
  /// Opt-in fast-math tier for the matmuls: FMA contraction and
  /// relaxed accumulation order, validated against the scalar oracle
  /// at a documented tolerance instead of bit-identity. Never on by
  /// default; ignored when the CPU lacks FMA.
  bool fast_math = false;
  /// With fast_math: store packed B panels as bf16 (fp32 accumulate).
  /// Halves the panel working set at a wider documented tolerance.
  bool fast_math_bf16 = false;
};

KernelConfig GetKernelConfig();
void SetKernelConfig(const KernelConfig& config);

/// One contiguous chunk of a fixed partition of [0, n): indices
/// [begin, end), owned exclusively by task `task` of `num_tasks`.
/// `slot` is the executing thread's persistent slot (scratch reuse);
/// ownership decisions must use (task, num_tasks) only — the
/// determinism contract.
struct RangeChunk {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  int task = 0;
  int num_tasks = 1;
  WorkerSlot* slot = nullptr;
};

/// The partition boundary formula every parallel kernel shares: chunk
/// t of `tasks` owns [RangeBegin(n, t, tasks), RangeBegin(n, t+1,
/// tasks)). Depends only on (n, t, tasks) — never on scheduling.
inline std::int64_t RangeBegin(std::int64_t n, std::int64_t t,
                               std::int64_t tasks) {
  return n * t / tasks;
}

/// The task that owns index `i` under the RangeBegin partition — the
/// closed-form inverse, used to pre-bucket scattered rows by owner.
inline int RangeOwner(std::int64_t i, std::int64_t n, std::int64_t tasks) {
  return static_cast<int>(((i + 1) * tasks - 1) / n);
}

/// How many tasks a kernel launch over `n` items of `work_per_item`
/// cost would fan out to under the current config (1 when the caller
/// is already a pool/executor worker — nested launches run serially).
/// Kernels that pre-partition auxiliary state (row buckets) call this
/// and then ParallelForChunksFixed with the same count, so the plan
/// and the execution can never disagree.
int PlanParallelTasks(std::int64_t n, std::int64_t work_per_item);

/// Runs `fn(begin, end)` over a fixed contiguous partition of [0, n).
/// Partition boundaries depend only on (n, task count), never on
/// scheduling, and each index belongs to exactly one call — the
/// determinism contract every parallel kernel builds on. Runs serially
/// when the work is too small or the caller is already a pool or
/// executor worker (nested waits would deadlock).
void ParallelForRanges(
    std::int64_t n, std::int64_t work_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// As ParallelForRanges, but hands each task its RangeChunk (task
/// index + per-thread slot) for owner-indexed state and scratch reuse.
void ParallelForChunks(std::int64_t n, std::int64_t work_per_item,
                       const std::function<void(const RangeChunk&)>& fn);

/// ParallelForChunks at an exact task count (from PlanParallelTasks):
/// runs precisely `tasks` chunks even when that exceeds the scheduler's
/// threads, so owner-bucketed data built for `tasks` stays valid.
void ParallelForChunksFixed(std::int64_t n, int tasks,
                            const std::function<void(const RangeChunk&)>& fn);

}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_KERNEL_CONFIG_H_
