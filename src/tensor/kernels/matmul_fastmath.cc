// The opt-in fast-math matmul tier. This TU is the ONLY one compiled
// with -mavx2 -mfma: contracting mul+add to FMA changes rounding, so
// everything here is outside the kernel layer's bit-identity contract
// by design. The trade is explicit and opt-in (KernelConfig.fast_math,
// `--fast_math` at the CLI): FMA tiles with no skip-on-zero prescan,
// plus an optional bf16-storage / fp32-accumulate panel that halves
// the packed working set. fast_math_test validates both against the
// pinned scalar oracle at the tolerances documented in kernels.h.
//
// On toolchains without AVX2+FMA the tier degrades to the portable
// deterministic panel kernel and FastMathKernelsAvailable() reports
// false, so dispatch never selects it.
#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "src/tensor/kernels/matmul_tiles.h"

namespace inferturbo {
namespace kernels {
namespace detail {
namespace {

// fp32 -> bf16 with round-to-nearest-even on the dropped 16 bits.
// (No NaN special case: rounding can only turn a NaN payload into
// another NaN payload or Inf stays Inf; the tier's tolerance tests
// use finite data.)
inline std::uint16_t Bf16FromFloat(float f) {
  std::uint32_t u;
  __builtin_memcpy(&u, &f, sizeof(u));
  const std::uint32_t lsb = (u >> 16) & 1u;
  u += 0x7fffu + lsb;
  return static_cast<std::uint16_t>(u >> 16);
}

inline float FloatFromBf16(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  __builtin_memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

void PackPanelBf16(const float* b, std::int64_t k, std::int64_t n,
                   std::int64_t j0, std::int64_t pw, std::uint16_t* out) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* src = b + kk * n + j0;
    std::uint16_t* dst = out + kk * pw;
    for (std::int64_t j = 0; j < pw; ++j) dst[j] = Bf16FromFloat(src[j]);
  }
}

#if defined(__AVX2__) && defined(__FMA__)

namespace {

// 8 bf16 values -> 8 fp32 lanes: zero-extend to 32 bits, shift the
// mantissa/exponent into place.
inline __m256 LoadBf16x8(const std::uint16_t* p) {
  const __m128i raw =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i wide = _mm256_cvtepu16_epi32(raw);
  return _mm256_castsi256_ps(_mm256_slli_epi32(wide, 16));
}

// kRows×16 FMA accumulator tile over a packed panel: the fast twin of
// the deterministic MatMulTile16 — fused multiply-add, no zero checks
// (a zero A entry contributes +0.0 instead of being skipped, one of
// the documented deviations from the oracle). kBf16 selects the
// bf16-storage panel load.
template <int kRows, bool kBf16, typename PanelT>
inline void FmaTile16(const float* const* ar, const PanelT* bp,
                      std::int64_t pw, float* c, std::int64_t ldc,
                      std::int64_t i, std::int64_t j, std::int64_t k) {
  __m256 acc_lo[kRows], acc_hi[kRows];
  for (int r = 0; r < kRows; ++r) {
    acc_lo[r] = _mm256_setzero_ps();
    acc_hi[r] = _mm256_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const PanelT* bk = bp + kk * pw + j;
    __m256 b_lo, b_hi;
    if constexpr (kBf16) {
      b_lo = LoadBf16x8(reinterpret_cast<const std::uint16_t*>(bk));
      b_hi = LoadBf16x8(reinterpret_cast<const std::uint16_t*>(bk) + 8);
    } else {
      b_lo = _mm256_loadu_ps(reinterpret_cast<const float*>(bk));
      b_hi = _mm256_loadu_ps(reinterpret_cast<const float*>(bk) + 8);
    }
    for (int r = 0; r < kRows; ++r) {
      const __m256 v = _mm256_broadcast_ss(ar[r] + kk);
      acc_lo[r] = _mm256_fmadd_ps(v, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_ps(v, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < kRows; ++r) {
    float* cr = c + (i + r) * ldc + j;
    _mm256_storeu_ps(cr, acc_lo[r]);
    _mm256_storeu_ps(cr + 8, acc_hi[r]);
  }
}

// Scalar patch for panel-column tails (< 16 wide) and leftover rows.
// Plain a*b+c — the compiler may contract under -mfma, which is fine
// inside this tier's tolerance.
template <bool kBf16, typename PanelT>
inline void FmaScalarPatch(const float* a, const PanelT* bp, float* c,
                           std::int64_t i0, std::int64_t i1, std::int64_t j0,
                           std::int64_t k, std::int64_t pw, std::int64_t c0,
                           std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* __restrict__ ci = c + i * ldc + c0;
    const float* ai = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      const PanelT* bk = bp + kk * pw;
      for (std::int64_t j = j0; j < pw; ++j) {
        float bv;
        if constexpr (kBf16) {
          bv = FloatFromBf16(static_cast<std::uint16_t>(bk[j]));
        } else {
          bv = static_cast<float>(bk[j]);
        }
        ci[j] += v * bv;
      }
    }
  }
}

template <bool kBf16, typename PanelT>
void MatMulPanelFmaImpl(const float* a, const PanelT* bp, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t pw,
                        std::int64_t c0, std::int64_t ldc) {
  constexpr std::int64_t kRowTile = 6;
  constexpr std::int64_t kColTile = 16;
  float* const cb = c + c0;
  std::int64_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    const float* ar[kRowTile];
    for (std::int64_t r = 0; r < kRowTile; ++r) ar[r] = a + (i + r) * k;
    std::int64_t j = 0;
    for (; j + kColTile <= pw; j += kColTile) {
      FmaTile16<kRowTile, kBf16>(ar, bp, pw, cb, ldc, i, j, k);
    }
    if (j < pw) {
      FmaScalarPatch<kBf16>(a, bp, c, i, i + kRowTile, j, k, pw, c0, ldc);
    }
  }
  for (; i < m; ++i) {
    const float* ar[1] = {a + i * k};
    std::int64_t j = 0;
    for (; j + kColTile <= pw; j += kColTile) {
      FmaTile16<1, kBf16>(ar, bp, pw, cb, ldc, i, j, k);
    }
    if (j < pw) FmaScalarPatch<kBf16>(a, bp, c, i, i + 1, j, k, pw, c0, ldc);
  }
}

}  // namespace

void MatMulPanelFma(const float* a, const float* bp, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t pw, std::int64_t c0,
                    std::int64_t ldc) {
  MatMulPanelFmaImpl<false>(a, bp, c, m, k, pw, c0, ldc);
}

void MatMulPanelBf16Fma(const float* a, const std::uint16_t* bp, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t pw,
                        std::int64_t c0, std::int64_t ldc) {
  MatMulPanelFmaImpl<true>(a, bp, c, m, k, pw, c0, ldc);
}

bool FastMathKernelsAvailable() {
#if defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#else  // !(defined(__AVX2__) && defined(__FMA__))

void MatMulPanelFma(const float* a, const float* bp, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t pw, std::int64_t c0,
                    std::int64_t ldc) {
  MatMulPanelPortable(a, bp, c, m, k, pw, c0, ldc);
}

void MatMulPanelBf16Fma(const float* a, const std::uint16_t* bp, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t pw,
                        std::int64_t c0, std::int64_t ldc) {
  // Functional (never dispatched: availability reports false): expand
  // each bf16 entry and accumulate in fp32.
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc + c0;
    const float* ai = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      const std::uint16_t* bk = bp + kk * pw;
      for (std::int64_t j = 0; j < pw; ++j) {
        ci[j] += v * FloatFromBf16(bk[j]);
      }
    }
  }
}

bool FastMathKernelsAvailable() { return false; }

#endif  // defined(__AVX2__) && defined(__FMA__)

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo
