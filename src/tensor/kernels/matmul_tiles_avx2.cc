// AVX2 instantiation of the tiled matmul bodies. This TU is compiled
// with -mavx2 (and deliberately WITHOUT -mfma: contracting mul+add to
// FMA changes rounding and would break the bit-identity contract with
// the scalar reference) when the toolchain targets x86-64; elsewhere
// it degrades to forwarding wrappers. Callers must gate on
// Avx2KernelsAvailable(), which also checks the running CPU.
//
// MatMulRows is hand-written intrinsics rather than the generic tile
// body from matmul_tiles.inc: explicit vmulps/vaddps pin both the
// instruction mix and the register allocation, where autovectorizing
// the float-array tiles swings several-fold between -O2 and -O3.
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/tensor/kernels/matmul_tiles.h"

namespace inferturbo {
namespace kernels {
namespace detail {

#if defined(__AVX2__)

#define INFERTURBO_TILE_FN(name) name##Avx2
#define INFERTURBO_TILE_RESTRICT __restrict__
#define INFERTURBO_TILE_SKIP_MATMUL_ROWS
#define INFERTURBO_TILE_SKIP_MATMUL_PANEL
#include "src/tensor/kernels/matmul_tiles.inc"
#undef INFERTURBO_TILE_SKIP_MATMUL_PANEL
#undef INFERTURBO_TILE_SKIP_MATMUL_ROWS
#undef INFERTURBO_TILE_FN
#undef INFERTURBO_TILE_RESTRICT

namespace {

// One kRows×16 accumulator tile of C = A·B, columns [j, j+16).
//
// Math and order are exactly the scalar reference's: per output
// element the products fold in ascending k, a zero A entry contributes
// nothing (skip, not 0*b — bitwise different for -0.0 accumulators and
// NaN/Inf operands), and mul/add stay separate instructions (this TU
// cannot emit FMA). The vector lanes are independent j columns, so
// lane math is the scalar math verbatim.
//
// kRows = 6 keeps 12 accumulator registers live across the whole
// k loop with two B registers and one broadcast scratch — 15 of 16
// YMMs, spill-free — and amortizes loop overhead over 24 vector ops
// per k step. `kHasZeros` selects whether the skip-on-zero lane is
// compiled in: the per-k scalar checks cost ~half the throughput, so
// the caller pre-scans the A panel once and runs the check-free
// instantiation when the panel holds no zeros (skipping zero entries
// and not checking are then the same function).
// `b` has row stride ldb (the shared B, or a packed panel), `c` row
// stride ldc; both are n for the full-matrix row kernel.
template <int kRows, bool kHasZeros>
inline void MatMulTile16(const float* const* ar, const float* b,
                         std::int64_t ldb, float* c, std::int64_t ldc,
                         std::int64_t i, std::int64_t j, std::int64_t k) {
  __m256 acc_lo[kRows], acc_hi[kRows];
  for (int r = 0; r < kRows; ++r) {
    acc_lo[r] = _mm256_setzero_ps();
    acc_hi[r] = _mm256_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bk = b + kk * ldb + j;
    const __m256 b_lo = _mm256_loadu_ps(bk);
    const __m256 b_hi = _mm256_loadu_ps(bk + 8);
    if (kHasZeros) {
      for (int r = 0; r < kRows; ++r) {
        if (ar[r][kk] == 0.0f) continue;
        const __m256 v = _mm256_broadcast_ss(ar[r] + kk);
        acc_lo[r] = _mm256_add_ps(acc_lo[r], _mm256_mul_ps(v, b_lo));
        acc_hi[r] = _mm256_add_ps(acc_hi[r], _mm256_mul_ps(v, b_hi));
      }
      continue;
    }
    for (int r = 0; r < kRows; ++r) {
      const __m256 v = _mm256_broadcast_ss(ar[r] + kk);
      acc_lo[r] = _mm256_add_ps(acc_lo[r], _mm256_mul_ps(v, b_lo));
      acc_hi[r] = _mm256_add_ps(acc_hi[r], _mm256_mul_ps(v, b_hi));
    }
  }
  for (int r = 0; r < kRows; ++r) {
    float* cr = c + (i + r) * ldc + j;
    _mm256_storeu_ps(cr, acc_lo[r]);
    _mm256_storeu_ps(cr + 8, acc_hi[r]);
  }
}

// True when any of the `len` floats at `row` is ±0.0f.
inline bool RowHasZero(const float* row, std::int64_t len) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t kk = 0;
  for (; kk + 8 <= len; kk += 8) {
    const __m256 v = _mm256_loadu_ps(row + kk);
    if (_mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_EQ_OQ)) != 0) {
      return true;
    }
  }
  for (; kk < len; ++kk) {
    if (row[kk] == 0.0f) return true;
  }
  return false;
}

// Scalar reference body over rows [i0, i1) × columns [j0, n): used for
// the sub-16-column tail and leftover rows. C is zero-initialized and
// accumulated in place, matching the reference's i-k-j loop.
inline void MatMulScalarPatch(const float* a, const float* b, float* c,
                              std::int64_t i0, std::int64_t i1,
                              std::int64_t j0, std::int64_t k,
                              std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* __restrict__ ci = c + i * n;
    const float* ai = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      if (v == 0.0f) continue;
      const float* __restrict__ bk = b + kk * n;
      for (std::int64_t j = j0; j < n; ++j) ci[j] += v * bk[j];
    }
  }
}

}  // namespace

void MatMulRowsAvx2(const float* a, const float* b, float* c, std::int64_t r0,
                    std::int64_t r1, std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kRowTile = 6;
  constexpr std::int64_t kColTile = 16;
  std::int64_t i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    const float* ar[kRowTile];
    bool has_zeros = false;
    for (std::int64_t r = 0; r < kRowTile; ++r) {
      ar[r] = a + (i + r) * k;
      has_zeros = has_zeros || RowHasZero(ar[r], k);
    }
    std::int64_t j = 0;
    if (has_zeros) {
      for (; j + kColTile <= n; j += kColTile) {
        MatMulTile16<kRowTile, /*kHasZeros=*/true>(ar, b, n, c, n, i, j, k);
      }
    } else {
      for (; j + kColTile <= n; j += kColTile) {
        MatMulTile16<kRowTile, /*kHasZeros=*/false>(ar, b, n, c, n, i, j, k);
      }
    }
    if (j < n) MatMulScalarPatch(a, b, c, i, i + kRowTile, j, k, n);
  }
  if (i < r1) MatMulScalarPatch(a, b, c, i, r1, 0, k, n);
}

namespace {

// Scalar reference body over rows [i0, i1) × panel columns [j0, pw),
// reading the packed panel (stride pw) and writing C (stride ldc) at
// column offset c0. Same order and skip semantics as the reference.
inline void MatMulPanelScalarPatch(const float* a, const float* bp, float* c,
                                   std::int64_t i0, std::int64_t i1,
                                   std::int64_t j0, std::int64_t k,
                                   std::int64_t pw, std::int64_t c0,
                                   std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* __restrict__ ci = c + i * ldc + c0;
    const float* ai = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      if (v == 0.0f) continue;
      const float* __restrict__ bk = bp + kk * pw;
      for (std::int64_t j = j0; j < pw; ++j) ci[j] += v * bk[j];
    }
  }
}

}  // namespace

void MatMulPanelAvx2(const float* a, const float* bp, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t pw, std::int64_t c0,
                     std::int64_t ldc) {
  constexpr std::int64_t kRowTile = 6;
  constexpr std::int64_t kColTile = 16;
  float* const cb = c + c0;
  std::int64_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    const float* ar[kRowTile];
    bool has_zeros = false;
    for (std::int64_t r = 0; r < kRowTile; ++r) {
      ar[r] = a + (i + r) * k;
      has_zeros = has_zeros || RowHasZero(ar[r], k);
    }
    std::int64_t j = 0;
    if (has_zeros) {
      for (; j + kColTile <= pw; j += kColTile) {
        MatMulTile16<kRowTile, /*kHasZeros=*/true>(ar, bp, pw, cb, ldc, i, j,
                                                   k);
      }
    } else {
      for (; j + kColTile <= pw; j += kColTile) {
        MatMulTile16<kRowTile, /*kHasZeros=*/false>(ar, bp, pw, cb, ldc, i, j,
                                                    k);
      }
    }
    if (j < pw) MatMulPanelScalarPatch(a, bp, c, i, i + kRowTile, j, k, pw,
                                       c0, ldc);
  }
  if (i < m) MatMulPanelScalarPatch(a, bp, c, i, m, 0, k, pw, c0, ldc);
}

bool Avx2KernelsAvailable() {
#if defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

#else  // !defined(__AVX2__)

void MatMulRowsAvx2(const float* a, const float* b, float* c, std::int64_t r0,
                    std::int64_t r1, std::int64_t k, std::int64_t n) {
  MatMulRowsPortable(a, b, c, r0, r1, k, n);
}

void MatMulTBRowsAvx2(const float* a, const float* b, float* c,
                      std::int64_t r0, std::int64_t r1, std::int64_t k,
                      std::int64_t n) {
  MatMulTBRowsPortable(a, b, c, r0, r1, k, n);
}

void MatMulPanelAvx2(const float* a, const float* bp, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t pw, std::int64_t c0,
                     std::int64_t ldc) {
  MatMulPanelPortable(a, bp, c, m, k, pw, c0, ldc);
}

bool Avx2KernelsAvailable() { return false; }

#endif  // defined(__AVX2__)

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo
