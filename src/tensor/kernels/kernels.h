#ifndef INFERTURBO_TENSOR_KERNELS_KERNELS_H_
#define INFERTURBO_TENSOR_KERNELS_KERNELS_H_

#include <cstdint>
#include <span>

#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/tensor.h"

namespace inferturbo {
namespace kernels {

/// The fast compute-kernel layer: register-tiled, ISA-dispatched
/// matmuls and ThreadPool-parallel segment/row ops. Every kernel is
/// BIT-IDENTICAL to its scalar twin in kernels::reference at any
/// thread count — parallel partitions assign each output row to
/// exactly one task in a fixed order, accumulation order per output
/// element matches the reference (ascending k, skip-on-zero over A),
/// and no FMA contraction is allowed in any instantiation. The
/// crash-sweep and cross-backend equivalence suites rely on this
/// contract; kernels_test enforces it.
///
/// Shape agreement is the caller's contract (src/tensor/ops.h checks
/// it); segment ids must already be validated against num_segments.

Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments);
/// Per-segment elementwise max/min folded in input order with the
/// scalar `(acc < v) ? v : acc` select (NaN rows never replace the
/// accumulator; +-0.0 keeps the accumulator). Segments that receive no
/// rows report zero, not +-inf — the neutral "no messages" value the
/// gather stage hands isolated nodes.
Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// Bounds-checks indices (aborts like the reference on a bad index).
Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices);
void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows);

/// True when the AVX2 instantiation is compiled in and the CPU
/// supports it (informational — results are identical either way).
bool UsingAvx2();

}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_KERNELS_H_
