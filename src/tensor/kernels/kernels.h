#ifndef INFERTURBO_TENSOR_KERNELS_KERNELS_H_
#define INFERTURBO_TENSOR_KERNELS_KERNELS_H_

#include <cstdint>
#include <span>

#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/tensor.h"

namespace inferturbo {
namespace kernels {

/// The fast compute-kernel layer: register-tiled, ISA-dispatched
/// matmuls and range-partitioned parallel segment/row ops (scheduled
/// on the StaticExecutor, or the legacy ThreadPool path — a config
/// choice that never changes results). In the default deterministic
/// tier every kernel is BIT-IDENTICAL to its scalar twin in
/// kernels::reference at any thread count — parallel partitions assign
/// each output element to exactly one task in a fixed order,
/// accumulation order per output element matches the reference
/// (ascending k, skip-on-zero over A), and no FMA contraction is
/// allowed in any instantiation. The crash-sweep and cross-backend
/// equivalence suites rely on this contract; kernels_test enforces it.
///
/// The one exception is the OPT-IN fast-math tier
/// (KernelConfig.fast_math): MatMul and MatMulTransposedA then route
/// to FMA panel kernels (optionally bf16-storage) that trade
/// bit-identity for throughput. Fast-math results are validated
/// against the scalar oracle within the tolerances below
/// (fast_math_test); deterministic mode is unaffected.
///
/// Shape agreement is the caller's contract (src/tensor/ops.h checks
/// it); segment ids must already be validated against num_segments.

/// Documented fast-math validation bounds, as a multiple of the
/// |A|·|B| absolute-value product per output element (the standard
/// rounding-error envelope — see fast_math_test): fp32-FMA results
/// must satisfy |fast - oracle| <= tol * (|A|·|B|)[i,j] + tiny.
constexpr float kFastMathRelTol = 1e-4f;
/// bf16 stores B with an 8-bit mantissa (unit roundoff 2^-9), so the
/// envelope is dominated by the storage rounding, not accumulation.
constexpr float kFastMathBf16RelTol = 8e-3f;

Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments);
/// Per-segment elementwise max/min folded in input order with the
/// scalar `(acc < v) ? v : acc` select (NaN rows never replace the
/// accumulator; +-0.0 keeps the accumulator). Segments that receive no
/// rows report zero, not +-inf — the neutral "no messages" value the
/// gather stage hands isolated nodes.
Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// Bounds-checks indices (aborts like the reference on a bad index).
Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices);
void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows);

/// True when the AVX2 instantiation is compiled in and the CPU
/// supports it (informational — results are identical either way).
bool UsingAvx2();

/// True when the fast-math tier would actually engage: the config
/// opts in AND the FMA instantiation is compiled in and supported.
bool UsingFastMath();

}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_KERNELS_H_
