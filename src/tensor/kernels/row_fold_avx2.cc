// AVX2 instantiation of the row-fold primitives. Compiled with -mavx2
// (and, like every fast TU, without -mfma) when the toolchain targets
// x86-64; elsewhere it degrades to forwarding wrappers. Callers must
// gate on Avx2KernelsAvailable().
//
// The max/min bodies use cmp+blend rather than vmaxps/vminps: the
// hardware max/min pick the *second* operand for NaN and treat -0.0 as
// equal to +0.0, which would diverge bitwise from the scalar
// `(acc < row) ? row : acc` select the bit-identity contract pins.
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/tensor/kernels/matmul_tiles.h"
#include "src/tensor/kernels/row_fold.h"

namespace inferturbo {
namespace kernels {
namespace detail {

#if defined(__AVX2__)

namespace {

// One fold body each, expressed as a static Apply so the batch loops
// below instantiate with the fold inlined — no per-row indirect call in
// the payload stream.
struct AddFold {
  static inline void Apply(float* __restrict__ acc,
                           const float* __restrict__ row, std::int64_t n) {
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 a = _mm256_loadu_ps(acc + j);
      const __m256 r = _mm256_loadu_ps(row + j);
      _mm256_storeu_ps(acc + j, _mm256_add_ps(a, r));
    }
    for (; j < n; ++j) acc[j] += row[j];
  }
};

struct MaxFold {
  static inline void Apply(float* __restrict__ acc,
                           const float* __restrict__ row, std::int64_t n) {
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 a = _mm256_loadu_ps(acc + j);
      const __m256 r = _mm256_loadu_ps(row + j);
      // Lane select of (acc < row) ? row : acc. OQ: a NaN comparison is
      // false, so NaN rows keep the accumulator, like the scalar fold.
      const __m256 take_row = _mm256_cmp_ps(a, r, _CMP_LT_OQ);
      _mm256_storeu_ps(acc + j, _mm256_blendv_ps(a, r, take_row));
    }
    for (; j < n; ++j) {
      if (acc[j] < row[j]) acc[j] = row[j];
    }
  }
};

struct MinFold {
  static inline void Apply(float* __restrict__ acc,
                           const float* __restrict__ row, std::int64_t n) {
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 a = _mm256_loadu_ps(acc + j);
      const __m256 r = _mm256_loadu_ps(row + j);
      const __m256 take_row = _mm256_cmp_ps(r, a, _CMP_LT_OQ);
      _mm256_storeu_ps(acc + j, _mm256_blendv_ps(a, r, take_row));
    }
    for (; j < n; ++j) {
      if (row[j] < acc[j]) acc[j] = row[j];
    }
  }
};

template <typename Fold>
void SlotFoldImpl(float* rows, std::int64_t width, const std::int32_t* slots,
                  std::int64_t* counts, const float* payload,
                  std::int64_t stride, std::int64_t n, bool partial) {
  if (partial) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = payload + i * stride;
      const std::int64_t s = slots[i];
      counts[s] += static_cast<std::int64_t>(row[width]);
      Fold::Apply(rows + s * width, row, width);
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = payload + i * stride;
      const std::int64_t s = slots[i];
      ++counts[s];
      Fold::Apply(rows + s * width, row, width);
    }
  }
}

template <typename Fold>
void SegFoldImpl(float* out, std::int64_t width, const std::int32_t* segs,
                 const float* payload, std::int64_t stride, std::int64_t n,
                 std::int64_t s0, std::int64_t s1) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = segs[i];
    if (s >= s0 && s < s1) {
      Fold::Apply(out + s * width, payload + i * stride, width);
    }
  }
}

}  // namespace

void RowAddAvx2(float* __restrict__ acc, const float* __restrict__ row,
                std::int64_t n) {
  AddFold::Apply(acc, row, n);
}

void RowMaxAvx2(float* __restrict__ acc, const float* __restrict__ row,
                std::int64_t n) {
  MaxFold::Apply(acc, row, n);
}

void RowMinAvx2(float* __restrict__ acc, const float* __restrict__ row,
                std::int64_t n) {
  MinFold::Apply(acc, row, n);
}

void SlotFoldAddAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldImpl<AddFold>(rows, width, slots, counts, payload, stride, n,
                        partial);
}
void SlotFoldMaxAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldImpl<MaxFold>(rows, width, slots, counts, payload, stride, n,
                        partial);
}
void SlotFoldMinAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldImpl<MinFold>(rows, width, slots, counts, payload, stride, n,
                        partial);
}

void SegFoldAddAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldImpl<AddFold>(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMaxAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldImpl<MaxFold>(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMinAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldImpl<MinFold>(out, width, segs, payload, stride, n, s0, s1);
}

#else  // !defined(__AVX2__)

void RowAddAvx2(float* acc, const float* row, std::int64_t n) {
  RowAddPortable(acc, row, n);
}
void RowMaxAvx2(float* acc, const float* row, std::int64_t n) {
  RowMaxPortable(acc, row, n);
}
void RowMinAvx2(float* acc, const float* row, std::int64_t n) {
  RowMinPortable(acc, row, n);
}

void SlotFoldAddAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldAddPortable(rows, width, slots, counts, payload, stride, n, partial);
}
void SlotFoldMaxAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldMaxPortable(rows, width, slots, counts, payload, stride, n, partial);
}
void SlotFoldMinAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial) {
  SlotFoldMinPortable(rows, width, slots, counts, payload, stride, n, partial);
}

void SegFoldAddAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldAddPortable(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMaxAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldMaxPortable(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMinAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1) {
  SegFoldMinPortable(out, width, segs, payload, stride, n, s0, s1);
}

#endif  // defined(__AVX2__)

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo
