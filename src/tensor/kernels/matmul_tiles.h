#ifndef INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_
#define INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_

#include <cstdint>

namespace inferturbo {
namespace kernels {
namespace detail {

/// Register-tiled matmul row kernels. The same source
/// (matmul_tiles.inc) is compiled twice: a portable baseline TU and an
/// AVX2 TU (vector width only — FMA stays off in both so every product
/// and sum rounds exactly like the scalar reference, keeping results
/// bit-identical across ISAs). Callers pick an implementation once via
/// Avx2KernelsAvailable().
///
/// All pointers are dense row-major and must not alias. Each call owns
/// output rows [r0, r1) exclusively, so range-partitioned calls can run
/// concurrently.

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(k×n).
void MatMulRowsPortable(const float* a, const float* b, float* c,
                        std::int64_t r0, std::int64_t r1, std::int64_t k,
                        std::int64_t n);
void MatMulRowsAvx2(const float* a, const float* b, float* c, std::int64_t r0,
                    std::int64_t r1, std::int64_t k, std::int64_t n);

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(n×k)^T.
void MatMulTBRowsPortable(const float* a, const float* b, float* c,
                          std::int64_t r0, std::int64_t r1, std::int64_t k,
                          std::int64_t n);
void MatMulTBRowsAvx2(const float* a, const float* b, float* c,
                      std::int64_t r0, std::int64_t r1, std::int64_t k,
                      std::int64_t n);

/// True when the AVX2 TU was built with AVX2 *and* the CPU supports it.
bool Avx2KernelsAvailable();

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_
