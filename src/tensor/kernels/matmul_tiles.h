#ifndef INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_
#define INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_

#include <cstdint>

namespace inferturbo {
namespace kernels {
namespace detail {

/// Register-tiled matmul row kernels. The same source
/// (matmul_tiles.inc) is compiled twice: a portable baseline TU and an
/// AVX2 TU (vector width only — FMA stays off in both so every product
/// and sum rounds exactly like the scalar reference, keeping results
/// bit-identical across ISAs). Callers pick an implementation once via
/// Avx2KernelsAvailable().
///
/// All pointers are dense row-major and must not alias. Each call owns
/// output rows [r0, r1) exclusively, so range-partitioned calls can run
/// concurrently.

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(k×n).
void MatMulRowsPortable(const float* a, const float* b, float* c,
                        std::int64_t r0, std::int64_t r1, std::int64_t k,
                        std::int64_t n);
void MatMulRowsAvx2(const float* a, const float* b, float* c, std::int64_t r0,
                    std::int64_t r1, std::int64_t k, std::int64_t n);

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(n×k)^T.
void MatMulTBRowsPortable(const float* a, const float* b, float* c,
                          std::int64_t r0, std::int64_t r1, std::int64_t k,
                          std::int64_t n);
void MatMulTBRowsAvx2(const float* a, const float* b, float* c,
                      std::int64_t r0, std::int64_t r1, std::int64_t k,
                      std::int64_t n);

/// Packed-panel kernels: columns [c0, c0 + pw) of C(m×ldc) from all of
/// A(m×k) and a pre-packed B panel `bp` (k×pw row-major — the pw
/// columns made dense so a parallel task's B working set is contiguous
/// per-thread scratch instead of strided slices of the shared B).
/// Same math and order as the row kernels: each output element is one
/// ascending-k chain with skip-on-zero over A, mul and add separate —
/// bit-identical to the scalar reference. Panel calls own their column
/// range exclusively, so N-partitioned calls run concurrently.
void MatMulPanelPortable(const float* a, const float* bp, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t pw,
                         std::int64_t c0, std::int64_t ldc);
void MatMulPanelAvx2(const float* a, const float* bp, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t pw,
                     std::int64_t c0, std::int64_t ldc);

/// True when the AVX2 TU was built with AVX2 *and* the CPU supports it.
bool Avx2KernelsAvailable();

/// The opt-in fast-math tier (matmul_fastmath.cc, compiled with
/// -mavx2 -mfma): FMA contraction, no skip-on-zero, same panel shape.
/// NOT bit-identical to the reference — validated against it at the
/// documented tolerances (see kFastMathRelTol / kFastMathBf16RelTol in
/// kernels.h). Dispatched only when KernelConfig.fast_math is set and
/// FastMathKernelsAvailable() is true.
void MatMulPanelFma(const float* a, const float* bp, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t pw, std::int64_t c0,
                    std::int64_t ldc);

/// bf16-storage variant: `bp` holds the panel as bf16 (PackPanelBf16),
/// expanded to fp32 in registers and accumulated in fp32.
void MatMulPanelBf16Fma(const float* a, const std::uint16_t* bp, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t pw,
                        std::int64_t c0, std::int64_t ldc);

/// Packs columns [j0, j0 + pw) of B(k×n) into a dense k×pw bf16 panel
/// (round-to-nearest-even truncation of the fp32 bits).
void PackPanelBf16(const float* b, std::int64_t k, std::int64_t n,
                   std::int64_t j0, std::int64_t pw, std::uint16_t* out);

/// True when the fast-math TU was built with AVX2+FMA and the CPU has
/// both.
bool FastMathKernelsAvailable();

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_MATMUL_TILES_H_
