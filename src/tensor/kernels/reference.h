#ifndef INFERTURBO_TENSOR_KERNELS_REFERENCE_H_
#define INFERTURBO_TENSOR_KERNELS_REFERENCE_H_

#include <cstdint>
#include <span>

#include "src/tensor/tensor.h"

namespace inferturbo {
namespace kernels {
namespace reference {

/// The retained scalar kernels — byte-for-byte the pre-kernel-layer
/// implementations. They are the bit-identity oracle for the fast
/// paths (kernels_test cross-checks every fast kernel against these at
/// 1 and N threads) and the baseline `bench_kernels` measures speedups
/// against. Single-threaded, no tiling, no SIMD; the TU is compiled
/// with autovectorization disabled so the baseline means the same
/// thing at every optimization level. Do not "optimize" them — their
/// value is staying exactly what the fast kernels must reproduce.

/// C = A(m×k) · B(k×n), i-k-j order with skip-on-zero over A entries.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A(m×k) · B(n×k)^T, one sequential dot chain per output element.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);
/// C = A(k×m)^T · B(k×n), k-i-j order with skip-on-zero over A entries.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// out[s] = Σ_{i: ids[i]==s} values[i], accumulated in input order.
Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
/// SegmentSum divided per segment by its row count (empty stay zero).
Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments);
/// Per-segment elementwise extremum, `(acc < v) ? v : acc` select in
/// input order (resp. `(v < acc)` for min); empty segments report zero.
Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);
Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments);

/// out[i] = a[indices[i]].
Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices);
/// acc[indices[i]] += rows[i], in input order.
void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows);

}  // namespace reference
}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_REFERENCE_H_
