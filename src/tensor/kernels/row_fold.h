#ifndef INFERTURBO_TENSOR_KERNELS_ROW_FOLD_H_
#define INFERTURBO_TENSOR_KERNELS_ROW_FOLD_H_

#include <cstdint>

namespace inferturbo {
namespace kernels {
namespace detail {

/// Elementwise row-fold primitives — the inner loop of every segment
/// reduction and pooled combine in the superstep data plane. The same
/// three operations are compiled twice: a portable TU and an AVX2 TU
/// (vector width only; the scalar semantics below are reproduced lane
/// for lane so results stay bit-identical across ISAs).
///
/// Semantics per element j (exactly the retained scalar folds):
///   add: acc[j] += row[j]
///   max: acc[j] = (acc[j] < row[j]) ? row[j] : acc[j]
///   min: acc[j] = (row[j] < acc[j]) ? row[j] : acc[j]
/// The max/min selects match std::max/std::min: a NaN row entry never
/// replaces the accumulator, and +-0.0 keeps the accumulator's sign.
/// (A plain vmaxps/vminps would violate both — the AVX2 TU uses
/// cmp+blend instead.)
///
/// `acc` and `row` must not alias.

using RowFoldFn = void (*)(float* acc, const float* row, std::int64_t n);

void RowAddPortable(float* acc, const float* row, std::int64_t n);
void RowMaxPortable(float* acc, const float* row, std::int64_t n);
void RowMinPortable(float* acc, const float* row, std::int64_t n);

void RowAddAvx2(float* acc, const float* row, std::int64_t n);
void RowMaxAvx2(float* acc, const float* row, std::int64_t n);
void RowMinAvx2(float* acc, const float* row, std::int64_t n);

/// Dispatched once per process (same availability check as the matmul
/// tiles: compiled-in AND supported by the running CPU).
RowFoldFn RowAdd();
RowFoldFn RowMax();
RowFoldFn RowMin();

/// The fold operation behind an AggKind (mean folds as add; the divide
/// is a finalize step).
enum class FoldOp { kAdd, kMax, kMin };

/// Batch-granularity folds. The payload stream of a superstep inbox is
/// the dominant memory traffic of gather/combine; calling a RowFoldFn
/// per message puts an indirect call in that stream's inner loop. These
/// variants take the whole batch so the row fold inlines and the loop
/// runs call-free. Both apply rows strictly in index order — the same
/// order as the per-row fold, so results stay bit-identical.

/// For each row i in [0, n):
///   counts[slots[i]] += partial ? (int64)payload[i*stride + width] : 1
///   fold(rows + slots[i]*width, payload + i*stride, width)
/// Slots must be pre-resolved and rows pre-initialized (the
/// PooledAccumulator AddBatch shape).
using SlotFoldFn = void (*)(float* rows, std::int64_t width,
                            const std::int32_t* slots, std::int64_t* counts,
                            const float* payload, std::int64_t stride,
                            std::int64_t n, bool partial);
SlotFoldFn SlotFold(FoldOp op);

/// For each row i in [0, n) whose segment s = segs[i] lies in [s0, s1):
///   fold(out + s*width, payload + i*stride, width)
/// Rows outside the range only cost the segment load — the filtered
/// scan ParallelForRanges tasks use to keep destination ownership.
using SegFoldFn = void (*)(float* out, std::int64_t width,
                           const std::int32_t* segs, const float* payload,
                           std::int64_t stride, std::int64_t n,
                           std::int64_t s0, std::int64_t s1);
SegFoldFn SegFold(FoldOp op);

void SlotFoldAddPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial);
void SlotFoldMaxPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial);
void SlotFoldMinPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial);
void SlotFoldAddAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial);
void SlotFoldMaxAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial);
void SlotFoldMinAvx2(float* rows, std::int64_t width,
                     const std::int32_t* slots, std::int64_t* counts,
                     const float* payload, std::int64_t stride, std::int64_t n,
                     bool partial);

void SegFoldAddPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1);
void SegFoldMaxPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1);
void SegFoldMinPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1);
void SegFoldAddAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1);
void SegFoldMaxAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1);
void SegFoldMinAvx2(float* out, std::int64_t width, const std::int32_t* segs,
                    const float* payload, std::int64_t stride, std::int64_t n,
                    std::int64_t s0, std::int64_t s1);

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_KERNELS_ROW_FOLD_H_
