#include "src/tensor/kernels/kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/logging.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/perf_counters.h"
#include "src/tensor/kernels/kernel_stats.h"
#include "src/tensor/kernels/matmul_tiles.h"
#include "src/tensor/kernels/reference.h"
#include "src/tensor/kernels/row_fold.h"

namespace inferturbo {
namespace kernels {
namespace {

/// Per-op FLOP/byte/call accounting into the global registry
/// ("kernel.<op>.calls/.flops/.bytes"). Disabled cost is one relaxed
/// load + branch; the map lookup only runs when metrics are on, and
/// kernel calls are coarse (one per layer per superstep) relative to
/// the mutex cost. Composed ops (SegmentMean over SegmentSum) also
/// count their building blocks.
void AccountKernel(const char* op, const KernelWork& work) {
  if (!MetricsEnabled()) return;
  struct OpCounters {
    Counter* calls;
    Counter* flops;
    Counter* bytes;
  };
  static std::mutex* mu = new std::mutex();
  static auto* cache = new std::map<std::string, OpCounters, std::less<>>();
  OpCounters counters;
  {
    std::lock_guard<std::mutex> lock(*mu);
    auto it = cache->find(std::string_view(op));
    if (it == cache->end()) {
      const std::string base = std::string("kernel.") + op;
      it = cache
               ->emplace(std::string(op),
                         OpCounters{
                             GlobalMetrics().GetCounter(base + ".calls"),
                             GlobalMetrics().GetCounter(base + ".flops"),
                             GlobalMetrics().GetCounter(base + ".bytes"),
                         })
               .first;
    }
    counters = it->second;
  }
  counters.calls->Increment();
  counters.flops->Add(work.flops);
  counters.bytes->Add(work.bytes);
}

using RowKernel = void (*)(const float*, const float*, float*, std::int64_t,
                           std::int64_t, std::int64_t, std::int64_t);

RowKernel MatMulRowsKernel() {
  static const RowKernel kernel = detail::Avx2KernelsAvailable()
                                      ? detail::MatMulRowsAvx2
                                      : detail::MatMulRowsPortable;
  return kernel;
}

RowKernel MatMulTBRowsKernel() {
  static const RowKernel kernel = detail::Avx2KernelsAvailable()
                                      ? detail::MatMulTBRowsAvx2
                                      : detail::MatMulTBRowsPortable;
  return kernel;
}

using PanelKernel = void (*)(const float*, const float*, float*, std::int64_t,
                             std::int64_t, std::int64_t, std::int64_t,
                             std::int64_t);

PanelKernel MatMulPanelKernel() {
  static const PanelKernel kernel = detail::Avx2KernelsAvailable()
                                        ? detail::MatMulPanelAvx2
                                        : detail::MatMulPanelPortable;
  return kernel;
}

// Panel partition geometry: column-chunk boundaries snap to the tile
// width so no task ever splits a 16-wide register tile, and each
// packed block is capped so a panel (k × kPanelMaxCols floats, half
// that as bf16) stays cache-resident in the owning thread's scratch.
constexpr std::int64_t kPanelQuantum = 16;
constexpr std::int64_t kPanelMaxCols = 128;

// Pack columns [j0, j0 + pw) of B(k×n) into a dense k×pw panel.
void PackPanel(const float* b, std::int64_t k, std::int64_t n, std::int64_t j0,
               std::int64_t pw, float* out) {
  const std::size_t bytes = static_cast<std::size_t>(pw) * sizeof(float);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    std::memcpy(out + kk * pw, b + kk * n + j0, bytes);
  }
}

// Shared C(m×n) = A(m×k)·B(k×n) body behind MatMul and the transposed
// variants. Three dispatch paths:
//  - deterministic rows: each task owns output rows. Serial calls and
//    skinny-N shapes (not enough 16-column panels for the task count).
//  - deterministic panels: tasks own column ranges; each packs its B
//    columns into persistent per-thread scratch, so the streamed
//    operand stays dense and core-local. Bit-identical to the row path
//    (packing moves bytes, every per-element chain is unchanged).
//  - fast-math panels: same geometry, FMA tiles (optionally bf16
//    storage). Opt-in, tolerance-validated, never silently selected.
void MatMulInto(const float* pa, const float* pb, float* pc, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  const KernelConfig config = GetKernelConfig();
  const bool fast = config.fast_math && detail::FastMathKernelsAvailable();
  const bool bf16 = fast && config.fast_math_bf16;
  const std::int64_t groups = (n + kPanelQuantum - 1) / kPanelQuantum;
  const std::int64_t items = std::max(m, groups);
  const std::int64_t work_per_item = m * k * n / std::max<std::int64_t>(1,
                                                                        items);
  const int tasks = PlanParallelTasks(items, work_per_item);

  if (!fast && (tasks <= 1 || tasks > groups)) {
    const RowKernel kernel = MatMulRowsKernel();
    const int row_tasks = static_cast<int>(
        std::min<std::int64_t>(tasks, std::max<std::int64_t>(1, m)));
    ParallelForChunksFixed(m, row_tasks, [&](const RangeChunk& chunk) {
      if (chunk.begin < chunk.end) {
        kernel(pa, pb, pc, chunk.begin, chunk.end, k, n);
      }
    });
    return;
  }

  const int panel_tasks = static_cast<int>(
      std::min<std::int64_t>(tasks, std::max<std::int64_t>(1, groups)));
  constexpr std::int64_t kGroupsPerBlock = kPanelMaxCols / kPanelQuantum;
  ParallelForChunksFixed(groups, panel_tasks, [&](const RangeChunk& chunk) {
    std::vector<float>& scratch = chunk.slot->scratch;
    for (std::int64_t g0 = chunk.begin; g0 < chunk.end;
         g0 += kGroupsPerBlock) {
      const std::int64_t g1 = std::min(chunk.end, g0 + kGroupsPerBlock);
      const std::int64_t j0 = g0 * kPanelQuantum;
      const std::int64_t j1 = std::min(n, g1 * kPanelQuantum);
      const std::int64_t pw = j1 - j0;
      if (pw <= 0) continue;
      if (bf16) {
        // bf16 panels live in the same float scratch, two values per
        // slot.
        const std::size_t need = static_cast<std::size_t>(k * pw + 1) / 2;
        if (scratch.size() < need) scratch.resize(need);
        std::uint16_t* packed =
            reinterpret_cast<std::uint16_t*>(scratch.data());
        detail::PackPanelBf16(pb, k, n, j0, pw, packed);
        detail::MatMulPanelBf16Fma(pa, packed, pc, m, k, pw, j0, n);
        continue;
      }
      const std::size_t need = static_cast<std::size_t>(k * pw);
      if (scratch.size() < need) scratch.resize(need);
      PackPanel(pb, k, n, j0, pw, scratch.data());
      if (fast) {
        detail::MatMulPanelFma(pa, scratch.data(), pc, m, k, pw, j0, n);
      } else {
        MatMulPanelKernel()(pa, scratch.data(), pc, m, k, pw, j0, n);
      }
    }
  });
}

// Below this many multiply-adds the transpose-and-tile path for
// MatMulTransposedA costs more in allocation than it saves.
constexpr std::int64_t kTransposeAMinMulAdds = 1 << 15;

// Cache-blocked out-of-place transpose: (rows×cols) -> (cols×rows).
void TransposeInto(const float* __restrict__ src, std::int64_t rows,
                   std::int64_t cols, float* __restrict__ dst) {
  constexpr std::int64_t kBlock = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kBlock) {
    const std::int64_t r1 = std::min(rows, r0 + kBlock);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kBlock) {
      const std::int64_t c1 = std::min(cols, c0 + kBlock);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

}  // namespace

bool UsingAvx2() { return detail::Avx2KernelsAvailable(); }

bool UsingFastMath() {
  return GetKernelConfig().fast_math && detail::FastMathKernelsAvailable();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  PerfCounterScope profile("kernel.matmul");
  AccountKernel("matmul", MatMulWork(m, k, n));
  Tensor c(m, n);
  if (c.empty()) return c;
  MatMulInto(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  PerfCounterScope profile("kernel.matmul_tb");
  AccountKernel("matmul_tb", MatMulWork(m, k, n));
  Tensor c(m, n);
  if (c.empty()) return c;
  const RowKernel kernel = MatMulTBRowsKernel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelForRanges(m, k * n, [&](std::int64_t r0, std::int64_t r1) {
    kernel(pa, pb, pc, r0, r1, k, n);
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  const std::int64_t k = a.rows(), m = a.cols(), n = b.cols();
  PerfCounterScope profile("kernel.matmul_ta");
  AccountKernel("matmul_ta", MatMulWork(m, k, n));
  if (m * k * n < kTransposeAMinMulAdds && !UsingFastMath()) {
    return reference::MatMulTransposedA(a, b);
  }
  // A^T·B = MatMul over a transposed copy of A. The tiled kernel skips
  // the same zero entries in the same ascending-k order the reference's
  // k-i-j loop does, so results stay bit-identical while the hot loop
  // gets the register-tiled treatment (and the fast-math tier applies
  // here too, since the shared body does the dispatch).
  std::vector<float> at(static_cast<std::size_t>(m * k));
  TransposeInto(a.data(), k, m, at.data());
  Tensor c(m, n);
  if (c.empty()) return c;
  MatMulInto(at.data(), b.data(), c.data(), m, k, n);
  return c;
}

namespace {

/// Owner buckets for destination-scattered rows: row indices grouped
/// by the task that owns their destination under the RangeBegin
/// partition, input order preserved within each task (the counting
/// sort is stable). One serial O(rows) pass replaces the old
/// scan-all-rows-and-filter scheme, whose id-scan traffic and branchy
/// filter grew linearly with the task count — the reason segment ops
/// used to get SLOWER with more threads.
struct OwnerBuckets {
  std::vector<std::int64_t> offsets;  // tasks + 1
  std::vector<std::int64_t> rows;     // grouped by owner, input order kept
};

OwnerBuckets BucketRowsByOwner(const std::int64_t* ids, std::int64_t rows,
                               std::int64_t num_dst, int tasks) {
  OwnerBuckets buckets;
  buckets.offsets.assign(static_cast<std::size_t>(tasks) + 1, 0);
  for (std::int64_t i = 0; i < rows; ++i) {
    ++buckets.offsets[static_cast<std::size_t>(
        RangeOwner(ids[i], num_dst, tasks)) + 1];
  }
  for (int t = 0; t < tasks; ++t) {
    buckets.offsets[static_cast<std::size_t>(t) + 1] +=
        buckets.offsets[static_cast<std::size_t>(t)];
  }
  buckets.rows.resize(static_cast<std::size_t>(rows));
  std::vector<std::int64_t> cursor(buckets.offsets.begin(),
                                   buckets.offsets.end() - 1);
  for (std::int64_t i = 0; i < rows; ++i) {
    buckets.rows[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(
            RangeOwner(ids[i], num_dst, tasks))]++)] = i;
  }
  return buckets;
}

/// Shared body of the segment folds: destination-range ownership over
/// segments; each task folds only its pre-bucketed rows, in input
/// order. Accumulation order per segment matches the serial reference
/// exactly at any task count (each segment is owned by one task, and
/// that task sees its rows in the original order).
void SegmentFoldInto(Tensor* out, const Tensor& values,
                     std::span<const std::int64_t> ids,
                     std::int64_t num_segments, detail::RowFoldFn fold) {
  const std::int64_t cols = values.cols();
  const float* pv = values.data();
  float* po = out->data();
  const std::int64_t* pid = ids.data();
  const std::int64_t rows = static_cast<std::int64_t>(ids.size());
  const std::int64_t work_per_segment =
      rows * cols / std::max<std::int64_t>(1, num_segments);
  const int tasks = PlanParallelTasks(num_segments, work_per_segment);
  if (tasks <= 1) {
    // One task: the reference loop, unfiltered and unbucketed.
    for (std::int64_t i = 0; i < rows; ++i) {
      fold(po + pid[i] * cols, pv + i * cols, cols);
    }
    return;
  }
  const OwnerBuckets buckets =
      BucketRowsByOwner(pid, rows, num_segments, tasks);
  ParallelForChunksFixed(num_segments, tasks, [&](const RangeChunk& chunk) {
    const std::int64_t lo =
        buckets.offsets[static_cast<std::size_t>(chunk.task)];
    const std::int64_t hi =
        buckets.offsets[static_cast<std::size_t>(chunk.task) + 1];
    for (std::int64_t p = lo; p < hi; ++p) {
      const std::int64_t i = buckets.rows[static_cast<std::size_t>(p)];
      fold(po + pid[i] * cols, pv + i * cols, cols);
    }
  });
}

/// Max/min share everything but the init value and the fold.
Tensor SegmentExtremum(const Tensor& values, std::span<const std::int64_t> ids,
                       std::int64_t num_segments, float init,
                       detail::RowFoldFn fold) {
  const std::int64_t cols = values.cols();
  Tensor out = Tensor::Full(num_segments, cols, init);
  if (cols == 0) return out;
  if (ids.empty()) return Tensor(num_segments, cols);  // all segments empty
  SegmentFoldInto(&out, values, ids, num_segments, fold);
  // Empty segments report zero rather than +-inf so downstream layers
  // see a neutral "no messages" value.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) ++counts[static_cast<std::size_t>(id)];
  float* po = out.data();
  ParallelForRanges(num_segments, cols, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t s = s0; s < s1; ++s) {
      if (counts[static_cast<std::size_t>(s)] != 0) continue;
      float* row = po + s * cols;
      std::fill(row, row + cols, 0.0f);
    }
  });
  return out;
}

}  // namespace

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  const std::int64_t cols = values.cols();
  PerfCounterScope profile("kernel.segment_sum");
  AccountKernel("segment_sum",
                SegmentFoldWork(static_cast<std::int64_t>(ids.size()), cols));
  Tensor out(num_segments, cols);
  if (ids.empty() || cols == 0) return out;
  SegmentFoldInto(&out, values, ids, num_segments, detail::RowAdd());
  return out;
}

Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  PerfCounterScope profile("kernel.segment_max");
  AccountKernel("segment_max",
                SegmentFoldWork(static_cast<std::int64_t>(ids.size()),
                                values.cols()));
  return SegmentExtremum(values, ids, num_segments,
                         -std::numeric_limits<float>::infinity(),
                         detail::RowMax());
}

Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  PerfCounterScope profile("kernel.segment_min");
  AccountKernel("segment_min",
                SegmentFoldWork(static_cast<std::int64_t>(ids.size()),
                                values.cols()));
  return SegmentExtremum(values, ids, num_segments,
                         std::numeric_limits<float>::infinity(),
                         detail::RowMin());
}

Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments) {
  PerfCounterScope profile("kernel.segment_mean");
  AccountKernel("segment_mean",
                SegmentMeanWork(static_cast<std::int64_t>(ids.size()),
                                values.cols(), num_segments));
  Tensor out = SegmentSum(values, ids, num_segments);
  if (num_segments == 0) return out;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) ++counts[static_cast<std::size_t>(id)];
  const std::int64_t cols = out.cols();
  float* po = out.data();
  ParallelForRanges(num_segments, cols,
                    [&](std::int64_t s0, std::int64_t s1) {
                      for (std::int64_t s = s0; s < s1; ++s) {
                        const std::int64_t count =
                            counts[static_cast<std::size_t>(s)];
                        if (count == 0) continue;
                        const float inv = 1.0f / static_cast<float>(count);
                        float* row = po + s * cols;
                        for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
                      }
                    });
  return out;
}

Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices) {
  const std::int64_t out_rows = static_cast<std::int64_t>(indices.size());
  const std::int64_t cols = a.cols();
  PerfCounterScope profile("kernel.gather_rows");
  AccountKernel("gather_rows", GatherWork(out_rows, cols));
  for (std::int64_t idx : indices) {
    INFERTURBO_CHECK(0 <= idx && idx < a.rows())
        << "GatherRows index " << idx << " out of " << a.rows();
  }
  Tensor c(out_rows, cols);
  if (c.empty()) return c;
  const float* pa = a.data();
  float* pc = c.data();
  const std::int64_t* pid = indices.data();
  const std::size_t row_bytes = static_cast<std::size_t>(cols) * sizeof(float);
  ParallelForRanges(out_rows, cols, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      std::memcpy(pc + i * cols, pa + pid[i] * cols, row_bytes);
    }
  });
  return c;
}

void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows) {
  PerfCounterScope profile("kernel.scatter_add_rows");
  AccountKernel("scatter_add_rows",
                ScatterAddWork(static_cast<std::int64_t>(indices.size()),
                               rows.cols()));
  for (std::int64_t idx : indices) {
    INFERTURBO_CHECK(0 <= idx && idx < acc->rows())
        << "ScatterAddRows index " << idx << " out of " << acc->rows();
  }
  const std::int64_t num_rows = static_cast<std::int64_t>(indices.size());
  const std::int64_t cols = rows.cols();
  const std::int64_t acc_rows = acc->rows();
  if (num_rows == 0 || cols == 0) return;
  float* pa = acc->data();
  const float* pr = rows.data();
  const std::int64_t* pid = indices.data();
  const std::int64_t work_per_acc_row =
      num_rows * cols / std::max<std::int64_t>(1, acc_rows);
  const int tasks = PlanParallelTasks(acc_rows, work_per_acc_row);
  const detail::RowFoldFn add = detail::RowAdd();
  if (tasks <= 1) {
    for (std::int64_t i = 0; i < num_rows; ++i) {
      add(pa + pid[i] * cols, pr + i * cols, cols);
    }
    return;
  }
  // Destination-range ownership with pre-bucketed rows: each task adds
  // only its own destinations' rows, in input order, so accumulation
  // per destination row matches the serial order at any task count.
  const OwnerBuckets buckets = BucketRowsByOwner(pid, num_rows, acc_rows, tasks);
  ParallelForChunksFixed(acc_rows, tasks, [&](const RangeChunk& chunk) {
    const std::int64_t lo =
        buckets.offsets[static_cast<std::size_t>(chunk.task)];
    const std::int64_t hi =
        buckets.offsets[static_cast<std::size_t>(chunk.task) + 1];
    for (std::int64_t p = lo; p < hi; ++p) {
      const std::int64_t i = buckets.rows[static_cast<std::size_t>(p)];
      add(pa + pid[i] * cols, pr + i * cols, cols);
    }
  });
}

}  // namespace kernels
}  // namespace inferturbo
