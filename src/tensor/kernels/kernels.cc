#include "src/tensor/kernels/kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/logging.h"
#include "src/tensor/kernels/matmul_tiles.h"
#include "src/tensor/kernels/reference.h"
#include "src/tensor/kernels/row_fold.h"

namespace inferturbo {
namespace kernels {
namespace {

using RowKernel = void (*)(const float*, const float*, float*, std::int64_t,
                           std::int64_t, std::int64_t, std::int64_t);

RowKernel MatMulRowsKernel() {
  static const RowKernel kernel = detail::Avx2KernelsAvailable()
                                      ? detail::MatMulRowsAvx2
                                      : detail::MatMulRowsPortable;
  return kernel;
}

RowKernel MatMulTBRowsKernel() {
  static const RowKernel kernel = detail::Avx2KernelsAvailable()
                                      ? detail::MatMulTBRowsAvx2
                                      : detail::MatMulTBRowsPortable;
  return kernel;
}

// Below this many multiply-adds the transpose-and-tile path for
// MatMulTransposedA costs more in allocation than it saves.
constexpr std::int64_t kTransposeAMinMulAdds = 1 << 15;

// Cache-blocked out-of-place transpose: (rows×cols) -> (cols×rows).
void TransposeInto(const float* __restrict__ src, std::int64_t rows,
                   std::int64_t cols, float* __restrict__ dst) {
  constexpr std::int64_t kBlock = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kBlock) {
    const std::int64_t r1 = std::min(rows, r0 + kBlock);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kBlock) {
      const std::int64_t c1 = std::min(cols, c0 + kBlock);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

}  // namespace

bool UsingAvx2() { return detail::Avx2KernelsAvailable(); }

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  if (c.empty()) return c;
  const RowKernel kernel = MatMulRowsKernel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelForRanges(m, k * n, [&](std::int64_t r0, std::int64_t r1) {
    kernel(pa, pb, pc, r0, r1, k, n);
  });
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  if (c.empty()) return c;
  const RowKernel kernel = MatMulTBRowsKernel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelForRanges(m, k * n, [&](std::int64_t r0, std::int64_t r1) {
    kernel(pa, pb, pc, r0, r1, k, n);
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  const std::int64_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m * k * n < kTransposeAMinMulAdds) {
    return reference::MatMulTransposedA(a, b);
  }
  // A^T·B = MatMul over a transposed copy of A. The tiled kernel skips
  // the same zero entries in the same ascending-k order the reference's
  // k-i-j loop does, so results stay bit-identical while the hot loop
  // gets the register-tiled treatment.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  TransposeInto(a.data(), k, m, at.data());
  Tensor c(m, n);
  if (c.empty()) return c;
  const RowKernel kernel = MatMulRowsKernel();
  const float* pb = b.data();
  float* pc = c.data();
  const float* pat = at.data();
  ParallelForRanges(m, k * n, [&](std::int64_t r0, std::int64_t r1) {
    kernel(pat, pb, pc, r0, r1, k, n);
  });
  return c;
}

namespace {

/// Shared body of the segment folds: destination-range ownership over
/// segments, rows scanned in input order per task, one dispatched
/// row-fold per row. Accumulation order per segment matches the serial
/// reference exactly at any task count.
void SegmentFoldInto(Tensor* out, const Tensor& values,
                     std::span<const std::int64_t> ids,
                     std::int64_t num_segments, detail::RowFoldFn fold) {
  const std::int64_t cols = values.cols();
  const float* pv = values.data();
  float* po = out->data();
  const std::int64_t* pid = ids.data();
  const std::int64_t rows = static_cast<std::int64_t>(ids.size());
  const std::int64_t work_per_segment =
      rows * cols / std::max<std::int64_t>(1, num_segments);
  ParallelForRanges(
      num_segments, work_per_segment, [&](std::int64_t s0, std::int64_t s1) {
        if (s1 - s0 == num_segments) {
          // Whole range on one task: the reference loop, unfiltered.
          for (std::int64_t i = 0; i < rows; ++i) {
            fold(po + pid[i] * cols, pv + i * cols, cols);
          }
          return;
        }
        for (std::int64_t i = 0; i < rows; ++i) {
          const std::int64_t s = pid[i];
          if (s < s0 || s >= s1) continue;
          fold(po + s * cols, pv + i * cols, cols);
        }
      });
}

/// Max/min share everything but the init value and the fold.
Tensor SegmentExtremum(const Tensor& values, std::span<const std::int64_t> ids,
                       std::int64_t num_segments, float init,
                       detail::RowFoldFn fold) {
  const std::int64_t cols = values.cols();
  Tensor out = Tensor::Full(num_segments, cols, init);
  if (cols == 0) return out;
  if (ids.empty()) return Tensor(num_segments, cols);  // all segments empty
  SegmentFoldInto(&out, values, ids, num_segments, fold);
  // Empty segments report zero rather than +-inf so downstream layers
  // see a neutral "no messages" value.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) ++counts[static_cast<std::size_t>(id)];
  float* po = out.data();
  ParallelForRanges(num_segments, cols, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t s = s0; s < s1; ++s) {
      if (counts[static_cast<std::size_t>(s)] != 0) continue;
      float* row = po + s * cols;
      std::fill(row, row + cols, 0.0f);
    }
  });
  return out;
}

}  // namespace

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  const std::int64_t cols = values.cols();
  Tensor out(num_segments, cols);
  if (ids.empty() || cols == 0) return out;
  SegmentFoldInto(&out, values, ids, num_segments, detail::RowAdd());
  return out;
}

Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  return SegmentExtremum(values, ids, num_segments,
                         -std::numeric_limits<float>::infinity(),
                         detail::RowMax());
}

Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  return SegmentExtremum(values, ids, num_segments,
                         std::numeric_limits<float>::infinity(),
                         detail::RowMin());
}

Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments) {
  Tensor out = SegmentSum(values, ids, num_segments);
  if (num_segments == 0) return out;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) ++counts[static_cast<std::size_t>(id)];
  const std::int64_t cols = out.cols();
  float* po = out.data();
  ParallelForRanges(num_segments, cols,
                    [&](std::int64_t s0, std::int64_t s1) {
                      for (std::int64_t s = s0; s < s1; ++s) {
                        const std::int64_t count =
                            counts[static_cast<std::size_t>(s)];
                        if (count == 0) continue;
                        const float inv = 1.0f / static_cast<float>(count);
                        float* row = po + s * cols;
                        for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
                      }
                    });
  return out;
}

Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices) {
  const std::int64_t out_rows = static_cast<std::int64_t>(indices.size());
  const std::int64_t cols = a.cols();
  for (std::int64_t idx : indices) {
    INFERTURBO_CHECK(0 <= idx && idx < a.rows())
        << "GatherRows index " << idx << " out of " << a.rows();
  }
  Tensor c(out_rows, cols);
  if (c.empty()) return c;
  const float* pa = a.data();
  float* pc = c.data();
  const std::int64_t* pid = indices.data();
  const std::size_t row_bytes = static_cast<std::size_t>(cols) * sizeof(float);
  ParallelForRanges(out_rows, cols, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      std::memcpy(pc + i * cols, pa + pid[i] * cols, row_bytes);
    }
  });
  return c;
}

void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows) {
  for (std::int64_t idx : indices) {
    INFERTURBO_CHECK(0 <= idx && idx < acc->rows())
        << "ScatterAddRows index " << idx << " out of " << acc->rows();
  }
  const std::int64_t num_rows = static_cast<std::int64_t>(indices.size());
  const std::int64_t cols = rows.cols();
  const std::int64_t acc_rows = acc->rows();
  if (num_rows == 0 || cols == 0) return;
  float* pa = acc->data();
  const float* pr = rows.data();
  const std::int64_t* pid = indices.data();
  const std::int64_t work_per_acc_row =
      num_rows * cols / std::max<std::int64_t>(1, acc_rows);
  ParallelForRanges(
      acc_rows, work_per_acc_row, [&](std::int64_t d0, std::int64_t d1) {
        if (d1 - d0 == acc_rows) {
          for (std::int64_t i = 0; i < num_rows; ++i) {
            float* dst = pa + pid[i] * cols;
            const float* src = pr + i * cols;
            for (std::int64_t j = 0; j < cols; ++j) dst[j] += src[j];
          }
          return;
        }
        // Destination-range ownership: every task scans all rows in
        // input order and folds only its own destinations, matching
        // the serial accumulation order per destination row.
        for (std::int64_t i = 0; i < num_rows; ++i) {
          const std::int64_t d = pid[i];
          if (d < d0 || d >= d1) continue;
          float* dst = pa + d * cols;
          const float* src = pr + i * cols;
          for (std::int64_t j = 0; j < cols; ++j) dst[j] += src[j];
        }
      });
}

}  // namespace kernels
}  // namespace inferturbo
