// Portable-ISA instantiation of the tiled matmul bodies (baseline
// x86-64 / whatever the toolchain defaults to). See matmul_tiles.inc.
#include <cstdint>

#include "src/tensor/kernels/matmul_tiles.h"

namespace inferturbo {
namespace kernels {
namespace detail {

#define INFERTURBO_TILE_FN(name) name##Portable
#define INFERTURBO_TILE_RESTRICT __restrict__
#include "src/tensor/kernels/matmul_tiles.inc"
#undef INFERTURBO_TILE_FN
#undef INFERTURBO_TILE_RESTRICT

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo
