#include "src/tensor/kernels/row_fold.h"

#include "src/tensor/kernels/matmul_tiles.h"

namespace inferturbo {
namespace kernels {
namespace detail {

void RowAddPortable(float* __restrict__ acc, const float* __restrict__ row,
                    std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) acc[j] += row[j];
}

void RowMaxPortable(float* __restrict__ acc, const float* __restrict__ row,
                    std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    if (acc[j] < row[j]) acc[j] = row[j];
  }
}

void RowMinPortable(float* __restrict__ acc, const float* __restrict__ row,
                    std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    if (row[j] < acc[j]) acc[j] = row[j];
  }
}

namespace {

template <void Fold(float*, const float*, std::int64_t)>
void SlotFoldImpl(float* rows, std::int64_t width, const std::int32_t* slots,
                  std::int64_t* counts, const float* payload,
                  std::int64_t stride, std::int64_t n, bool partial) {
  if (partial) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = payload + i * stride;
      const std::int64_t s = slots[i];
      counts[s] += static_cast<std::int64_t>(row[width]);
      Fold(rows + s * width, row, width);
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = payload + i * stride;
      const std::int64_t s = slots[i];
      ++counts[s];
      Fold(rows + s * width, row, width);
    }
  }
}

template <void Fold(float*, const float*, std::int64_t)>
void SegFoldImpl(float* out, std::int64_t width, const std::int32_t* segs,
                 const float* payload, std::int64_t stride, std::int64_t n,
                 std::int64_t s0, std::int64_t s1) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = segs[i];
    if (s >= s0 && s < s1) {
      Fold(out + s * width, payload + i * stride, width);
    }
  }
}

}  // namespace

void SlotFoldAddPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial) {
  SlotFoldImpl<RowAddPortable>(rows, width, slots, counts, payload, stride, n,
                               partial);
}
void SlotFoldMaxPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial) {
  SlotFoldImpl<RowMaxPortable>(rows, width, slots, counts, payload, stride, n,
                               partial);
}
void SlotFoldMinPortable(float* rows, std::int64_t width,
                         const std::int32_t* slots, std::int64_t* counts,
                         const float* payload, std::int64_t stride,
                         std::int64_t n, bool partial) {
  SlotFoldImpl<RowMinPortable>(rows, width, slots, counts, payload, stride, n,
                               partial);
}

void SegFoldAddPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1) {
  SegFoldImpl<RowAddPortable>(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMaxPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1) {
  SegFoldImpl<RowMaxPortable>(out, width, segs, payload, stride, n, s0, s1);
}
void SegFoldMinPortable(float* out, std::int64_t width,
                        const std::int32_t* segs, const float* payload,
                        std::int64_t stride, std::int64_t n, std::int64_t s0,
                        std::int64_t s1) {
  SegFoldImpl<RowMinPortable>(out, width, segs, payload, stride, n, s0, s1);
}

RowFoldFn RowAdd() {
  static const RowFoldFn fn =
      Avx2KernelsAvailable() ? RowAddAvx2 : RowAddPortable;
  return fn;
}

RowFoldFn RowMax() {
  static const RowFoldFn fn =
      Avx2KernelsAvailable() ? RowMaxAvx2 : RowMaxPortable;
  return fn;
}

RowFoldFn RowMin() {
  static const RowFoldFn fn =
      Avx2KernelsAvailable() ? RowMinAvx2 : RowMinPortable;
  return fn;
}

SlotFoldFn SlotFold(FoldOp op) {
  const bool avx2 = Avx2KernelsAvailable();
  switch (op) {
    case FoldOp::kAdd:
      return avx2 ? SlotFoldAddAvx2 : SlotFoldAddPortable;
    case FoldOp::kMax:
      return avx2 ? SlotFoldMaxAvx2 : SlotFoldMaxPortable;
    case FoldOp::kMin:
      return avx2 ? SlotFoldMinAvx2 : SlotFoldMinPortable;
  }
  return avx2 ? SlotFoldAddAvx2 : SlotFoldAddPortable;
}

SegFoldFn SegFold(FoldOp op) {
  const bool avx2 = Avx2KernelsAvailable();
  switch (op) {
    case FoldOp::kAdd:
      return avx2 ? SegFoldAddAvx2 : SegFoldAddPortable;
    case FoldOp::kMax:
      return avx2 ? SegFoldMaxAvx2 : SegFoldMaxPortable;
    case FoldOp::kMin:
      return avx2 ? SegFoldMinAvx2 : SegFoldMinPortable;
  }
  return avx2 ? SegFoldAddAvx2 : SegFoldAddPortable;
}

}  // namespace detail
}  // namespace kernels
}  // namespace inferturbo
