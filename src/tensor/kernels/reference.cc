#include "src/tensor/kernels/reference.h"

#include <cstring>
#include <limits>
#include <vector>

#include "src/common/logging.h"

namespace inferturbo {
namespace kernels {
namespace reference {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows
  // of B and C.
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c.RowPtr(i);
    const float* ai = a.RowPtr(i);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = ai[kk];
      if (aik == 0.0f) continue;
      const float* bk = b.RowPtr(kk);
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.RowPtr(i);
    float* ci = c.RowPtr(i);
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b.RowPtr(j);
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  const std::int64_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a.RowPtr(kk);
    const float* bk = b.RowPtr(kk);
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = ak[i];
      if (aki == 0.0f) continue;
      float* ci = c.RowPtr(i);
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  Tensor out(num_segments, values.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    float* po = out.RowPtr(ids[i]);
    const float* pv = values.RowPtr(static_cast<std::int64_t>(i));
    for (std::int64_t j = 0; j < values.cols(); ++j) po[j] += pv[j];
  }
  return out;
}

Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments) {
  Tensor out = SegmentSum(values, ids, num_segments);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) ++counts[static_cast<std::size_t>(id)];
  for (std::int64_t s = 0; s < num_segments; ++s) {
    if (counts[static_cast<std::size_t>(s)] == 0) continue;
    const float inv =
        1.0f / static_cast<float>(counts[static_cast<std::size_t>(s)]);
    float* po = out.RowPtr(s);
    for (std::int64_t j = 0; j < out.cols(); ++j) po[j] *= inv;
  }
  return out;
}

namespace {

Tensor SegmentExtremum(const Tensor& values, std::span<const std::int64_t> ids,
                       std::int64_t num_segments, float init, bool is_max) {
  Tensor out = Tensor::Full(num_segments, values.cols(), init);
  std::vector<bool> touched(static_cast<std::size_t>(num_segments), false);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    touched[static_cast<std::size_t>(ids[i])] = true;
    float* po = out.RowPtr(ids[i]);
    const float* pv = values.RowPtr(static_cast<std::int64_t>(i));
    if (is_max) {
      for (std::int64_t j = 0; j < values.cols(); ++j) {
        if (po[j] < pv[j]) po[j] = pv[j];
      }
    } else {
      for (std::int64_t j = 0; j < values.cols(); ++j) {
        if (pv[j] < po[j]) po[j] = pv[j];
      }
    }
  }
  // Empty segments report zero, not +-inf.
  for (std::int64_t s = 0; s < num_segments; ++s) {
    if (touched[static_cast<std::size_t>(s)]) continue;
    float* po = out.RowPtr(s);
    for (std::int64_t j = 0; j < out.cols(); ++j) po[j] = 0.0f;
  }
  return out;
}

}  // namespace

Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  return SegmentExtremum(values, ids, num_segments,
                         -std::numeric_limits<float>::infinity(),
                         /*is_max=*/true);
}

Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  return SegmentExtremum(values, ids, num_segments,
                         std::numeric_limits<float>::infinity(),
                         /*is_max=*/false);
}

Tensor GatherRows(const Tensor& a, std::span<const std::int64_t> indices) {
  Tensor c(static_cast<std::int64_t>(indices.size()), a.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t idx = indices[i];
    INFERTURBO_CHECK(0 <= idx && idx < a.rows())
        << "GatherRows index " << idx << " out of " << a.rows();
    std::memcpy(c.RowPtr(static_cast<std::int64_t>(i)), a.RowPtr(idx),
                static_cast<std::size_t>(a.cols()) * sizeof(float));
  }
  return c;
}

void ScatterAddRows(Tensor* acc, std::span<const std::int64_t> indices,
                    const Tensor& rows) {
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t idx = indices[i];
    INFERTURBO_CHECK(0 <= idx && idx < acc->rows())
        << "ScatterAddRows index " << idx << " out of " << acc->rows();
    float* pa = acc->RowPtr(idx);
    const float* pr = rows.RowPtr(static_cast<std::int64_t>(i));
    for (std::int64_t j = 0; j < rows.cols(); ++j) pa[j] += pr[j];
  }
}

}  // namespace reference
}  // namespace kernels
}  // namespace inferturbo
