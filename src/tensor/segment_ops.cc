#include "src/tensor/segment_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/tensor/kernels/kernels.h"

namespace inferturbo {
namespace {

void CheckIds(const Tensor& values, std::span<const std::int64_t> ids,
              std::int64_t num_segments) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(ids.size()) == values.rows())
      << "segment ids size " << ids.size() << " vs rows " << values.rows();
  for (std::int64_t id : ids) {
    INFERTURBO_CHECK(0 <= id && id < num_segments)
        << "segment id " << id << " out of [0," << num_segments << ")";
  }
}

}  // namespace

Tensor SegmentSum(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  CheckIds(values, ids, num_segments);
  return kernels::SegmentSum(values, ids, num_segments);
}

Tensor SegmentMean(const Tensor& values, std::span<const std::int64_t> ids,
                   std::int64_t num_segments) {
  CheckIds(values, ids, num_segments);
  return kernels::SegmentMean(values, ids, num_segments);
}

Tensor SegmentMax(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  CheckIds(values, ids, num_segments);
  return kernels::SegmentMax(values, ids, num_segments);
}

Tensor SegmentMin(const Tensor& values, std::span<const std::int64_t> ids,
                  std::int64_t num_segments) {
  CheckIds(values, ids, num_segments);
  return kernels::SegmentMin(values, ids, num_segments);
}

std::vector<std::int64_t> SegmentCounts(std::span<const std::int64_t> ids,
                                        std::int64_t num_segments) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_segments), 0);
  for (std::int64_t id : ids) {
    INFERTURBO_CHECK(0 <= id && id < num_segments)
        << "segment id " << id << " out of [0," << num_segments << ")";
    ++counts[static_cast<std::size_t>(id)];
  }
  return counts;
}

Tensor SegmentSoftmax(const Tensor& logits, std::span<const std::int64_t> ids,
                      std::int64_t num_segments) {
  INFERTURBO_CHECK(logits.cols() == 1)
      << "SegmentSoftmax expects a column vector, got " << logits.ToString();
  CheckIds(logits, ids, num_segments);
  std::vector<float> seg_max(static_cast<std::size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const float v = logits.At(static_cast<std::int64_t>(i), 0);
    float& m = seg_max[static_cast<std::size_t>(ids[i])];
    m = std::max(m, v);
  }
  std::vector<double> seg_sum(static_cast<std::size_t>(num_segments), 0.0);
  Tensor out(logits.rows(), 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const float e = std::exp(logits.At(static_cast<std::int64_t>(i), 0) -
                             seg_max[static_cast<std::size_t>(ids[i])]);
    out.At(static_cast<std::int64_t>(i), 0) = e;
    seg_sum[static_cast<std::size_t>(ids[i])] += e;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.At(static_cast<std::int64_t>(i), 0) /=
        static_cast<float>(seg_sum[static_cast<std::size_t>(ids[i])]);
  }
  return out;
}

}  // namespace inferturbo
