#include "src/tensor/sparse.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace inferturbo {

CsrMatrix CsrMatrix::FromCoo(std::int64_t rows, std::int64_t cols,
                             std::span<const std::int64_t> row_ids,
                             std::span<const std::int64_t> col_ids,
                             std::span<const float> values) {
  INFERTURBO_CHECK(row_ids.size() == col_ids.size() &&
                   row_ids.size() == values.size())
      << "COO arrays must be the same length";
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  // Counting sort by row keeps construction O(nnz + rows).
  std::vector<std::int64_t> counts(static_cast<std::size_t>(rows) + 1, 0);
  for (std::int64_t r : row_ids) {
    INFERTURBO_CHECK(0 <= r && r < rows) << "row id " << r << " out of range";
    ++counts[static_cast<std::size_t>(r) + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  m.row_offsets_ = counts;
  std::vector<std::int64_t> cursor(counts.begin(), counts.end() - 1);
  m.col_indices_.resize(row_ids.size());
  m.values_.resize(row_ids.size());
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    INFERTURBO_CHECK(0 <= col_ids[i] && col_ids[i] < cols)
        << "col id " << col_ids[i] << " out of range";
    const std::int64_t pos = cursor[static_cast<std::size_t>(row_ids[i])]++;
    m.col_indices_[static_cast<std::size_t>(pos)] = col_ids[i];
    m.values_[static_cast<std::size_t>(pos)] = values[i];
  }
  // Merge duplicates within each row so FromCoo is set-like.
  std::vector<std::int64_t> new_offsets(static_cast<std::size_t>(rows) + 1, 0);
  std::size_t write = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t begin = m.row_offsets_[static_cast<std::size_t>(r)];
    const std::int64_t end = m.row_offsets_[static_cast<std::size_t>(r) + 1];
    // Sort the row's (col, value) pairs by column.
    std::vector<std::pair<std::int64_t, float>> entries;
    entries.reserve(static_cast<std::size_t>(end - begin));
    for (std::int64_t i = begin; i < end; ++i) {
      entries.emplace_back(m.col_indices_[static_cast<std::size_t>(i)],
                           m.values_[static_cast<std::size_t>(i)]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < entries.size();) {
      std::int64_t col = entries[i].first;
      float sum = 0.0f;
      while (i < entries.size() && entries[i].first == col) {
        sum += entries[i].second;
        ++i;
      }
      m.col_indices_[write] = col;
      m.values_[write] = sum;
      ++write;
    }
    new_offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(write);
  }
  m.col_indices_.resize(write);
  m.values_.resize(write);
  m.row_offsets_ = std::move(new_offsets);
  return m;
}

CsrMatrix CsrMatrix::FromEdges(std::int64_t num_nodes,
                               std::span<const std::int64_t> dst_ids,
                               std::span<const std::int64_t> src_ids) {
  std::vector<float> ones(dst_ids.size(), 1.0f);
  return FromCoo(num_nodes, num_nodes, dst_ids, src_ids, ones);
}

void CsrMatrix::NormalizeRows() {
  for (std::int64_t r = 0; r < rows_; ++r) {
    const std::int64_t begin = row_offsets_[static_cast<std::size_t>(r)];
    const std::int64_t end = row_offsets_[static_cast<std::size_t>(r) + 1];
    float sum = 0.0f;
    for (std::int64_t i = begin; i < end; ++i) {
      sum += values_[static_cast<std::size_t>(i)];
    }
    if (sum == 0.0f) continue;
    const float inv = 1.0f / sum;
    for (std::int64_t i = begin; i < end; ++i) {
      values_[static_cast<std::size_t>(i)] *= inv;
    }
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<std::int64_t> rows;
  std::vector<std::int64_t> cols;
  rows.reserve(values_.size());
  cols.reserve(values_.size());
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t i = row_offsets_[static_cast<std::size_t>(r)];
         i < row_offsets_[static_cast<std::size_t>(r) + 1]; ++i) {
      rows.push_back(col_indices_[static_cast<std::size_t>(i)]);
      cols.push_back(r);
    }
  }
  return FromCoo(cols_, rows_, rows, cols, values_);
}

Tensor CsrMatrix::MatMulDense(const Tensor& dense) const {
  INFERTURBO_CHECK(dense.rows() == cols_)
      << "CsrMatrix::MatMulDense shape mismatch: " << cols_ << " vs "
      << dense.rows();
  Tensor out(rows_, dense.cols());
  for (std::int64_t r = 0; r < rows_; ++r) {
    float* po = out.RowPtr(r);
    const std::int64_t begin = row_offsets_[static_cast<std::size_t>(r)];
    const std::int64_t end = row_offsets_[static_cast<std::size_t>(r) + 1];
    for (std::int64_t i = begin; i < end; ++i) {
      const float v = values_[static_cast<std::size_t>(i)];
      const float* pd = dense.RowPtr(col_indices_[static_cast<std::size_t>(i)]);
      for (std::int64_t j = 0; j < dense.cols(); ++j) po[j] += v * pd[j];
    }
  }
  return out;
}

}  // namespace inferturbo
