#include "src/tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"

namespace inferturbo {
namespace ag {

void Variable::AccumulateGrad(const Tensor& g) {
  if (grad.empty()) {
    grad = g;
  } else {
    AddInPlace(&grad, g);
  }
}

void Variable::ZeroGrad() { grad = Tensor(); }

VarPtr Param(Tensor value) {
  auto v = std::make_shared<Variable>(std::move(value));
  v->requires_grad = true;
  return v;
}

VarPtr Constant(Tensor value) {
  return std::make_shared<Variable>(std::move(value));
}

namespace {

/// Creates an interior node whose requires_grad is inherited from its
/// parents, wiring up the given backward closure.
VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Variable*)> backward_fn) {
  auto v = std::make_shared<Variable>(std::move(value));
  for (const VarPtr& p : parents) {
    if (p->requires_grad) v->requires_grad = true;
  }
  if (v->requires_grad) {
    v->parents = std::move(parents);
    v->backward_fn = std::move(backward_fn);
  }
  return v;
}

}  // namespace

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  Tensor out = inferturbo::MatMul(a->value, b->value);
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* self) {
    if (a->requires_grad) {
      a->AccumulateGrad(MatMulTransposedB(self->grad, b->value));
    }
    if (b->requires_grad) {
      b->AccumulateGrad(MatMulTransposedA(a->value, self->grad));
    }
  });
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  Tensor out = inferturbo::Add(a->value, b->value);
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* self) {
    if (a->requires_grad) a->AccumulateGrad(self->grad);
    if (b->requires_grad) b->AccumulateGrad(self->grad);
  });
}

VarPtr AddRowBroadcast(const VarPtr& a, const VarPtr& bias) {
  Tensor out = inferturbo::AddRowBroadcast(a->value, bias->value);
  return MakeNode(std::move(out), {a, bias}, [a, bias](Variable* self) {
    if (a->requires_grad) a->AccumulateGrad(self->grad);
    if (bias->requires_grad) {
      Tensor col_sum(1, self->grad.cols());
      for (std::int64_t r = 0; r < self->grad.rows(); ++r) {
        const float* pg = self->grad.RowPtr(r);
        float* ps = col_sum.RowPtr(0);
        for (std::int64_t j = 0; j < self->grad.cols(); ++j) ps[j] += pg[j];
      }
      bias->AccumulateGrad(col_sum);
    }
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  Tensor out = inferturbo::Mul(a->value, b->value);
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* self) {
    if (a->requires_grad) {
      a->AccumulateGrad(inferturbo::Mul(self->grad, b->value));
    }
    if (b->requires_grad) {
      b->AccumulateGrad(inferturbo::Mul(self->grad, a->value));
    }
  });
}

VarPtr MulColBroadcast(const VarPtr& a, const VarPtr& scale) {
  Tensor out = inferturbo::MulColBroadcast(a->value, scale->value);
  return MakeNode(std::move(out), {a, scale}, [a, scale](Variable* self) {
    if (a->requires_grad) {
      a->AccumulateGrad(inferturbo::MulColBroadcast(self->grad, scale->value));
    }
    if (scale->requires_grad) {
      Tensor ds(a->value.rows(), 1);
      for (std::int64_t r = 0; r < a->value.rows(); ++r) {
        const float* pg = self->grad.RowPtr(r);
        const float* pa = a->value.RowPtr(r);
        float acc = 0.0f;
        for (std::int64_t j = 0; j < a->value.cols(); ++j) acc += pg[j] * pa[j];
        ds.At(r, 0) = acc;
      }
      scale->AccumulateGrad(ds);
    }
  });
}

VarPtr Relu(const VarPtr& a) {
  Tensor out = inferturbo::Relu(a->value);
  return MakeNode(std::move(out), {a}, [a](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    const float* pv = a->value.data();
    const float* pg = self->grad.data();
    float* pd = da.data();
    for (std::int64_t i = 0; i < da.size(); ++i) {
      pd[i] = pv[i] > 0.0f ? pg[i] : 0.0f;
    }
    a->AccumulateGrad(da);
  });
}

VarPtr LeakyRelu(const VarPtr& a, float slope) {
  Tensor out = inferturbo::LeakyRelu(a->value, slope);
  return MakeNode(std::move(out), {a}, [a, slope](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    const float* pv = a->value.data();
    const float* pg = self->grad.data();
    float* pd = da.data();
    for (std::int64_t i = 0; i < da.size(); ++i) {
      pd[i] = pv[i] > 0.0f ? pg[i] : slope * pg[i];
    }
    a->AccumulateGrad(da);
  });
}

VarPtr ConcatCols(const VarPtr& a, const VarPtr& b) {
  Tensor out = inferturbo::ConcatCols(a->value, b->value);
  const std::int64_t split = a->value.cols();
  return MakeNode(std::move(out), {a, b}, [a, b, split](Variable* self) {
    if (a->requires_grad) {
      a->AccumulateGrad(inferturbo::SliceCols(self->grad, 0, split));
    }
    if (b->requires_grad) {
      b->AccumulateGrad(
          inferturbo::SliceCols(self->grad, split, self->grad.cols()));
    }
  });
}

VarPtr SliceCols(const VarPtr& a, std::int64_t begin, std::int64_t end) {
  Tensor out = inferturbo::SliceCols(a->value, begin, end);
  return MakeNode(std::move(out), {a}, [a, begin, end](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    for (std::int64_t r = 0; r < da.rows(); ++r) {
      const float* pg = self->grad.RowPtr(r);
      float* pd = da.RowPtr(r) + begin;
      for (std::int64_t j = 0; j < end - begin; ++j) pd[j] = pg[j];
    }
    a->AccumulateGrad(da);
  });
}

VarPtr GatherRows(const VarPtr& a, std::vector<std::int64_t> indices) {
  Tensor out = inferturbo::GatherRows(a->value, indices);
  auto idx = std::make_shared<std::vector<std::int64_t>>(std::move(indices));
  return MakeNode(std::move(out), {a}, [a, idx](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    ScatterAddRows(&da, *idx, self->grad);
    a->AccumulateGrad(da);
  });
}

VarPtr SegmentSum(const VarPtr& a, std::vector<std::int64_t> ids,
                  std::int64_t num_segments) {
  Tensor out = inferturbo::SegmentSum(a->value, ids, num_segments);
  auto sid = std::make_shared<std::vector<std::int64_t>>(std::move(ids));
  return MakeNode(std::move(out), {a}, [a, sid](Variable* self) {
    if (!a->requires_grad) return;
    a->AccumulateGrad(inferturbo::GatherRows(self->grad, *sid));
  });
}

VarPtr SegmentMean(const VarPtr& a, std::vector<std::int64_t> ids,
                   std::int64_t num_segments) {
  Tensor out = inferturbo::SegmentMean(a->value, ids, num_segments);
  auto sid = std::make_shared<std::vector<std::int64_t>>(std::move(ids));
  auto counts = std::make_shared<std::vector<std::int64_t>>(
      SegmentCounts(*sid, num_segments));
  return MakeNode(std::move(out), {a}, [a, sid, counts](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da = inferturbo::GatherRows(self->grad, *sid);
    for (std::int64_t r = 0; r < da.rows(); ++r) {
      const std::int64_t c =
          (*counts)[static_cast<std::size_t>((*sid)[static_cast<std::size_t>(
              r)])];
      const float inv = c > 0 ? 1.0f / static_cast<float>(c) : 0.0f;
      float* pd = da.RowPtr(r);
      for (std::int64_t j = 0; j < da.cols(); ++j) pd[j] *= inv;
    }
    a->AccumulateGrad(da);
  });
}

VarPtr SegmentMax(const VarPtr& a, std::vector<std::int64_t> ids,
                  std::int64_t num_segments) {
  Tensor out = inferturbo::SegmentMax(a->value, ids, num_segments);
  auto sid = std::make_shared<std::vector<std::int64_t>>(std::move(ids));
  // argmax[(segment, col)] = first input row attaining the segment max;
  // -1 for empty segments.
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(num_segments * a->value.cols()), -1);
  {
    const std::int64_t cols = a->value.cols();
    for (std::int64_t i = 0; i < a->value.rows(); ++i) {
      const std::int64_t seg = (*sid)[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < cols; ++j) {
        std::int64_t& slot =
            (*argmax)[static_cast<std::size_t>(seg * cols + j)];
        if (slot == -1 || a->value.At(i, j) > a->value.At(slot, j)) {
          slot = i;
        }
      }
    }
  }
  return MakeNode(std::move(out), {a}, [a, argmax](Variable* self) {
    if (!a->requires_grad) return;
    Tensor da(a->value.rows(), a->value.cols());
    const std::int64_t cols = a->value.cols();
    for (std::int64_t seg = 0; seg < self->grad.rows(); ++seg) {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::int64_t row =
            (*argmax)[static_cast<std::size_t>(seg * cols + j)];
        if (row >= 0) da.At(row, j) += self->grad.At(seg, j);
      }
    }
    a->AccumulateGrad(da);
  });
}

VarPtr SegmentSoftmax(const VarPtr& logits, std::vector<std::int64_t> ids,
                      std::int64_t num_segments) {
  Tensor out = inferturbo::SegmentSoftmax(logits->value, ids, num_segments);
  auto sid = std::make_shared<std::vector<std::int64_t>>(std::move(ids));
  auto probs = std::make_shared<Tensor>(out);
  const std::int64_t num_seg = num_segments;
  return MakeNode(
      std::move(out), {logits}, [logits, sid, probs, num_seg](Variable* self) {
        if (!logits->requires_grad) return;
        // d l_i = p_i * (g_i - sum_{j in seg} p_j g_j)
        std::vector<double> seg_dot(static_cast<std::size_t>(num_seg), 0.0);
        for (std::int64_t i = 0; i < probs->rows(); ++i) {
          seg_dot[static_cast<std::size_t>(
              (*sid)[static_cast<std::size_t>(i)])] +=
              static_cast<double>(probs->At(i, 0)) * self->grad.At(i, 0);
        }
        Tensor dl(probs->rows(), 1);
        for (std::int64_t i = 0; i < probs->rows(); ++i) {
          const double dot = seg_dot[static_cast<std::size_t>(
              (*sid)[static_cast<std::size_t>(i)])];
          dl.At(i, 0) = probs->At(i, 0) *
                        (self->grad.At(i, 0) - static_cast<float>(dot));
        }
        logits->AccumulateGrad(dl);
      });
}

VarPtr SparseMatMul(CsrMatrix adjacency, const VarPtr& x) {
  INFERTURBO_CHECK(adjacency.cols() == x->value.rows())
      << "SparseMatMul shape mismatch: " << adjacency.cols() << " vs "
      << x->value.rows();
  Tensor out = adjacency.MatMulDense(x->value);
  auto a = std::make_shared<CsrMatrix>(std::move(adjacency));
  return MakeNode(std::move(out), {x}, [x, a](Variable* self) {
    if (!x->requires_grad) return;
    // Transposed on demand; cached across calls would need tape-level
    // storage — backward runs once per step, so recompute is fine.
    x->AccumulateGrad(a->Transpose().MatMulDense(self->grad));
  });
}

VarPtr SoftmaxCrossEntropyLoss(const VarPtr& logits,
                               std::span<const std::int64_t> labels) {
  INFERTURBO_CHECK(static_cast<std::int64_t>(labels.size()) ==
                   logits->value.rows())
      << "labels size mismatch";
  Tensor log_probs = LogSoftmaxRows(logits->value);
  double loss = 0.0;
  for (std::int64_t r = 0; r < log_probs.rows(); ++r) {
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    INFERTURBO_CHECK(0 <= y && y < log_probs.cols())
        << "label " << y << " out of " << log_probs.cols();
    loss -= log_probs.At(r, y);
  }
  const std::int64_t n = log_probs.rows();
  loss /= static_cast<double>(n);
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(loss);
  auto y = std::make_shared<std::vector<std::int64_t>>(labels.begin(),
                                                       labels.end());
  auto probs = std::make_shared<Tensor>(SoftmaxRows(logits->value));
  return MakeNode(std::move(out), {logits}, [logits, y, probs](Variable* self) {
    if (!logits->requires_grad) return;
    const float upstream = self->grad.At(0, 0);
    const float inv_n = 1.0f / static_cast<float>(probs->rows());
    Tensor dl = *probs;
    for (std::int64_t r = 0; r < dl.rows(); ++r) {
      dl.At(r, (*y)[static_cast<std::size_t>(r)]) -= 1.0f;
      float* pd = dl.RowPtr(r);
      for (std::int64_t j = 0; j < dl.cols(); ++j) {
        pd[j] *= inv_n * upstream;
      }
    }
    logits->AccumulateGrad(dl);
  });
}

VarPtr SigmoidBceLoss(const VarPtr& logits, const Tensor& targets) {
  INFERTURBO_CHECK(logits->value.rows() == targets.rows() &&
                   logits->value.cols() == targets.cols())
      << "SigmoidBceLoss shape mismatch";
  // Numerically stable: bce = max(x,0) - x*t + log(1 + exp(-|x|)).
  double loss = 0.0;
  const float* px = logits->value.data();
  const float* pt = targets.data();
  const std::int64_t numel = logits->value.size();
  for (std::int64_t i = 0; i < numel; ++i) {
    const float x = px[i];
    loss += std::max(x, 0.0f) - x * pt[i] + std::log1p(std::exp(-std::fabs(x)));
  }
  loss /= static_cast<double>(numel);
  Tensor out(1, 1);
  out.At(0, 0) = static_cast<float>(loss);
  auto tgt = std::make_shared<Tensor>(targets);
  return MakeNode(std::move(out), {logits}, [logits, tgt](Variable* self) {
    if (!logits->requires_grad) return;
    const float upstream = self->grad.At(0, 0);
    Tensor dl = inferturbo::Sigmoid(logits->value);
    const float inv = upstream / static_cast<float>(dl.size());
    float* pd = dl.data();
    const float* pt2 = tgt->data();
    for (std::int64_t i = 0; i < dl.size(); ++i) {
      pd[i] = (pd[i] - pt2[i]) * inv;
    }
    logits->AccumulateGrad(dl);
  });
}

void Backward(const VarPtr& root) {
  INFERTURBO_CHECK(root->requires_grad)
      << "Backward from a node that requires no grad";
  // Iterative post-order DFS to build a topological order.
  std::vector<Variable*> topo;
  std::unordered_set<Variable*> visited;
  std::vector<std::pair<Variable*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Variable* next = node->parents[child].get();
      ++child;
      if (next->requires_grad && !visited.count(next)) {
        visited.insert(next);
        stack.emplace_back(next, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  root->AccumulateGrad(Tensor::Full(root->value.rows(), root->value.cols(),
                                    1.0f));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Variable* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn(node);
  }
}

}  // namespace ag
}  // namespace inferturbo
