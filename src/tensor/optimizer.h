#ifndef INFERTURBO_TENSOR_OPTIMIZER_H_
#define INFERTURBO_TENSOR_OPTIMIZER_H_

#include <vector>

#include "src/tensor/autograd.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// Adam (Kingma & Ba) over a fixed parameter list.
///
/// The mini-batch training half of the paper's pipeline relies on
/// "mature optimization algorithms"; Adam is what the OGB baseline
/// configs the paper follows use.
class AdamOptimizer {
 public:
  struct Options {
    float learning_rate = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;
  };

  AdamOptimizer(std::vector<ag::VarPtr> params, Options options);

  /// Applies one Adam update from the accumulated gradients, then
  /// clears them. Parameters whose grad is empty are skipped.
  void Step();

  /// Clears gradients without updating (rarely needed; Step clears).
  void ZeroGrad();

  std::int64_t step_count() const { return step_count_; }

 private:
  std::vector<ag::VarPtr> params_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t step_count_ = 0;
};

}  // namespace inferturbo

#endif  // INFERTURBO_TENSOR_OPTIMIZER_H_
