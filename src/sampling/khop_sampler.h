#ifndef INFERTURBO_SAMPLING_KHOP_SAMPLER_H_
#define INFERTURBO_SAMPLING_KHOP_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace inferturbo {

/// An extracted k-hop neighborhood in local index space, ready for a
/// layer-stack forward. The first `num_targets` local nodes are the
/// batch's target nodes.
struct Subgraph {
  /// Global id of each local node; position = local index.
  std::vector<NodeId> nodes;
  std::int64_t num_targets = 0;
  /// Edges as (src, dst) local indices; every non-frontier node's
  /// retained in-edges appear exactly once.
  std::vector<std::int64_t> src_local;
  std::vector<std::int64_t> dst_local;
  /// (nodes.size() × feature_dim) gathered raw features.
  Tensor features;
  /// (num_edges × edge_feature_dim) features of the retained edges,
  /// aligned with src_local/dst_local; empty when the graph has none.
  Tensor edge_features;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes.size());
  }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(src_local.size());
  }
  /// Bytes a worker must hold to process this subgraph (topology +
  /// features + one layer of activations); drives the OOM budget in
  /// the traditional-pipeline baseline.
  std::size_t ApproxByteSize() const;
};

struct KHopOptions {
  std::int64_t hops = 2;
  /// In-neighbors kept per node per hop; kNoSampling keeps all (the
  /// exact, consistent variant).
  std::int64_t fanout = kNoSampling;
  static constexpr std::int64_t kNoSampling = -1;
};

/// Extracts k-hop in-neighborhoods (paper §II-A): BFS over in-edges
/// from the targets; a node seen at depth < hops contributes its
/// (possibly fan-out-sampled) in-edges. With full fan-out the subgraph
/// is information-complete for a k-layer GNN — targets' layer-k states
/// match full-graph inference exactly, which is the property unifying
/// the paper's training and inference modes.
class KHopSampler {
 public:
  explicit KHopSampler(const Graph* graph) : graph_(graph) {}

  /// `rng` is consumed only when options.fanout != kNoSampling; the
  /// full-neighborhood extraction is deterministic.
  Subgraph Sample(std::span<const NodeId> targets, const KHopOptions& options,
                  Rng* rng) const;

 private:
  const Graph* graph_;
};

}  // namespace inferturbo

#endif  // INFERTURBO_SAMPLING_KHOP_SAMPLER_H_
