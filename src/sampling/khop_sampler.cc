#include "src/sampling/khop_sampler.h"

#include <unordered_map>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace inferturbo {

std::size_t Subgraph::ApproxByteSize() const {
  std::size_t bytes = nodes.size() * sizeof(NodeId);
  bytes += (src_local.size() + dst_local.size()) * sizeof(std::int64_t);
  // Features plus one activation tensor of the same width — the
  // working set of a layer forward.
  bytes += 2 * features.ByteSize();
  return bytes;
}

Subgraph KHopSampler::Sample(std::span<const NodeId> targets,
                             const KHopOptions& options, Rng* rng) const {
  Subgraph sub;
  sub.num_targets = static_cast<std::int64_t>(targets.size());
  std::unordered_map<NodeId, std::int64_t> local_of;
  local_of.reserve(targets.size() * 8);
  for (NodeId t : targets) {
    INFERTURBO_CHECK(local_of.emplace(t, sub.nodes.size()).second)
        << "duplicate target node " << t;
    sub.nodes.push_back(t);
  }

  std::vector<NodeId> frontier(targets.begin(), targets.end());
  std::vector<EdgeId> kept;
  std::vector<EdgeId> kept_global;  // retained edge ids, for features
  for (std::int64_t hop = 0; hop < options.hops; ++hop) {
    std::vector<NodeId> next_frontier;
    for (NodeId v : frontier) {
      const std::int64_t v_local = local_of.at(v);
      const std::span<const EdgeId> in_edges = graph_->InEdges(v);
      kept.clear();
      if (options.fanout == KHopOptions::kNoSampling ||
          static_cast<std::int64_t>(in_edges.size()) <= options.fanout) {
        kept.assign(in_edges.begin(), in_edges.end());
      } else {
        // Uniform sample without replacement (partial Fisher-Yates on a
        // scratch copy); this is the stochastic step Fig. 7 measures.
        INFERTURBO_CHECK(rng != nullptr)
            << "fan-out sampling requires an rng";
        std::vector<EdgeId> pool(in_edges.begin(), in_edges.end());
        for (std::int64_t i = 0; i < options.fanout; ++i) {
          const std::size_t j =
              static_cast<std::size_t>(i) +
              static_cast<std::size_t>(rng->NextBounded(
                  static_cast<std::uint64_t>(pool.size()) -
                  static_cast<std::uint64_t>(i)));
          std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
        }
        kept.assign(pool.begin(), pool.begin() + options.fanout);
      }
      for (EdgeId e : kept) {
        const NodeId u = graph_->EdgeSrc(e);
        auto [it, inserted] =
            local_of.emplace(u, static_cast<std::int64_t>(sub.nodes.size()));
        if (inserted) {
          sub.nodes.push_back(u);
          next_frontier.push_back(u);
        }
        sub.src_local.push_back(it->second);
        sub.dst_local.push_back(v_local);
        kept_global.push_back(e);
      }
    }
    frontier = std::move(next_frontier);
  }

  sub.features = GatherRows(graph_->node_features(), sub.nodes);
  if (graph_->has_edge_features()) {
    sub.edge_features = GatherRows(graph_->edge_features(), kept_global);
  }
  return sub;
}

}  // namespace inferturbo
