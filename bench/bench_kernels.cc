// Kernel microbenchmarks and regression harness: times every fast
// kernel against its scalar reference and writes BENCH_kernels.json —
// one record per (op, shape, threads) with GFLOP/s, ns/elem, and the
// measured speedup. Self-contained timing (no external benchmark
// framework) so it builds everywhere the library does.
//
// Usage:
//   bench_kernels                      full sweep, writes BENCH_kernels.json
//   bench_kernels --quick              CI smoke: smaller shapes, shorter timing
//   bench_kernels --out=PATH           write the JSON elsewhere
//   bench_kernels --check=PATH         diff against a baseline JSON; exits 1
//                                      when any op regresses past --check-tolerance
//   bench_kernels --threads=LIST       comma-separated thread sweep
//                                      (default "1,2,8" — fixed so baselines
//                                      compare like against like)
//   bench_kernels --scaling-gate       exit 1 if any op's best multi-thread
//                                      time is worse than its 1-thread time
//                                      by more than --scaling-tolerance
//   bench_kernels --fast_math=false    skip the opt-in fast-math rows
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/telemetry/perf_counters.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernel_stats.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

// Keeps results observable so the optimizer cannot delete a timed call.
volatile float g_sink = 0.0f;
void Sink(const Tensor& t) {
  if (t.size() > 0) g_sink = g_sink + t.data()[0];
}

struct BenchRecord {
  std::string op;
  std::string shape;
  int threads = 1;
  double seconds_per_iter = 0.0;
  double gflops = 0.0;       // 0 for pure-bandwidth ops
  double ns_per_elem = 0.0;  // per "element" as defined by the op below
  double speedup_vs_reference = 0.0;
  // Roofline coordinates: analytic per-iteration traffic, and hardware
  // counters per iteration (0 when perf_event_open is unavailable).
  double bytes_per_flop = 0.0;  // 0 for pure-bandwidth (flops == 0) ops
  double gb_per_s = 0.0;
  double cycles_per_iter = 0.0;
  double instructions_per_iter = 0.0;
  double llc_misses_per_iter = 0.0;
};

struct TimingOptions {
  double min_seconds = 0.3;
  std::int64_t max_iters = 200;
};

// Times `fn` by whole iterations until the budget is spent. Returns
// seconds per iteration (and the iteration count via `iters_out`). One
// untimed warmup iteration absorbs cold caches and lazy ISA dispatch.
template <typename Fn>
double TimeIt(const TimingOptions& options, Fn&& fn,
              std::int64_t* iters_out = nullptr) {
  fn();
  WallTimer timer;
  std::int64_t iters = 0;
  double elapsed = 0.0;
  while (elapsed < options.min_seconds && iters < options.max_iters) {
    fn();
    ++iters;
    elapsed = timer.ElapsedSeconds();
  }
  if (iters_out != nullptr) *iters_out = iters;
  return elapsed / static_cast<double>(iters);
}

void SetThreads(int max_threads) {
  kernels::KernelConfig config = kernels::GetKernelConfig();
  config.max_threads = max_threads;
  // The sweep decides when to parallelize; don't let the work
  // threshold silently serialize the "parallel" rows.
  config.min_parallel_work = max_threads > 1 ? 1 : (std::int64_t{1} << 62);
  kernels::SetKernelConfig(config);
}

void SetFastMath(bool on, bool bf16) {
  kernels::KernelConfig config = kernels::GetKernelConfig();
  config.fast_math = on;
  config.fast_math_bf16 = bf16;
  kernels::SetKernelConfig(config);
}

struct Harness {
  TimingOptions timing;
  // Fixed sweep (default {1, 2, 8}) so baseline rows always compare
  // like against like regardless of the machine's core count. The
  // scaling gate compares across these rows per (op, shape).
  std::vector<int> thread_set = {1, 2, 8};
  std::vector<BenchRecord> records;

  // Benches one op across the thread sweep against a serial reference
  // run. `work` describes ONE iteration (flops feed gflops, bytes feed
  // the roofline columns); `elems` feeds ns_per_elem.
  template <typename RefFn, typename FastFn>
  void Bench(const std::string& op, const std::string& shape,
             kernels::KernelWork work, double elems, RefFn&& ref,
             FastFn&& fast) {
    SetThreads(1);
    const double ref_seconds = TimeIt(timing, ref);
    BenchTimed(op, shape, work, elems, ref_seconds, fast);
  }

  // As Bench, but reuses an already-measured reference time (for
  // op variants sharing one oracle, e.g. the fast-math tiers).
  template <typename FastFn>
  void BenchTimed(const std::string& op, const std::string& shape,
                  kernels::KernelWork work, double elems, double ref_seconds,
                  FastFn&& fast) {
    const double flops = static_cast<double>(work.flops);
    const double bytes = static_cast<double>(work.bytes);
    for (const int threads : thread_set) {
      SetThreads(threads);
      PerfCounterValues counters;
      std::int64_t iters = 0;
      double seconds = 0.0;
      {
        // Accumulate-form scope: counters bypass the registry and
        // bracket the whole timing loop (including the one warmup
        // iteration — hence iters + 1 below).
        PerfCounterScope profile("bench", &counters);
        seconds = TimeIt(timing, fast, &iters);
      }
      BenchRecord record;
      record.op = op;
      record.shape = shape;
      record.threads = threads;
      record.seconds_per_iter = seconds;
      record.gflops = flops > 0 ? flops / seconds * 1e-9 : 0.0;
      record.ns_per_elem = elems > 0 ? seconds * 1e9 / elems : 0.0;
      record.speedup_vs_reference = ref_seconds / seconds;
      record.bytes_per_flop = work.BytesPerFlop();
      record.gb_per_s = bytes > 0 ? bytes / seconds * 1e-9 : 0.0;
      if (counters.valid && iters > 0) {
        const double per_iter = 1.0 / static_cast<double>(iters + 1);
        record.cycles_per_iter =
            static_cast<double>(counters.cycles) * per_iter;
        record.instructions_per_iter =
            static_cast<double>(counters.instructions) * per_iter;
        record.llc_misses_per_iter =
            static_cast<double>(counters.llc_misses) * per_iter;
      }
      records.push_back(record);
      std::printf("%-16s %-14s threads=%d  %10.3f ms/iter  %7.2f GFLOP/s"
                  "  %8.3f ns/elem  %5.2fx vs reference",
                  op.c_str(), shape.c_str(), threads, seconds * 1e3,
                  record.gflops, record.ns_per_elem,
                  record.speedup_vs_reference);
      if (counters.valid) {
        std::printf("  %.0fM cycles/iter (ipc %.2f)",
                    record.cycles_per_iter * 1e-6,
                    record.cycles_per_iter > 0
                        ? record.instructions_per_iter /
                              record.cycles_per_iter
                        : 0.0);
      }
      std::printf("\n");
    }
    SetThreads(1);
  }
};

std::string MatMulShapeLabel(std::int64_t m, std::int64_t k, std::int64_t n) {
  std::ostringstream out;
  out << m << "x" << k << "x" << n;
  return out.str();
}

// Validates one fast-math result against the scalar oracle within the
// documented envelope |fast - oracle| <= tol * (|A|·|B|)[i,j] + tiny.
// Dies loudly on violation: a silently-wrong fast row would poison the
// baseline.
void CheckFastMath(const Tensor& fast, const Tensor& oracle,
                   const Tensor& envelope, float tol, const char* op) {
  constexpr float kTiny = 1e-6f;
  for (std::int64_t i = 0; i < fast.rows(); ++i) {
    for (std::int64_t j = 0; j < fast.cols(); ++j) {
      const float bound = tol * envelope.At(i, j) + kTiny;
      const float err = std::fabs(fast.At(i, j) - oracle.At(i, j));
      if (!(err <= bound)) {
        std::fprintf(stderr,
                     "bench_kernels: %s out of tolerance at (%lld,%lld): "
                     "|%g - %g| = %g > %g\n",
                     op, static_cast<long long>(i), static_cast<long long>(j),
                     fast.At(i, j), oracle.At(i, j), err, bound);
        std::exit(3);
      }
    }
  }
}

Tensor AbsTensor(const Tensor& t) {
  Tensor out(t.rows(), t.cols());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out.data()[i] = std::fabs(t.data()[i]);
  }
  return out;
}

void BenchMatMuls(Harness* harness, bool quick, bool fast_math) {
  std::vector<std::int64_t> sizes = quick
                                        ? std::vector<std::int64_t>{128}
                                        : std::vector<std::int64_t>{128, 256,
                                                                    512};
  Rng rng(11);
  for (const std::int64_t n : sizes) {
    const Tensor a = Tensor::RandomNormal(n, n, 1.0f, &rng);
    const Tensor b = Tensor::RandomNormal(n, n, 1.0f, &rng);
    const kernels::KernelWork work = kernels::MatMulWork(n, n, n);
    const double elems = static_cast<double>(n) * n;  // output elements
    const std::string shape = MatMulShapeLabel(n, n, n);
    SetThreads(1);
    const double ref_seconds =
        TimeIt(harness->timing, [&] { Sink(kernels::reference::MatMul(a, b)); });
    harness->BenchTimed("matmul", shape, work, elems, ref_seconds,
                        [&] { Sink(kernels::MatMul(a, b)); });
    SetFastMath(true, /*bf16=*/false);
    const bool fast_available = kernels::UsingFastMath();
    SetFastMath(false, false);
    if (fast_math && fast_available) {
      // Validate each tier once against the oracle at the documented
      // tolerance before timing it.
      const Tensor oracle = kernels::reference::MatMul(a, b);
      const Tensor envelope =
          kernels::reference::MatMul(AbsTensor(a), AbsTensor(b));
      SetFastMath(true, /*bf16=*/false);
      CheckFastMath(kernels::MatMul(a, b), oracle, envelope,
                    kernels::kFastMathRelTol, "matmul_fast");
      harness->BenchTimed("matmul_fast", shape, work, elems, ref_seconds,
                          [&] { Sink(kernels::MatMul(a, b)); });
      SetFastMath(true, /*bf16=*/true);
      CheckFastMath(kernels::MatMul(a, b), oracle, envelope,
                    kernels::kFastMathBf16RelTol, "matmul_fast_bf16");
      harness->BenchTimed("matmul_fast_bf16", shape, work, elems,
                          ref_seconds, [&] { Sink(kernels::MatMul(a, b)); });
      SetFastMath(false, false);
    }
    harness->Bench(
        "matmul_tb", shape, work, elems,
        [&] { Sink(kernels::reference::MatMulTransposedB(a, b)); },
        [&] { Sink(kernels::MatMulTransposedB(a, b)); });
    harness->Bench(
        "matmul_ta", shape, work, elems,
        [&] { Sink(kernels::reference::MatMulTransposedA(a, b)); },
        [&] { Sink(kernels::MatMulTransposedA(a, b)); });
  }
}

void BenchSegmentOps(Harness* harness, bool quick) {
  const std::int64_t rows = quick ? 16384 : 131072;
  const std::int64_t cols = 64;
  const std::int64_t segments = quick ? 512 : 4096;
  Rng rng(12);
  const Tensor values = Tensor::RandomNormal(rows, cols, 1.0f, &rng);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  for (auto& id : ids) {
    id = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(segments)));
  }
  std::ostringstream label;
  label << rows << "x" << cols << "s" << segments;
  const std::string shape = label.str();
  const double elems = static_cast<double>(rows) * cols;  // folded floats
  harness->Bench(
      "segment_sum", shape, kernels::SegmentFoldWork(rows, cols), elems,
      [&] { Sink(kernels::reference::SegmentSum(values, ids, segments)); },
      [&] { Sink(kernels::SegmentSum(values, ids, segments)); });
  harness->Bench(
      "segment_mean", shape,
      kernels::SegmentMeanWork(rows, cols, segments), elems,
      [&] { Sink(kernels::reference::SegmentMean(values, ids, segments)); },
      [&] { Sink(kernels::SegmentMean(values, ids, segments)); });
}

void BenchRowOps(Harness* harness, bool quick) {
  const std::int64_t source_rows = quick ? 16384 : 131072;
  const std::int64_t cols = 64;
  Rng rng(13);
  const Tensor source = Tensor::RandomNormal(source_rows, cols, 1.0f, &rng);
  std::vector<std::int64_t> indices(static_cast<std::size_t>(source_rows));
  for (auto& idx : indices) {
    idx = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(source_rows)));
  }
  std::ostringstream label;
  label << source_rows << "x" << cols;
  const std::string shape = label.str();
  const double elems = static_cast<double>(source_rows) * cols;
  harness->Bench(
      "gather_rows", shape, kernels::GatherWork(source_rows, cols), elems,
      [&] { Sink(kernels::reference::GatherRows(source, indices)); },
      [&] { Sink(kernels::GatherRows(source, indices)); });
  // Scatter reuses the gather indices; the accumulator is rebuilt per
  // iteration so every run adds into identical memory.
  harness->Bench(
      "scatter_add", shape, kernels::ScatterAddWork(source_rows, cols), elems,
      [&] {
        Tensor acc(source_rows, cols);
        kernels::reference::ScatterAddRows(&acc, indices, source);
        Sink(acc);
      },
      [&] {
        Tensor acc(source_rows, cols);
        kernels::ScatterAddRows(&acc, indices, source);
        Sink(acc);
      });
}

std::string ThreadSetLabel(const std::vector<int>& threads) {
  std::ostringstream out;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    out << (i ? "," : "") << threads[i];
  }
  return out.str();
}

void WriteJson(const std::string& path, const std::vector<BenchRecord>& records,
               bool quick, const std::vector<int>& thread_set) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_kernels\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"avx2\": " << (kernels::UsingAvx2() ? "true" : "false") << ",\n";
  out << "  \"thread_set\": \"" << ThreadSetLabel(thread_set) << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  // Explicit marker: rows carry real hardware counts, or they are all
  // zero because perf_event_open is unavailable on this host.
  out << "  \"perf_counters\": \""
      << (PerfCountersSupported() ? "available" : "unavailable") << "\",\n";
  if (!PerfCountersSupported()) {
    out << "  \"perf_fallback_reason\": \""
        << PerfCountersUnavailableReason() << "\",\n";
  }
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[768];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                  "\"seconds_per_iter\": %.6e, \"gflops\": %.4f, "
                  "\"ns_per_elem\": %.4f, \"speedup_vs_reference\": %.3f, "
                  "\"bytes_per_flop\": %.4f, \"gb_per_s\": %.3f, "
                  "\"cycles_per_iter\": %.0f, "
                  "\"instructions_per_iter\": %.0f, "
                  "\"llc_misses_per_iter\": %.0f}%s",
                  r.op.c_str(), r.shape.c_str(), r.threads,
                  r.seconds_per_iter, r.gflops, r.ns_per_elem,
                  r.speedup_vs_reference, r.bytes_per_flop, r.gb_per_s,
                  r.cycles_per_iter, r.instructions_per_iter,
                  r.llc_misses_per_iter,
                  i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

// Minimal field extraction for the exact format WriteJson emits (one
// record per line) — enough for --check without a JSON dependency.
struct BaselineRecord {
  std::string op, shape;
  int threads = 0;
  double gflops = 0.0;
  double seconds_per_iter = 0.0;
};

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::vector<BaselineRecord> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_kernels: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::vector<BaselineRecord> baseline;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"op\"") == std::string::npos) continue;
    BaselineRecord record;
    record.op = ExtractString(line, "op");
    record.shape = ExtractString(line, "shape");
    record.threads = static_cast<int>(ExtractNumber(line, "threads"));
    record.gflops = ExtractNumber(line, "gflops");
    record.seconds_per_iter = ExtractNumber(line, "seconds_per_iter");
    baseline.push_back(record);
  }
  return baseline;
}

// Compares against a baseline run; a kernel counts as regressed when
// its time per iteration grew past (1 + tolerance) on a matching
// (op, shape, threads) row. Shapes present on only one side are
// skipped (quick vs full runs share only some rows).
int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         const std::string& path, double tolerance) {
  const std::vector<BaselineRecord> baseline = LoadBaseline(path);
  int regressions = 0, compared = 0;
  for (const BenchRecord& r : records) {
    for (const BaselineRecord& b : baseline) {
      if (b.op != r.op || b.shape != r.shape || b.threads != r.threads) {
        continue;
      }
      ++compared;
      if (b.seconds_per_iter > 0.0 &&
          r.seconds_per_iter > b.seconds_per_iter * (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s %s threads=%d: %.3f ms/iter vs baseline "
                    "%.3f ms/iter (tolerance %.0f%%)\n",
                    r.op.c_str(), r.shape.c_str(), r.threads,
                    r.seconds_per_iter * 1e3, b.seconds_per_iter * 1e3,
                    tolerance * 100.0);
      }
      break;
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

// The multithreading-is-a-win gate: for every (op, shape) with both a
// 1-thread row and multi-thread rows, the BEST multi-thread time must
// not be worse than the 1-thread time by more than `tolerance`. On a
// single-core host the executor caps fan-out at the core count, so
// multi-thread rows degrade to ~parity and the gate still holds; on a
// real multi-core runner this enforces actual scaling.
int CheckScaling(const std::vector<BenchRecord>& records, double tolerance) {
  int violations = 0, groups = 0;
  for (const BenchRecord& r : records) {
    if (r.threads != 1) continue;
    double best_multi = 0.0;
    int best_threads = 0;
    for (const BenchRecord& m : records) {
      if (m.op != r.op || m.shape != r.shape || m.threads == 1) continue;
      if (best_threads == 0 || m.seconds_per_iter < best_multi) {
        best_multi = m.seconds_per_iter;
        best_threads = m.threads;
      }
    }
    if (best_threads == 0) continue;
    ++groups;
    if (best_multi > r.seconds_per_iter * (1.0 + tolerance)) {
      ++violations;
      std::printf("SCALING VIOLATION %s %s: best multi-thread %.3f ms/iter "
                  "(threads=%d) vs 1-thread %.3f ms/iter (tolerance %.0f%%)\n",
                  r.op.c_str(), r.shape.c_str(), best_multi * 1e3,
                  best_threads, r.seconds_per_iter * 1e3, tolerance * 100.0);
    } else {
      std::printf("scaling ok %s %s: %.2fx at best multi-thread\n",
                  r.op.c_str(), r.shape.c_str(),
                  r.seconds_per_iter / best_multi);
    }
  }
  std::printf("scaling gate: %d groups checked, %d violations\n", groups,
              violations);
  return violations == 0 ? 0 : 1;
}

std::vector<int> ParseThreadSet(const std::string& spec) {
  std::vector<int> threads;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const int t = std::atoi(item.c_str());
    if (t >= 1) threads.push_back(t);
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_kernels.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.5);
  const bool scaling_gate = flags->GetBool("scaling-gate", false);
  const double scaling_tolerance = flags->GetDouble("scaling-tolerance", 0.15);
  const bool fast_math = flags->GetBool("fast_math", true);

  Harness harness;
  harness.thread_set = ParseThreadSet(flags->GetString("threads", "1,2,8"));
  harness.timing.min_seconds = quick ? 0.02 : 0.3;
  harness.timing.max_iters = quick ? 20 : 200;

  // Measurement is the whole point of a bench run, so profiling is on
  // unconditionally; rows degrade to zero counters where the host
  // forbids perf_event_open.
  SetProfilingEnabled(true);

  std::printf("bench_kernels (%s mode, avx2=%s, threads={%s}, %u hardware "
              "threads, perf counters %s)\n\n",
              quick ? "quick" : "full", kernels::UsingAvx2() ? "on" : "off",
              ThreadSetLabel(harness.thread_set).c_str(),
              std::thread::hardware_concurrency(),
              PerfCountersSupported()
                  ? "available"
                  : PerfCountersUnavailableReason().c_str());

  const kernels::KernelConfig saved = kernels::GetKernelConfig();
  BenchMatMuls(&harness, quick, fast_math);
  BenchSegmentOps(&harness, quick);
  BenchRowOps(&harness, quick);
  kernels::SetKernelConfig(saved);

  WriteJson(out_path, harness.records, quick, harness.thread_set);

  int rc = 0;
  if (scaling_gate) rc |= CheckScaling(harness.records, scaling_tolerance);
  if (!check_path.empty()) {
    rc |= CheckAgainstBaseline(harness.records, check_path, tolerance);
  }
  return rc;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
