// Kernel microbenchmarks and regression harness: times every fast
// kernel against its scalar reference and writes BENCH_kernels.json —
// one record per (op, shape, threads) with GFLOP/s, ns/elem, and the
// measured speedup. Self-contained timing (no external benchmark
// framework) so it builds everywhere the library does.
//
// Usage:
//   bench_kernels                      full sweep, writes BENCH_kernels.json
//   bench_kernels --quick              CI smoke: smaller shapes, shorter timing
//   bench_kernels --out=PATH           write the JSON elsewhere
//   bench_kernels --check=PATH         diff against a baseline JSON; exits 1
//                                      when any op regresses past --check-tolerance
//   bench_kernels --threads=N          parallel sweep thread count (default:
//                                      the default pool's size)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

// Keeps results observable so the optimizer cannot delete a timed call.
volatile float g_sink = 0.0f;
void Sink(const Tensor& t) {
  if (t.size() > 0) g_sink = g_sink + t.data()[0];
}

struct BenchRecord {
  std::string op;
  std::string shape;
  int threads = 1;
  double seconds_per_iter = 0.0;
  double gflops = 0.0;       // 0 for pure-bandwidth ops
  double ns_per_elem = 0.0;  // per "element" as defined by the op below
  double speedup_vs_reference = 0.0;
};

struct TimingOptions {
  double min_seconds = 0.3;
  std::int64_t max_iters = 200;
};

// Times `fn` by whole iterations until the budget is spent. Returns
// seconds per iteration. One untimed warmup iteration absorbs cold
// caches and lazy ISA dispatch.
template <typename Fn>
double TimeIt(const TimingOptions& options, Fn&& fn) {
  fn();
  WallTimer timer;
  std::int64_t iters = 0;
  double elapsed = 0.0;
  while (elapsed < options.min_seconds && iters < options.max_iters) {
    fn();
    ++iters;
    elapsed = timer.ElapsedSeconds();
  }
  return elapsed / static_cast<double>(iters);
}

void SetThreads(int max_threads) {
  kernels::KernelConfig config = kernels::GetKernelConfig();
  config.max_threads = max_threads;
  // The sweep decides when to parallelize; don't let the work
  // threshold silently serialize the "parallel" rows.
  config.min_parallel_work = max_threads > 1 ? 1 : (std::int64_t{1} << 62);
  kernels::SetKernelConfig(config);
}

struct Harness {
  TimingOptions timing;
  int parallel_threads = 2;
  std::vector<BenchRecord> records;

  // Benches one op at serial and parallel settings against a serial
  // reference run. `flops`/`elems` describe ONE iteration; gflops uses
  // flops, ns_per_elem uses elems.
  template <typename RefFn, typename FastFn>
  void Bench(const std::string& op, const std::string& shape, double flops,
             double elems, RefFn&& ref, FastFn&& fast) {
    SetThreads(1);
    const double ref_seconds = TimeIt(timing, ref);
    for (const int threads : {1, parallel_threads}) {
      SetThreads(threads);
      const double seconds = TimeIt(timing, fast);
      BenchRecord record;
      record.op = op;
      record.shape = shape;
      record.threads = threads;
      record.seconds_per_iter = seconds;
      record.gflops = flops > 0 ? flops / seconds * 1e-9 : 0.0;
      record.ns_per_elem = elems > 0 ? seconds * 1e9 / elems : 0.0;
      record.speedup_vs_reference = ref_seconds / seconds;
      records.push_back(record);
      std::printf("%-14s %-14s threads=%d  %10.3f ms/iter  %7.2f GFLOP/s"
                  "  %8.3f ns/elem  %5.2fx vs reference\n",
                  op.c_str(), shape.c_str(), threads, seconds * 1e3,
                  record.gflops, record.ns_per_elem,
                  record.speedup_vs_reference);
      if (threads == parallel_threads) break;  // when parallel_threads == 1
    }
  }
};

std::string MatMulShapeLabel(std::int64_t m, std::int64_t k, std::int64_t n) {
  std::ostringstream out;
  out << m << "x" << k << "x" << n;
  return out.str();
}

void BenchMatMuls(Harness* harness, bool quick) {
  std::vector<std::int64_t> sizes = quick
                                        ? std::vector<std::int64_t>{128}
                                        : std::vector<std::int64_t>{128, 256,
                                                                    512};
  Rng rng(11);
  for (const std::int64_t n : sizes) {
    const Tensor a = Tensor::RandomNormal(n, n, 1.0f, &rng);
    const Tensor b = Tensor::RandomNormal(n, n, 1.0f, &rng);
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const double elems = static_cast<double>(n) * n;  // output elements
    const std::string shape = MatMulShapeLabel(n, n, n);
    harness->Bench(
        "matmul", shape, flops, elems,
        [&] { Sink(kernels::reference::MatMul(a, b)); },
        [&] { Sink(kernels::MatMul(a, b)); });
    harness->Bench(
        "matmul_tb", shape, flops, elems,
        [&] { Sink(kernels::reference::MatMulTransposedB(a, b)); },
        [&] { Sink(kernels::MatMulTransposedB(a, b)); });
    harness->Bench(
        "matmul_ta", shape, flops, elems,
        [&] { Sink(kernels::reference::MatMulTransposedA(a, b)); },
        [&] { Sink(kernels::MatMulTransposedA(a, b)); });
  }
}

void BenchSegmentOps(Harness* harness, bool quick) {
  const std::int64_t rows = quick ? 16384 : 131072;
  const std::int64_t cols = 64;
  const std::int64_t segments = quick ? 512 : 4096;
  Rng rng(12);
  const Tensor values = Tensor::RandomNormal(rows, cols, 1.0f, &rng);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  for (auto& id : ids) {
    id = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(segments)));
  }
  std::ostringstream label;
  label << rows << "x" << cols << "s" << segments;
  const std::string shape = label.str();
  const double elems = static_cast<double>(rows) * cols;  // folded floats
  harness->Bench(
      "segment_sum", shape, elems, elems,
      [&] { Sink(kernels::reference::SegmentSum(values, ids, segments)); },
      [&] { Sink(kernels::SegmentSum(values, ids, segments)); });
  harness->Bench(
      "segment_mean", shape, elems, elems,
      [&] { Sink(kernels::reference::SegmentMean(values, ids, segments)); },
      [&] { Sink(kernels::SegmentMean(values, ids, segments)); });
}

void BenchRowOps(Harness* harness, bool quick) {
  const std::int64_t source_rows = quick ? 16384 : 131072;
  const std::int64_t cols = 64;
  Rng rng(13);
  const Tensor source = Tensor::RandomNormal(source_rows, cols, 1.0f, &rng);
  std::vector<std::int64_t> indices(static_cast<std::size_t>(source_rows));
  for (auto& idx : indices) {
    idx = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(source_rows)));
  }
  std::ostringstream label;
  label << source_rows << "x" << cols;
  const std::string shape = label.str();
  const double elems = static_cast<double>(source_rows) * cols;
  harness->Bench(
      "gather_rows", shape, 0.0, elems,
      [&] { Sink(kernels::reference::GatherRows(source, indices)); },
      [&] { Sink(kernels::GatherRows(source, indices)); });
  // Scatter reuses the gather indices; the accumulator is rebuilt per
  // iteration so every run adds into identical memory.
  harness->Bench(
      "scatter_add", shape, elems, elems,
      [&] {
        Tensor acc(source_rows, cols);
        kernels::reference::ScatterAddRows(&acc, indices, source);
        Sink(acc);
      },
      [&] {
        Tensor acc(source_rows, cols);
        kernels::ScatterAddRows(&acc, indices, source);
        Sink(acc);
      });
}

void WriteJson(const std::string& path, const std::vector<BenchRecord>& records,
               bool quick, int parallel_threads) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_kernels\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"avx2\": " << (kernels::UsingAvx2() ? "true" : "false") << ",\n";
  out << "  \"parallel_threads\": " << parallel_threads << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                  "\"seconds_per_iter\": %.6e, \"gflops\": %.4f, "
                  "\"ns_per_elem\": %.4f, \"speedup_vs_reference\": %.3f}%s",
                  r.op.c_str(), r.shape.c_str(), r.threads,
                  r.seconds_per_iter, r.gflops, r.ns_per_elem,
                  r.speedup_vs_reference,
                  i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

// Minimal field extraction for the exact format WriteJson emits (one
// record per line) — enough for --check without a JSON dependency.
struct BaselineRecord {
  std::string op, shape;
  int threads = 0;
  double gflops = 0.0;
  double seconds_per_iter = 0.0;
};

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::vector<BaselineRecord> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_kernels: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::vector<BaselineRecord> baseline;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"op\"") == std::string::npos) continue;
    BaselineRecord record;
    record.op = ExtractString(line, "op");
    record.shape = ExtractString(line, "shape");
    record.threads = static_cast<int>(ExtractNumber(line, "threads"));
    record.gflops = ExtractNumber(line, "gflops");
    record.seconds_per_iter = ExtractNumber(line, "seconds_per_iter");
    baseline.push_back(record);
  }
  return baseline;
}

// Compares against a baseline run; a kernel counts as regressed when
// its time per iteration grew past (1 + tolerance) on a matching
// (op, shape, threads) row. Shapes present on only one side are
// skipped (quick vs full runs share only some rows).
int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         const std::string& path, double tolerance) {
  const std::vector<BaselineRecord> baseline = LoadBaseline(path);
  int regressions = 0, compared = 0;
  for (const BenchRecord& r : records) {
    for (const BaselineRecord& b : baseline) {
      if (b.op != r.op || b.shape != r.shape || b.threads != r.threads) {
        continue;
      }
      ++compared;
      if (b.seconds_per_iter > 0.0 &&
          r.seconds_per_iter > b.seconds_per_iter * (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s %s threads=%d: %.3f ms/iter vs baseline "
                    "%.3f ms/iter (tolerance %.0f%%)\n",
                    r.op.c_str(), r.shape.c_str(), r.threads,
                    r.seconds_per_iter * 1e3, b.seconds_per_iter * 1e3,
                    tolerance * 100.0);
      }
      break;
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_kernels.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.5);

  Harness harness;
  harness.parallel_threads = static_cast<int>(flags->GetInt(
      "threads",
      static_cast<std::int64_t>(DefaultThreadPool().num_threads())));
  harness.parallel_threads = std::max(harness.parallel_threads, 1);
  harness.timing.min_seconds = quick ? 0.02 : 0.3;
  harness.timing.max_iters = quick ? 20 : 200;

  std::printf("bench_kernels (%s mode, avx2=%s, parallel sweep at %d "
              "threads)\n\n",
              quick ? "quick" : "full", kernels::UsingAvx2() ? "on" : "off",
              harness.parallel_threads);

  const kernels::KernelConfig saved = kernels::GetKernelConfig();
  BenchMatMuls(&harness, quick);
  BenchSegmentOps(&harness, quick);
  BenchRowOps(&harness, quick);
  kernels::SetKernelConfig(saved);

  WriteJson(out_path, harness.records, quick, harness.parallel_threads);

  if (!check_path.empty()) {
    return CheckAgainstBaseline(harness.records, check_path, tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
